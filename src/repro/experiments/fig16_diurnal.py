"""Figure 16 (Appendix C): diurnal querier counts for the case studies.

Per-hour unique-querier counts over JP-ditl for each case study.
Targets: strong diurnal swings for ad-tracker, cdn, and mail (human-
driven), flat profiles for scan-ssh and spam (automated), and a diurnal
research ICMP scanner (adaptive probing follows address-space usage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generate import get_dataset
from repro.experiments.case_studies import _pick_exemplars


__all__ = ["DiurnalSeries", "run", "format_table"]


@dataclass(slots=True)
class DiurnalSeries:
    label: str
    originator: int
    hourly: list[tuple[float, int]]
    """(hour-of-run, unique queriers in that hour)."""

    def diurnal_ratio(self) -> float:
        """Peak-to-mean ratio of the hour-of-day profile.

        Hourly counts are folded modulo 24 h before comparing, so the
        metric captures time-of-day structure rather than campaign
        burstiness; ~1 means flat around the clock.
        """
        profile = np.zeros(24)
        for hour, count in self.hourly:
            profile[int(hour) % 24] += count
        if profile.sum() == 0:
            return float("nan")
        return float(profile.max() / profile.mean())


def run(preset: str = "default") -> list[DiurnalSeries]:
    dataset = get_dataset("JP-ditl", preset)
    entries = list(dataset.sensor.log)
    exemplars = _pick_exemplars(dataset)
    hours = int(np.ceil(dataset.duration_seconds / 3600.0))
    series: list[DiurnalSeries] = []
    for label, originator in exemplars.items():
        per_hour: list[tuple[float, int]] = []
        for hour in range(hours):
            start, end = hour * 3600.0, (hour + 1) * 3600.0
            queriers = {
                e.querier for e in entries
                if e.originator == originator and start <= e.timestamp < end
            }
            per_hour.append((float(hour), len(queriers)))
        series.append(DiurnalSeries(label=label, originator=originator, hourly=per_hour))
    return series


def format_table(series: list[DiurnalSeries]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["case", "total hours", "peak/mean hourly queriers"],
        [
            [s.label, len(s.hourly), f"{s.diurnal_ratio():.2f}"]
            for s in series
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
