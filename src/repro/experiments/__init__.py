"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured results and a
``format_*`` helper producing the paper-style printout; every module is
also runnable as a script (``python -m repro.experiments.table3_accuracy``).
The per-experiment index lives in DESIGN.md § 4 and measured-vs-paper
values in EXPERIMENTS.md.
"""

from repro.experiments import (
    case_studies,
    confusion,
    fig4_controlled,
    fig5_fig6_stability,
    fig7_strategies,
    fig8_consistency,
    fig9_footprints,
    fig10_topn,
    fig11_trends,
    fig12_footprint_boxes,
    fig13_example_scanners,
    fig14_teams,
    fig15_churn,
    fig16_diurnal,
    table1_datasets,
    table3_accuracy,
    table4_gini,
    table5_class_counts,
    table6_groundtruth,
    tables78_top_originators,
)

__all__ = [
    "case_studies",
    "confusion",
    "fig4_controlled",
    "fig5_fig6_stability",
    "fig7_strategies",
    "fig8_consistency",
    "fig9_footprints",
    "fig10_topn",
    "fig11_trends",
    "fig12_footprint_boxes",
    "fig13_example_scanners",
    "fig14_teams",
    "fig15_churn",
    "fig16_diurnal",
    "table1_datasets",
    "table3_accuracy",
    "table4_gini",
    "table5_class_counts",
    "table6_groundtruth",
    "tables78_top_originators",
]
