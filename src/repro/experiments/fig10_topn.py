"""Figure 10: class mix of the top-100 / top-1000 / top-10000 originators.

Targets (§ VI-B): the biggest footprints are unsavory — spam dominates
the JP top-100, scan is prominent at the roots; infrastructure classes
(mail, dns, cloud) only appear in the wider cuts; crawler essentially
only in the top-10000.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.footprint import TopNClassMix, class_mix_of_top
from repro.experiments.common import classified

__all__ = ["Fig10Result", "run", "format_table"]

DEFAULT_DATASETS = ("JP-ditl", "B-post-ditl", "M-ditl")
DEFAULT_CUTS = (100, 1000, 10_000)


@dataclass(slots=True)
class Fig10Result:
    mixes: dict[tuple[str, int], TopNClassMix]

    def mix(self, dataset: str, n: int) -> TopNClassMix:
        return self.mixes[(dataset, n)]


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    cuts: tuple[int, ...] = DEFAULT_CUTS,
    preset: str = "default",
) -> Fig10Result:
    mixes: dict[tuple[str, int], TopNClassMix] = {}
    for name in datasets:
        bundle = classified(name, preset)
        for n in cuts:
            mixes[(name, n)] = class_mix_of_top(
                bundle.window, bundle.classification, n
            )
    return Fig10Result(mixes=mixes)


def format_table(result: Fig10Result) -> str:
    from repro.experiments.common import format_rows

    classes = sorted(
        {c for mix in result.mixes.values() for c in mix.fractions}
    )
    rows = []
    for (dataset, n), mix in sorted(result.mixes.items()):
        rows.append(
            [dataset, n] + [f"{mix.fraction(c):.2f}" for c in classes]
        )
    return format_rows(["dataset", "top-N"] + classes, rows)


if __name__ == "__main__":
    print(format_table(run()))
