"""Run experiment modules from the command line.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments table3 fig4
    python -m repro.experiments --all-cheap

Each experiment prints the paper-style table.  The longitudinal
experiments (figs 5-8, 11-15, tables V/VI on M-sampled) regenerate
month-scale datasets and take minutes on first use; they share cached
artifacts within one process, so batching them in a single invocation
is much cheaper than separate runs.

Setting ``REPRO_METRICS_OUT=PATH`` (optionally with
``REPRO_METRICS_FORMAT=prom|jsonl``) installs a metrics registry over
the whole invocation and writes a snapshot when it finishes — the
opt-in the ``repro experiments --metrics-out`` flag maps onto.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.telemetry import MetricsRegistry, use_registry, write_metrics

from repro.experiments import (
    case_studies,
    confusion,
    fig4_controlled,
    fig5_fig6_stability,
    fig7_strategies,
    fig8_consistency,
    fig9_footprints,
    fig10_topn,
    fig11_trends,
    fig12_footprint_boxes,
    fig13_example_scanners,
    fig14_teams,
    fig15_churn,
    fig16_diurnal,
    table1_datasets,
    table3_accuracy,
    table4_gini,
    table5_class_counts,
    table6_groundtruth,
    tables78_top_originators,
)

#: name -> (callable producing printable text, cheap?)
_RUNNERS = {
    "table1": (lambda: table1_datasets.format_table(table1_datasets.run()), True),
    "fig3": (lambda: case_studies.format_static(case_studies.run()), True),
    "table2": (lambda: case_studies.format_dynamic(case_studies.run()), True),
    "table3": (
        lambda: table3_accuracy.format_table(
            table3_accuracy.run(datasets=("JP-ditl", "B-post-ditl", "M-ditl"), repeats=10)
        ),
        True,
    ),
    "table4": (lambda: table4_gini.format_table(table4_gini.run()), True),
    "fig4": (lambda: fig4_controlled.format_table(fig4_controlled.run()), True),
    "fig5-6": (lambda: fig5_fig6_stability.format_table(fig5_fig6_stability.run()), False),
    "fig7": (lambda: fig7_strategies.format_table(fig7_strategies.run()), False),
    "fig8": (lambda: fig8_consistency.format_table(fig8_consistency.run()), False),
    "fig9": (lambda: fig9_footprints.format_table(fig9_footprints.run(("JP-ditl", "B-post-ditl", "M-ditl"))), True),
    "fig10": (lambda: fig10_topn.format_table(fig10_topn.run()), True),
    "table5": (
        lambda: table5_class_counts.format_table(
            table5_class_counts.run(datasets=("JP-ditl", "B-post-ditl", "M-ditl"))
        ),
        True,
    ),
    "table6": (
        lambda: table6_groundtruth.format_table(
            table6_groundtruth.run(datasets=("JP-ditl", "B-post-ditl", "M-ditl"))
        ),
        True,
    ),
    "fig11": (lambda: fig11_trends.format_table(fig11_trends.run()), False),
    "fig12": (lambda: fig12_footprint_boxes.format_table(fig12_footprint_boxes.run()), False),
    "fig13": (lambda: fig13_example_scanners.format_table(fig13_example_scanners.run()), False),
    "fig14": (lambda: fig14_teams.format_table(fig14_teams.run()), False),
    "fig15": (lambda: fig15_churn.format_table(fig15_churn.run()), False),
    "confusion": (lambda: confusion.format_table(confusion.run(repeats=10)), True),
    "table7": (lambda: tables78_top_originators.format_table(tables78_top_originators.run("JP-ditl")), True),
    "table8": (lambda: tables78_top_originators.format_table(tables78_top_originators.run("M-ditl")), True),
    "fig16": (lambda: fig16_diurnal.format_table(fig16_diurnal.run()), True),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from the DNS-backscatter paper.",
    )
    parser.add_argument("names", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--all-cheap",
        action="store_true",
        help="run every experiment that does not need month-scale datasets",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, (_, cheap) in _RUNNERS.items():
            print(f"{name:<10} {'(fast)' if cheap else '(minutes: longitudinal)'}")
        return 0
    names = list(args.names)
    if args.all_cheap:
        names.extend(n for n, (_, cheap) in _RUNNERS.items() if cheap and n not in names)
    if not names:
        parser.print_usage()
        return 2
    unknown = [n for n in names if n not in _RUNNERS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    metrics_out = os.environ.get("REPRO_METRICS_OUT")
    registry = MetricsRegistry() if metrics_out else None
    with use_registry(registry):
        for name in names:
            runner, _ = _RUNNERS[name]
            started = time.time()
            print(f"=== {name} " + "=" * max(0, 60 - len(name)))
            print(runner())
            print(f"--- {name} done in {time.time() - started:.1f}s\n")
    if registry is not None and metrics_out:
        fmt = os.environ.get("REPRO_METRICS_FORMAT") or None
        path = write_metrics(registry, metrics_out, fmt)
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
