"""Tables VII and VIII: the top originators at JP and M, cross-checked.

For the highest-footprint originators, report the evidence columns of
the appendix tables: unique queriers, the originator's PTR TTL (with the
negative-cache/failure markers), darknet addresses hit, blacklist
listings (BLS/BLO), the classifier's verdict, and the true class.
Targets: JP's top list dominated by spam (mostly home-named or nameless
originators) with a few tcp80 team scanners; M's list showing short-TTL
cdn and unreachable scan originators, with scanners the darknet misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import classified
from repro.netmodel.addressing import ip_to_str
from repro.sensor.selection import rank_by_footprint

__all__ = ["TopOriginatorRow", "run", "format_table"]


@dataclass(slots=True)
class TopOriginatorRow:
    rank: int
    originator: int
    queriers: int
    ttl: str
    dark_addresses: int
    bls: int
    blo: int
    predicted: str
    true_class: str
    variant: str | None

    @property
    def clean(self) -> bool:
        return self.dark_addresses == 0 and self.bls == 0 and self.blo == 0


def _ttl_label(dataset, originator: int) -> str:
    spec = dataset.hierarchy.zonedb.spec_for(originator)
    if not spec.reachable:
        return "F"
    if not spec.has_name:
        return f"†{spec.negative_ttl:.0f}s"  # † = negative cache
    ttl = spec.ttl
    if ttl >= 86400:
        return f"{ttl / 86400:.0f}d"
    if ttl >= 3600:
        return f"{ttl / 3600:.0f}h"
    if ttl >= 60:
        return f"{ttl / 60:.0f}m"
    return f"{ttl:.0f}s"


def run(
    dataset_name: str = "JP-ditl", top: int = 30, preset: str = "default"
) -> list[TopOriginatorRow]:
    bundle = classified(dataset_name, preset)
    dataset = bundle.dataset
    truth = dataset.true_classes()
    actors = {a.originator: a for a in dataset.scenario.actors}
    ranked = rank_by_footprint(list(bundle.window.observations.values()))[:top]
    rows: list[TopOriginatorRow] = []
    for rank, observation in enumerate(ranked, start=1):
        originator = observation.originator
        actor = actors.get(originator)
        rows.append(
            TopOriginatorRow(
                rank=rank,
                originator=originator,
                queriers=observation.footprint,
                ttl=_ttl_label(dataset, originator),
                dark_addresses=dataset.darknet.dark_addresses(originator),
                bls=dataset.blacklists.spam_listings(originator),
                blo=dataset.blacklists.other_listings(originator),
                predicted=bundle.classification.get(originator, "-"),
                true_class=truth.get(originator, "?"),
                variant=actor.variant if actor else None,
            )
        )
    return rows


def format_table(rows: list[TopOriginatorRow]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["rank", "originator", "queriers", "TTL", "DarkIP", "BLS", "BLO",
         "class", "true", "note"],
        [
            [r.rank, ip_to_str(r.originator) + "*", r.queriers, r.ttl,
             r.dark_addresses, r.bls, r.blo, r.predicted, r.true_class,
             r.variant or ("clean" if r.clean else "")]
            for r in rows
        ],
    )


if __name__ == "__main__":
    print("Table VII (JP-ditl):")
    print(format_table(run("JP-ditl")))
    print("\nTable VIII (M-ditl):")
    print(format_table(run("M-ditl")))
