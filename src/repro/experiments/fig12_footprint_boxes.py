"""Figure 12: scanner footprint distribution over time (box plot data).

Per week of M-sampled, quantiles of queriers-per-scanner.  Targets:
stable median and quartiles across the nine months, with a much more
volatile 90th percentile — a few very large scanners come and go while
the slow-and-steady core persists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trends import FootprintBox, footprint_boxes
from repro.experiments.common import windowed

__all__ = ["Fig12Result", "run", "format_table"]


@dataclass(slots=True)
class Fig12Result:
    boxes: list[FootprintBox]

    def volatility(self, attribute: str) -> float:
        """Coefficient of variation of a quantile across windows."""
        values = np.array([getattr(box, attribute) for box in self.boxes], dtype=float)
        if len(values) == 0 or values.mean() == 0:
            return float("nan")
        return float(values.std() / values.mean())


def run(preset: str = "default", dataset: str = "M-sampled") -> Fig12Result:
    analysis = windowed(dataset, preset)
    return Fig12Result(boxes=footprint_boxes(analysis, app_class="scan"))


def format_table(result: Fig12Result) -> str:
    from repro.experiments.common import format_rows

    body = format_rows(
        ["day", "p10", "p25", "median", "p75", "p90", "scanners"],
        [
            [f"{b.day:.0f}", f"{b.p10:.0f}", f"{b.p25:.0f}", f"{b.median:.0f}",
             f"{b.p75:.0f}", f"{b.p90:.0f}", b.count]
            for b in result.boxes
        ],
    )
    footer = (
        f"\nvolatility (CV): median {result.volatility('median'):.2f}, "
        f"p90 {result.volatility('p90'):.2f} "
        "(paper: median/quartiles stable, p90 varies considerably)"
    )
    return body + footer


if __name__ == "__main__":
    print(format_table(run()))
