"""Figure 13: example scanners over time (M-sampled + darknet).

The paper plots five scanners that appear in both M-sampled and its
darknet: a long-lived tcp22 (ssh) scanner with the biggest footprint
(part of a /24 team), a long-lived multi-port scanner, a two-month tcp80
scanner, and two one-week tcp443 scanners concurrent with Heartbleed.
We select analogous actors from the generated scenario and extract their
weekly footprint series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.scenario import Actor
from repro.analysis.trends import originator_series
from repro.experiments.common import windowed

__all__ = ["ScannerExample", "run", "format_table"]


@dataclass(slots=True)
class ScannerExample:
    label: str
    originator: int
    variant: str
    darknet_confirmed: bool
    series: list[tuple[float, int]]

    @property
    def weeks_active(self) -> int:
        return len(self.series)

    @property
    def peak_footprint(self) -> int:
        return max((c for _, c in self.series), default=0)


def _pick(
    actors: list[Actor],
    variant: str,
    persistent: bool | None = None,
    window_days: float = 270.0,
) -> Actor | None:
    candidates = [
        a
        for a in actors
        if a.app_class == "scan" and a.variant == variant
        and (persistent is None or a.persistent == persistent)
    ]
    if not candidates:
        return None

    def overlap(actor: Actor) -> float:
        return max(0.0, min(actor.dies_day, window_days) - max(actor.born_day, 0.0))

    # Prefer the scanner most visible in the observation: big audience
    # AND long presence inside the window (a huge scanner that died in
    # week 2 makes a poor longitudinal example).
    return max(candidates, key=lambda a: overlap(a) * a.audience_size)


def run(preset: str = "default", dataset: str = "M-sampled") -> list[ScannerExample]:
    analysis = windowed(dataset, preset)
    confirmed = analysis.dataset.darknet.confirmed_scanners()
    actors = analysis.dataset.scenario.actors
    wanted: list[tuple[str, Actor | None]] = [
        ("tcp22 (persistent)", _pick(actors, "tcp22", persistent=True) or _pick(actors, "tcp22")),
        ("multi (persistent)", _pick(actors, "multi", persistent=True) or _pick(actors, "multi")),
        ("tcp80", _pick(actors, "tcp80")),
        ("tcp443 (heartbleed)", _pick(actors, "tcp443")),
        ("udp53", _pick(actors, "udp53")),
    ]
    chosen = [(label, actor) for label, actor in wanted if actor is not None]
    series = originator_series(analysis, [actor.originator for _, actor in chosen])
    return [
        ScannerExample(
            label=label,
            originator=actor.originator,
            variant=actor.variant or "?",
            darknet_confirmed=actor.originator in confirmed,
            series=series[actor.originator],
        )
        for label, actor in chosen
    ]


def format_table(examples: list[ScannerExample]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["example", "variant", "weeks seen", "peak footprint", "darknet confirmed"],
        [
            [e.label, e.variant, e.weeks_active, e.peak_footprint, e.darknet_confirmed]
            for e in examples
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
