"""Table I: the dataset inventory.

For each generated dataset, report duration, sampling, total queries
(reverse measured from the sensor; "all" modeled from the vantage's
forward query rate) and query rates, mirroring the columns of Table I.
Absolute counts are scaled-world values; the column *shape* — reverse
traffic a small fraction of total, JP reverse-heavy relative to roots,
M-sampled an order sparser — is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generate import get_dataset

__all__ = ["Table1Row", "run", "format_table"]

#: All seven Table I datasets.  In a benchmark session the long ones
#: (M-sampled, B-multi-year) are already cached by the longitudinal
#: figures, so only B-long adds generation cost here.
DEFAULT_DATASETS = (
    "JP-ditl",
    "B-post-ditl",
    "B-long",
    "B-multi-year",
    "M-ditl",
    "M-ditl-2015",
    "M-sampled",
)


@dataclass(frozen=True, slots=True)
class Table1Row:
    name: str
    vantage: str
    start_date: str
    duration: str
    sampling: str
    queries_all: int
    queries_reverse: int
    qps_all: float
    qps_reverse: float


def run(datasets: tuple[str, ...] = DEFAULT_DATASETS, preset: str = "default") -> list[Table1Row]:
    rows: list[Table1Row] = []
    for name in datasets:
        dataset = get_dataset(name, preset)
        spec = dataset.spec
        seconds = spec.duration_days * 86400.0
        reverse = dataset.sensor.seen_reverse
        total = int(spec.forward_qps * seconds) + reverse
        rows.append(
            Table1Row(
                name=name,
                vantage=spec.vantage.name,
                start_date=spec.start_date,
                duration=spec.paper_duration or f"{spec.duration_days:.1f} days",
                sampling=spec.paper_sampling,
                queries_all=total,
                queries_reverse=reverse,
                qps_all=total / seconds,
                qps_reverse=reverse / seconds,
            )
        )
    return rows


def format_table(rows: list[Table1Row]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["dataset", "operator", "start", "duration", "sampling",
         "queries(all)", "queries(rev)", "qps(all)", "qps(rev)"],
        [
            [r.name, r.vantage, r.start_date, r.duration, r.sampling,
             f"{r.queries_all:,}", f"{r.queries_reverse:,}",
             f"{r.qps_all:.1f}", f"{r.qps_reverse:.3f}"]
            for r in rows
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
