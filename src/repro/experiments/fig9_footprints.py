"""Figure 9: distribution of originator footprint sizes per dataset.

For each dataset, the CCDF of unique queriers per originator.  Targets:
heavy-tailed distributions, consistent shape across vantages, and a
meaningful population above the 20-querier analyzability threshold
(hundreds of large originators, as § VI-A reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.footprint import ccdf, footprint_sizes
from repro.datasets.generate import get_dataset
from repro.sensor.engine import SensorEngine

__all__ = ["FootprintCurve", "run", "format_table", "tail_index"]

DEFAULT_DATASETS = ("JP-ditl", "B-post-ditl", "M-ditl", "M-sampled")


@dataclass(slots=True)
class FootprintCurve:
    dataset: str
    sizes: np.ndarray
    x: np.ndarray
    survival: np.ndarray

    @property
    def originators(self) -> int:
        return len(self.sizes)

    @property
    def analyzable(self) -> int:
        return int((self.sizes >= 20).sum())

    @property
    def max_footprint(self) -> int:
        return int(self.sizes.max()) if len(self.sizes) else 0


def tail_index(sizes: np.ndarray, threshold: int = 20) -> float:
    """Hill-style tail exponent over footprints >= threshold.

    Heavy-tailed (Pareto-ish) distributions give small positive values;
    the paper's curves are consistent with exponents around 1-2.
    """
    tail = np.asarray(sizes, dtype=float)
    tail = tail[tail >= threshold]
    if len(tail) < 5:
        return float("nan")
    return float(1.0 / np.mean(np.log(tail / threshold)))


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS, preset: str = "default"
) -> list[FootprintCurve]:
    curves: list[FootprintCurve] = []
    for name in datasets:
        dataset = get_dataset(name, preset)
        # For the long sampled dataset the paper uses d = 1 week; use the
        # first week so footprints are comparable with the DITL curves.
        end = min(dataset.duration_seconds, 7 * 86400.0)
        window = SensorEngine().collect(dataset.sensor.log, 0.0, end)
        sizes = footprint_sizes(window)
        x, survival = ccdf(sizes)
        curves.append(FootprintCurve(dataset=name, sizes=sizes, x=x, survival=survival))
    return curves


def format_table(curves: list[FootprintCurve]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["dataset", "originators", ">=20 queriers", "max footprint", "tail exponent"],
        [
            [
                c.dataset,
                c.originators,
                c.analyzable,
                c.max_footprint,
                f"{tail_index(c.sizes):.2f}",
            ]
            for c in curves
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
