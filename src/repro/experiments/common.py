"""Shared plumbing for the per-table/figure experiment modules.

Experiments share expensive artifacts: generated datasets, extracted
feature sets with ground-truth labels, and windowed longitudinal
analyses.  All are memoized in-process so a benchmark session generates
each dataset exactly once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.longitudinal import WindowedAnalysis, analyze_dataset
from repro.datasets.generate import GeneratedDataset, get_dataset
from repro.datasets.specs import spec_for
from repro.ml.validation import LabelEncoder
from repro.sensor.collection import ObservationWindow
from repro.sensor.curation import LabeledSet
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.features import FeatureSet

__all__ = [
    "LabeledFeatures",
    "sensor_config",
    "featurize_workers",
    "federation_shards",
    "sketch_overrides",
    "labeled_features",
    "windowed",
    "format_rows",
]

SECONDS_PER_DAY = 86400.0

#: Window length per long dataset, following § III-B (d values).
WINDOW_DAYS = {"M-sampled": 7.0, "B-multi-year": 1.0, "B-long": 7.0}

#: Analyzability bar per long dataset.  The paper uses 20 queriers at
#: Internet scale (audiences of 10^5-10^6); our scaled world divides
#: footprints by ~10^2-10^3, and the 1:10-sampled M vantage by another
#: ~3-5x, so the sampled/attenuated vantages scale the bar down with
#: them (DESIGN.md § 2's "scale thresholds accordingly").
MIN_QUERIERS = {"M-sampled": 10, "B-multi-year": 10, "B-long": 10}

#: Curation windows per dataset for longitudinal analyses: M-sampled is
#: curated three times about a month apart (§ III-E); B-multi-year once,
#: mid-window.
CURATION_WINDOWS = {"M-sampled": (8, 13, 21), "B-multi-year": (178,), "B-long": (2,)}


@dataclass(slots=True)
class LabeledFeatures:
    """A dataset's sensor-side features joined with true classes."""

    dataset: GeneratedDataset
    X: np.ndarray
    y: np.ndarray
    encoder: LabelEncoder
    originators: np.ndarray
    footprints: np.ndarray

    @property
    def n_classes(self) -> int:
        return len(self.encoder)

    def class_names(self) -> list[str]:
        return list(self.encoder.classes)


_FEATURE_CACHE: dict[tuple[str, str], LabeledFeatures] = {}
_WINDOW_CACHE: dict[tuple[str, str], WindowedAnalysis] = {}


def sensor_config(name: str, preset: str = "default", **overrides) -> SensorConfig:
    """The per-dataset sensor deployment, as one :class:`SensorConfig`.

    Gathers the per-vantage knobs that § III-B assigns per dataset —
    window length d and the (scaled) analyzability bar — which used to
    be repeated as loose kwargs by every cache-builder here.
    """
    spec = spec_for(name, preset)
    # One observation interval: the whole dataset for the DITL captures,
    # d = 7 days (1 for B-multi-year) for the long ones.
    window_days = min(spec.duration_days, WINDOW_DAYS.get(name, 7.0))
    config = SensorConfig(
        window_seconds=window_days * SECONDS_PER_DAY,
        min_queriers=MIN_QUERIERS.get(name, 20),
        featurize_workers=featurize_workers(),
        **sketch_overrides(),
    )
    return config.replaced(**overrides) if overrides else config


def featurize_workers() -> int:
    """Featurize worker-process count, from ``REPRO_FEATURIZE_WORKERS``.

    Experiments run many windows back to back, so the knob is an
    environment variable rather than a per-experiment argument; results
    are bit-identical regardless of the value.  Unset or invalid → 1
    (serial).
    """
    try:
        return max(1, int(os.environ.get("REPRO_FEATURIZE_WORKERS", "1")))
    except ValueError:
        return 1


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def federation_shards() -> int:
    """Shard count for federated sensing, from ``REPRO_SHARDS``.

    With a value > 1 the experiment cache-builders run their batch
    sensing through a :class:`repro.federation.FederatedSensor` instead
    of a single engine; results are bit-identical either way, so — like
    the other work-shaping knobs — it travels as an environment variable
    rather than a cache key.  Unset or invalid → 1 (single engine).
    """
    return max(1, _env_int("REPRO_SHARDS", 1))


def sketch_overrides() -> dict:
    """Sketch pre-stage knobs from the environment, as config overrides.

    ``REPRO_SKETCH=1`` enables the probabilistic pre-select stage for
    every experiment-built :class:`SensorConfig`;
    ``REPRO_SKETCH_WIDTH`` / ``REPRO_SKETCH_DEPTH`` /
    ``REPRO_SKETCH_HLL_PRECISION`` tune its geometry.  Like
    ``REPRO_FEATURIZE_WORKERS``, these travel as environment variables
    because the experiment caches are keyed by dataset, not by knob.
    Unset (or ``REPRO_SKETCH`` falsy) → no overrides.
    """
    if os.environ.get("REPRO_SKETCH", "").lower() not in ("1", "true", "yes", "on"):
        return {}
    return {
        "sketch_enabled": True,
        "sketch_width": _env_int("REPRO_SKETCH_WIDTH", 4096),
        "sketch_depth": _env_int("REPRO_SKETCH_DEPTH", 4),
        "hll_precision": _env_int("REPRO_SKETCH_HLL_PRECISION", 6),
    }


def labeled_features(name: str, preset: str = "default") -> LabeledFeatures:
    """Features of every analyzable originator, labeled with true classes.

    Used for Table III-style evaluation: the expert ground truth in our
    reproduction is the actor record itself (curation via external
    sources is exercised separately by Table VI).
    """
    key = (name, preset)
    if key in _FEATURE_CACHE:
        return _FEATURE_CACHE[key]
    dataset = get_dataset(name, preset)
    config = sensor_config(name, preset)
    shards = federation_shards()
    # Replay the sensor log in columnar form: the block path is array
    # math end to end and bit-identical to per-object ingestion.  With
    # REPRO_SHARDS > 1 the same replay runs federated (also
    # bit-identical; see repro.federation).
    if shards > 1:
        from repro.federation import FederatedSensor

        with FederatedSensor(
            dataset.directory(), config, n_shards=shards
        ) as federated:
            sensed = federated.process(
                dataset.sensor.log.block(),
                0.0,
                config.window_seconds,
                classify=False,
            )
            features = sensed[0].features
    else:
        engine = SensorEngine(dataset.directory(), config)
        sensed = engine.process(
            dataset.sensor.log.block(), 0.0, config.window_seconds, classify=False
        )
        features = sensed[0].features
    truth = dataset.true_classes()
    keep = np.array([int(o) in truth for o in features.originators], dtype=bool)
    names = [truth[int(o)] for o in features.originators[keep]]
    encoder = LabelEncoder(sorted(set(names)))
    bundle = LabeledFeatures(
        dataset=dataset,
        X=features.matrix[keep],
        y=encoder.encode(names),
        encoder=encoder,
        originators=features.originators[keep],
        footprints=features.footprints[keep],
    )
    _FEATURE_CACHE[key] = bundle
    return bundle


def windowed(name: str, preset: str = "default") -> WindowedAnalysis:
    """Memoized windowed (longitudinal) analysis of a long dataset."""
    key = (name, preset)
    if key in _WINDOW_CACHE:
        return _WINDOW_CACHE[key]
    dataset = get_dataset(name, preset)
    config = sensor_config(name, preset)
    window_days = config.window_days
    curation = CURATION_WINDOWS.get(name, (0,))
    total_windows = max(1, int(spec_for(name, preset).duration_days // window_days))
    curation = tuple(min(c, total_windows - 1) for c in curation)
    analysis = analyze_dataset(
        dataset,
        window_days=window_days,
        min_queriers=config.min_queriers,
        curation_windows=curation,
        per_class_cap=60,
        # Figs 5-7 (B-multi-year) only need features + the labeled set;
        # skipping per-window classification saves hundreds of RF fits.
        classify=name != "B-multi-year",
    )
    _WINDOW_CACHE[key] = analysis
    return analysis


@dataclass(slots=True)
class ClassifiedDataset:
    """One short dataset fully classified: the Figs 10 / Tables V inputs."""

    dataset: GeneratedDataset
    window: ObservationWindow
    features: FeatureSet
    labeled: LabeledSet
    classification: dict[int, str]


_CLASSIFIED_CACHE: dict[tuple[str, str], ClassifiedDataset] = {}


def classified(name: str, preset: str = "default") -> ClassifiedDataset:
    """Curate per § IV-B, train RF on the full ground truth, classify all.

    Matches the paper's Table V procedure: "our preferred classifier (RF)
    with per-dataset training over the entire ground-truth".
    """
    from repro.analysis.longitudinal import curate_from_window, slice_windows

    key = (name, preset)
    if key in _CLASSIFIED_CACHE:
        return _CLASSIFIED_CACHE[key]
    dataset = get_dataset(name, preset)
    # One window spanning the whole dataset (or the first week for the
    # 9-month sampled dataset, matching its d = 7 days).
    config = sensor_config(name, preset, majority_runs=5, seed=dataset.spec.seed + 5)
    window = slice_windows(dataset, config.window_days, config.min_queriers)[0]
    labeled = curate_from_window(
        dataset, window, per_class_cap=140, min_queriers=config.min_queriers
    )
    engine = SensorEngine(dataset.directory(), config)
    classification: dict[int, str] = {}
    present = labeled.restrict_to(window.originators())
    if len(present) >= 8 and len(present.classes_present()) >= 2:
        engine.fit(window.features, present)
        classification = engine.classify_map(window.features)
    bundle = ClassifiedDataset(
        dataset=dataset,
        window=window.observations,
        features=window.features,
        labeled=labeled,
        classification=classification,
    )
    _CLASSIFIED_CACHE[key] = bundle
    return bundle


def format_rows(headers: list[str], rows: list[list[object]]) -> str:
    """Plain-text table formatting for experiment printouts."""
    table = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
