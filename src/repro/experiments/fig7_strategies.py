"""Figure 7: training strategies over time on B-multi-year.

Compare train-once, train-daily (fixed labels, fresh features), and
automatic label growing.  Targets: train-once degrades away from the
curation day; train-daily sustains near-curation performance for months
(longer for benign-heavy periods); auto-grow collapses within weeks as
classification error compounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import windowed
from repro.sensor.pipeline import default_forest_factory
from repro.sensor.training import Strategy, TimeSeriesEvaluation, evaluate_strategy

__all__ = ["Fig7Result", "run", "format_table"]


@dataclass(slots=True)
class Fig7Result:
    curation_day: float
    evaluations: dict[Strategy, TimeSeriesEvaluation]


def run(
    preset: str = "default",
    dataset: str = "B-multi-year",
    stride: int = 7,
    seed: int = 0,
) -> Fig7Result:
    """Evaluate the three strategies on every *stride*-th window.

    B-multi-year uses one-day windows; evaluating weekly keeps the cost
    of three strategies × hundreds of windows manageable without
    changing the curves' shape.
    """
    analysis = windowed(dataset, preset)
    labeled = analysis.labeled
    if labeled is None or len(labeled) == 0:
        raise RuntimeError("no labeled set for strategy evaluation")
    windows = [
        (window.mid_day, window.features)
        for window in analysis.windows[::stride]
    ]
    curation_day = min(example.curated_day for example in labeled)
    evaluations = {
        strategy: evaluate_strategy(
            strategy,
            windows,
            labeled,
            default_forest_factory,
            curation_day=curation_day,
            seed=seed,
        )
        for strategy in Strategy
    }
    return Fig7Result(curation_day=curation_day, evaluations=evaluations)


def format_table(result: Fig7Result) -> str:
    from repro.experiments.common import format_rows

    rows = []
    for strategy, evaluation in result.evaluations.items():
        series = evaluation.f1_series()
        near = [f for d, f in series if abs(d - result.curation_day) <= 15]
        far = [f for d, f in series if d - result.curation_day >= 90]
        rows.append(
            [
                strategy.value,
                f"{evaluation.mean_f1():.2f}",
                f"{sum(near) / len(near):.2f}" if near else "-",
                f"{sum(far) / len(far):.2f}" if far else "-",
                f"{evaluation.trained_fraction():.2f}",
            ]
        )
    return format_rows(
        ["strategy", "mean f1", "f1 near curation", "f1 at +3mo", "windows trained"],
        rows,
    )


if __name__ == "__main__":
    print(format_table(run()))
