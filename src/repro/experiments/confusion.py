"""Per-class confusion analysis (§ IV-C's misclassification discussion).

The paper reports where its classifier goes wrong: classes with sparse
training data (ntp, update, ad-tracker, cdn for JP-ditl) are mislabeled
most, and p2p is sometimes misclassified as scan because misbehaving
P2P clients also spray random addresses.  This experiment aggregates a
cross-validated confusion matrix and reports per-class recall plus the
most common confusion for each class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import labeled_features
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import confusion_matrix
from repro.ml.validation import train_test_split

__all__ = ["ClassConfusion", "ConfusionResult", "run", "format_table"]


@dataclass(frozen=True, slots=True)
class ClassConfusion:
    app_class: str
    support: int
    recall: float
    top_confusion: str | None
    top_confusion_fraction: float


@dataclass(slots=True)
class ConfusionResult:
    dataset: str
    classes: list[str]
    matrix: np.ndarray
    per_class: list[ClassConfusion]

    def confusion(self, true_class: str, predicted: str) -> float:
        """Fraction of *true_class* samples predicted as *predicted*."""
        i = self.classes.index(true_class)
        j = self.classes.index(predicted)
        row_total = self.matrix[i].sum()
        return float(self.matrix[i, j] / row_total) if row_total else 0.0

    def recall_of(self, app_class: str) -> float:
        for record in self.per_class:
            if record.app_class == app_class:
                return record.recall
        raise KeyError(app_class)


def run(
    dataset: str = "JP-ditl",
    repeats: int = 20,
    preset: str = "default",
    seed: int = 0,
) -> ConfusionResult:
    """Aggregate test-fold confusion over repeated 60/40 splits."""
    bundle = labeled_features(dataset, preset)
    rng = np.random.default_rng(seed)
    total = np.zeros((bundle.n_classes, bundle.n_classes), dtype=int)
    for _ in range(repeats):
        train, test = train_test_split(len(bundle.y), 0.6, rng, stratify=bundle.y)
        model = RandomForestClassifier(seed=int(rng.integers(2**63)))
        model.fit(bundle.X[train], bundle.y[train])
        predictions = model.predict(bundle.X[test])
        total += confusion_matrix(bundle.y[test], predictions, bundle.n_classes)
    classes = bundle.class_names()
    per_class: list[ClassConfusion] = []
    for i, name in enumerate(classes):
        row = total[i]
        support = int(row.sum())
        recall = float(row[i] / support) if support else 0.0
        off = [(classes[j], int(row[j])) for j in range(len(classes)) if j != i]
        off.sort(key=lambda kv: -kv[1])
        top_name, top_count = (off[0] if off and off[0][1] > 0 else (None, 0))
        per_class.append(
            ClassConfusion(
                app_class=name,
                support=support,
                recall=recall,
                top_confusion=top_name,
                top_confusion_fraction=(top_count / support) if support else 0.0,
            )
        )
    return ConfusionResult(
        dataset=dataset, classes=classes, matrix=total, per_class=per_class
    )


def format_table(result: ConfusionResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["class", "test samples", "recall", "most confused with", "fraction"],
        [
            [
                record.app_class,
                record.support,
                f"{record.recall:.2f}",
                record.top_confusion or "-",
                f"{record.top_confusion_fraction:.2f}",
            ]
            for record in sorted(result.per_class, key=lambda r: r.recall)
        ],
    )


if __name__ == "__main__":
    print(format_table(run(repeats=10)))
