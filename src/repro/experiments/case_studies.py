"""Figure 3 + Table II: static and dynamic features of six case studies.

The paper illustrates its features on six originators from JP-ditl:
scan-icmp (a research outage-detection scanner), scan-ssh, ad-tracker,
cdn, mail (a newspaper's mailing list), and spam.  We pick the largest-
footprint actor of each kind in the generated JP-ditl and report its
static category fractions (Fig 3) and key dynamic features (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generate import GeneratedDataset, get_dataset
from repro.sensor.directory import WorldDirectory
from repro.sensor.engine import SensorEngine
from repro.sensor.dynamic import WindowContext, dynamic_feature_dict
from repro.sensor.static import static_feature_dict

__all__ = ["CaseStudy", "CASES", "run", "format_static", "format_dynamic"]

#: (case label, app class, scan-variant constraint or None)
CASES: tuple[tuple[str, str, str | None], ...] = (
    ("scan-icmp", "scan", "icmp"),
    ("scan-ssh", "scan", "tcp22"),
    ("ad-track", "ad-tracker", None),
    ("cdn", "cdn", None),
    ("mail", "mail", None),
    ("spam", "spam", None),
)


@dataclass(frozen=True, slots=True)
class CaseStudy:
    label: str
    originator: int
    footprint: int
    static: dict[str, float]
    dynamic: dict[str, float]


def _pick_exemplars(dataset: GeneratedDataset) -> dict[str, int]:
    """Best exemplar per case: big audience, active across the window.

    Coverage matters for the temporal features: a scanner whose campaign
    spans the whole 50-hour capture illustrates scan behaviour; one that
    fired for two hours does not.  (Mail is inherently a burst, so its
    low coverage is the behaviour.)
    """
    window_days = dataset.spec.duration_days
    coverage: dict[int, float] = {}
    for campaign in dataset.scenario.campaigns:
        start_day = campaign.start / 86400.0
        end_day = campaign.end / 86400.0
        overlap = max(0.0, min(end_day, window_days) - max(start_day, 0.0))
        coverage[campaign.originator] = coverage.get(campaign.originator, 0.0) + overlap
    chosen: dict[str, int] = {}
    for label, app_class, variant in CASES:
        candidates = [
            actor
            for actor in dataset.scenario.actors
            if actor.app_class == app_class
            and (variant is None or actor.variant == variant)
        ]
        if not candidates:
            # Fall back to any actor of the class (variant missing in a
            # small scenario draw).
            candidates = [
                a for a in dataset.scenario.actors if a.app_class == app_class
            ]
        if candidates:
            # Lexicographic: window coverage first (quantized to 1/4 day
            # so it dominates), audience as the tiebreak — a half-window
            # burst must not outrank a full-window scanner just by size.
            chosen[label] = max(
                candidates,
                key=lambda a: (
                    round(coverage.get(a.originator, 0.0) * 4),
                    a.audience_size,
                ),
            ).originator
    return chosen


def run(preset: str = "default") -> list[CaseStudy]:
    dataset = get_dataset("JP-ditl", preset)
    directory = WorldDirectory(dataset.world)
    window = SensorEngine().collect(
        dataset.sensor.log, 0.0, dataset.duration_seconds
    )
    context = WindowContext.from_window(window, directory)
    cases: list[CaseStudy] = []
    for label, originator in _pick_exemplars(dataset).items():
        observation = window.observations.get(originator)
        if observation is None or observation.footprint < 5:
            continue
        cases.append(
            CaseStudy(
                label=label,
                originator=originator,
                footprint=observation.footprint,
                static=static_feature_dict(observation, directory),
                dynamic=dynamic_feature_dict(observation, directory, context),
            )
        )
    return cases


def format_static(cases: list[CaseStudy]) -> str:
    """Fig 3 as a table: category fractions per case study."""
    from repro.experiments.common import format_rows
    from repro.sensor.keywords import STATIC_CATEGORIES

    shown = [c for c in STATIC_CATEGORIES]
    return format_rows(
        ["case"] + shown,
        [
            [c.label] + [f"{c.static[cat]:.2f}" for cat in shown]
            for c in cases
        ],
    )


def format_dynamic(cases: list[CaseStudy]) -> str:
    """Table II: queries/querier, entropies, queriers/country."""
    from repro.experiments.common import format_rows

    return format_rows(
        ["case", "queries/querier", "global entropy", "local entropy", "queriers/country"],
        [
            [
                c.label,
                f"{c.dynamic['dyn_queries_per_querier']:.1f}",
                f"{c.dynamic['dyn_global_entropy']:.2f}",
                f"{c.dynamic['dyn_local_entropy']:.2f}",
                f"{c.dynamic['dyn_queriers_per_country']:.4f}",
            ]
            for c in cases
        ],
    )


if __name__ == "__main__":
    results = run()
    print(format_static(results))
    print()
    print(format_dynamic(results))
