"""Table IV: top discriminative features by Gini importance.

Fit the random forest on a dataset's full labeled features and rank
features by accumulated Gini decrease.  The paper's top-6 for JP-ditl
and M-ditl are dominated by the mail, home, nxdomain, and unreach static
features plus one dynamic feature (global entropy for JP, query rate for
M); the reproduction target is that same mix of static-name dominance
with a dynamic feature in the top ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import labeled_features
from repro.ml.forest import ForestConfig, RandomForestClassifier
from repro.sensor.features import FEATURE_NAMES

__all__ = ["FeatureRank", "run", "format_table"]


@dataclass(frozen=True, slots=True)
class FeatureRank:
    dataset: str
    rank: int
    feature: str
    gini: float
    """Importance as a percentage of total Gini decrease (the paper's
    Gini column is on a comparable 0-100-ish scale)."""

    @property
    def kind(self) -> str:
        return "S" if self.feature.startswith("static_") else "D"


def run(
    datasets: tuple[str, ...] = ("JP-ditl", "M-ditl"),
    top_k: int = 6,
    preset: str = "default",
    seed: int = 0,
) -> list[FeatureRank]:
    rows: list[FeatureRank] = []
    for name in datasets:
        bundle = labeled_features(name, preset)
        forest = RandomForestClassifier(ForestConfig(n_trees=100), seed=seed)
        forest.fit(bundle.X, bundle.y)
        importances = forest.feature_importances_
        order = np.argsort(importances)[::-1][:top_k]
        for rank, feature_index in enumerate(order, start=1):
            rows.append(
                FeatureRank(
                    dataset=name,
                    rank=rank,
                    feature=FEATURE_NAMES[int(feature_index)],
                    gini=float(importances[int(feature_index)] * 100.0),
                )
            )
    return rows


def cross_check(
    dataset: str = "JP-ditl",
    preset: str = "default",
    seed: int = 0,
) -> dict[str, float]:
    """Model-agnostic validation of the Gini ranking.

    Fits RF on 60% of the labeled data and computes permutation
    importance on the held-out 40%; returns feature → accuracy drop.
    Used by the Table IV bench to confirm the top Gini features carry
    genuine held-out predictive power (Gini importances alone can be
    artifacts of cardinality).
    """
    from repro.ml.importance import permutation_importance
    from repro.ml.validation import train_test_split

    bundle = labeled_features(dataset, preset)
    rng = np.random.default_rng(seed)
    train, test = train_test_split(len(bundle.y), 0.6, rng, stratify=bundle.y)
    forest = RandomForestClassifier(ForestConfig(n_trees=100), seed=seed)
    forest.fit(bundle.X[train], bundle.y[train])
    drops = permutation_importance(
        forest, bundle.X[test], bundle.y[test], repeats=5, seed=seed
    )
    return dict(zip(FEATURE_NAMES, drops.tolist()))


def format_table(rows: list[FeatureRank]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["dataset", "rank", "feature", "kind", "gini"],
        [[r.dataset, r.rank, r.feature, r.kind, f"{r.gini:.1f}"] for r in rows],
    )


if __name__ == "__main__":
    print(format_table(run()))
