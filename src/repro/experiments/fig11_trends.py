"""Figure 11: number of originators over time on M-sampled.

Weekly counts per class plus total.  Targets: a large continuous
background of scanning; a visible scan bump in the weeks after the
Heartbleed announcement (day 50 of the collection, 2014-04-07); scan and
spam the dominant classes throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trends import class_count_series
from repro.datasets.specs import HEARTBLEED_DAY
from repro.experiments.common import windowed

__all__ = ["Fig11Result", "run", "format_table"]


@dataclass(slots=True)
class Fig11Result:
    series: list[tuple[float, dict[str, int], int]]
    heartbleed_day: float

    def scan_series(self) -> list[tuple[float, int]]:
        return [(day, counts.get("scan", 0)) for day, counts, _ in self.series]

    def heartbleed_bump(self) -> float:
        """Scan count around the event relative to the weeks before it."""
        scans = self.scan_series()
        before = [c for d, c in scans if self.heartbleed_day - 35 <= d < self.heartbleed_day]
        after = [c for d, c in scans if self.heartbleed_day <= d < self.heartbleed_day + 21]
        if not before or not after or max(before) == 0:
            return float("nan")
        return max(after) / (sum(before) / len(before))


def run(preset: str = "default", dataset: str = "M-sampled") -> Fig11Result:
    analysis = windowed(dataset, preset)
    return Fig11Result(
        series=class_count_series(analysis),
        heartbleed_day=HEARTBLEED_DAY,
    )


def format_table(result: Fig11Result) -> str:
    from repro.experiments.common import format_rows

    rows = []
    for day, counts, total in result.series:
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:3]
        rows.append(
            [f"{day:.0f}", total, counts.get("scan", 0), counts.get("spam", 0),
             counts.get("mail", 0), ", ".join(f"{k}:{v}" for k, v in top)]
        )
    bump = result.heartbleed_bump()
    footer = (
        f"\nHeartbleed (day {result.heartbleed_day:.0f}) scan bump: "
        f"x{bump:.2f} over the prior weeks' mean (paper: >25% increase)"
        if np.isfinite(bump)
        else "\nHeartbleed bump not measurable in this draw"
    )
    return (
        format_rows(["day", "total", "scan", "spam", "mail", "top classes"], rows)
        + footer
    )


if __name__ == "__main__":
    print(format_table(run()))
