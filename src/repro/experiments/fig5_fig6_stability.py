"""Figures 5 and 6: labeled-example activity around the curation day.

Count, per observation window of B-multi-year, how many curated labeled
examples are still active (re-appearing).  Targets: benign examples decay
slowly (≈10% per month) and symmetrically before/after curation; the
malicious classes (scan, spam) fall to ≈50% within a month either side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trends import reappearance_series
from repro.experiments.common import windowed

__all__ = ["StabilityResult", "run", "monthly_retention", "format_table"]


@dataclass(slots=True)
class StabilityResult:
    curation_day: float
    benign: list[tuple[float, int]]
    malicious: list[tuple[float, int]]
    per_class: dict[str, list[tuple[float, int]]]


def run(preset: str = "default", dataset: str = "B-multi-year") -> StabilityResult:
    analysis = windowed(dataset, preset)
    labeled = analysis.labeled
    if labeled is None or len(labeled) == 0:
        raise RuntimeError("windowed analysis produced no labeled set")
    curation_day = float(
        np.median([example.curated_day for example in labeled])
    )
    per_class = {
        app_class: reappearance_series(analysis, labeled, app_class)
        for app_class in sorted(labeled.classes_present())
    }
    return StabilityResult(
        curation_day=curation_day,
        benign=reappearance_series(analysis, labeled, "benign"),
        malicious=reappearance_series(analysis, labeled, "malicious"),
        per_class=per_class,
    )


def monthly_retention(
    series: list[tuple[float, int]], curation_day: float, months: float = 1.0
) -> float:
    """Fraction of curation-day activity still present *months* later.

    Averages a ±4-day neighborhood around each endpoint to smooth
    window-to-window noise.
    """

    def level(day: float) -> float:
        nearby = [count for d, count in series if abs(d - day) <= 4.0]
        return float(np.mean(nearby)) if nearby else 0.0

    base = level(curation_day)
    if base == 0:
        return 0.0
    return level(curation_day + months * 30.0) / base


def format_table(result: StabilityResult) -> str:
    from repro.experiments.common import format_rows

    rows = []
    for label, series in (("benign", result.benign), ("malicious", result.malicious)):
        rows.append(
            [
                label,
                f"{monthly_retention(series, result.curation_day, 1.0):.2f}",
                f"{monthly_retention(series, result.curation_day, 3.0):.2f}",
                f"{monthly_retention(series, result.curation_day, 6.0):.2f}",
            ]
        )
    header = f"curation day: {result.curation_day:.0f}\n"
    return header + format_rows(
        ["group", "retained @1mo", "@3mo", "@6mo"], rows
    )


if __name__ == "__main__":
    print(format_table(run()))
