"""Figure 4: controlled random scans vs queriers at the final authority.

Sweep scan sizes from 0.0001% to 100% of the (scaled) space, count unique
queriers at the final authority (PTR TTL = 0) and at the B/M roots, fit
the power law, and locate the 20-querier detection threshold.  Targets:
a sub-linear power-law (paper: exponent 0.71, roughly one querier per
thousand targets), strong attenuation at roots (single digits where the
final authority sees thousands), and full detection above ~0.001% scans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.controlled import (
    ControlledTrial,
    fit_power_law,
    run_experiment,
)
from repro.netmodel.world import World, WorldConfig

__all__ = ["Fig4Result", "run", "format_table"]

DEFAULT_FRACTIONS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


@dataclass(slots=True)
class Fig4Result:
    trials: list[ControlledTrial]
    power: float
    coefficient: float
    detection_fraction: float | None
    """Smallest scanned fraction whose trials all clear 20 queriers."""


def run(
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    trials_per_fraction: int = 3,
    world_scale: float = 1.0,
    seed: int = 42,
    fit_max_fraction: float = 1e-3,
) -> Fig4Result:
    """Sweep, fit, and locate the detection threshold.

    The power law is fitted only over scans up to *fit_max_fraction* of
    the space — the paper's ZMap trials cover 0.0001%-0.1%; the
    full-space Trinocular censuses are plotted but sit in the saturated
    regime where the querier pool itself limits growth.
    """
    world = World(WorldConfig(seed=seed, scale=world_scale))
    trials = run_experiment(
        world, fractions=fractions, trials_per_fraction=trials_per_fraction, seed=seed
    )
    fit_trials = [t for t in trials if t.fraction <= fit_max_fraction]
    try:
        power, coefficient = fit_power_law(fit_trials or trials)
    except ValueError:
        # Degenerate sweeps (tiny scans that trip no queriers) have no
        # fittable points; report NaN rather than fail.
        power, coefficient = float("nan"), float("nan")
    detection = None
    for fraction in sorted(fractions):
        members = [t for t in trials if t.fraction == fraction]
        if members and all(t.final_queriers >= 20 for t in members):
            detection = fraction
            break
    return Fig4Result(
        trials=trials, power=power, coefficient=coefficient, detection_fraction=detection
    )


def format_table(result: Fig4Result) -> str:
    from repro.experiments.common import format_rows

    body = format_rows(
        ["fraction", "targets", "final queriers", "b-root", "m-root"],
        [
            [f"{t.fraction:.0e}", f"{t.targets:,}", t.final_queriers,
             t.b_root_queriers, t.m_root_queriers]
            for t in result.trials
        ],
    )
    footer = (
        f"\npower-law fit: queriers ~ {result.coefficient:.3g} * targets^{result.power:.2f}"
        f"  (paper: exponent 0.71)\n"
        f"all trials detected (>=20 queriers) from fraction: {result.detection_fraction}"
    )
    return body + footer


if __name__ == "__main__":
    print(format_table(run()))
