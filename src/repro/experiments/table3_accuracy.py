"""Table III: classification accuracy of CART / RF / SVM per dataset.

The § IV-C protocol: 60% random train / 40% test, repeated 50 times,
mean ± standard deviation of accuracy, precision, recall, and F1.  The
reproduction target: RF best (≈0.7-0.8 accuracy), CART clearly worse,
SVM in between, JP (unsampled, low in hierarchy) beating the short root
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import labeled_features
from repro.ml.cart import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.svm import SvmClassifier
from repro.ml.validation import HoldoutSummary, repeated_holdout

__all__ = ["ALGORITHMS", "Table3Row", "run", "format_table"]

ALGORITHMS = ("CART", "RF", "SVM")

DEFAULT_DATASETS = ("JP-ditl", "B-post-ditl", "M-ditl", "M-sampled")


def _factory(algorithm: str):
    if algorithm == "CART":
        return lambda s: DecisionTreeClassifier(rng=np.random.default_rng(s))
    if algorithm == "RF":
        return lambda s: RandomForestClassifier(seed=s)
    if algorithm == "SVM":
        return lambda s: SvmClassifier(seed=s)
    raise ValueError(f"unknown algorithm {algorithm!r}")


@dataclass(frozen=True, slots=True)
class Table3Row:
    dataset: str
    algorithm: str
    summary: HoldoutSummary


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    algorithms: tuple[str, ...] = ALGORITHMS,
    repeats: int = 50,
    preset: str = "default",
    seed: int = 0,
) -> list[Table3Row]:
    rows: list[Table3Row] = []
    for name in datasets:
        bundle = labeled_features(name, preset)
        for algorithm in algorithms:
            summary = repeated_holdout(
                _factory(algorithm),
                bundle.X,
                bundle.y,
                bundle.n_classes,
                repeats=repeats,
                train_fraction=0.6,
                seed=seed,
            )
            rows.append(Table3Row(dataset=name, algorithm=algorithm, summary=summary))
    return rows


def format_table(rows: list[Table3Row]) -> str:
    from repro.experiments.common import format_rows

    def cell(mean: float, std: float) -> str:
        return f"{mean:.2f} ({std:.2f})"

    return format_rows(
        ["dataset", "algorithm", "accuracy", "precision", "recall", "f1"],
        [
            [
                r.dataset,
                r.algorithm,
                cell(r.summary.accuracy_mean, r.summary.accuracy_std),
                cell(r.summary.precision_mean, r.summary.precision_std),
                cell(r.summary.recall_mean, r.summary.recall_std),
                cell(r.summary.f1_mean, r.summary.f1_std),
            ]
            for r in rows
        ],
    )


if __name__ == "__main__":
    print(format_table(run(repeats=10)))
