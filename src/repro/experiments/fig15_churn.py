"""Figure 15: week-by-week churn of scan-class originators.

Targets: every week has new, continuing, and departing scanners; the
turnover runs around 20% per week; and a stable core of continuing
scanners is always present.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trends import ChurnPoint, churn_series
from repro.experiments.common import windowed

__all__ = ["Fig15Result", "run", "format_table"]


@dataclass(slots=True)
class Fig15Result:
    points: list[ChurnPoint]

    def mean_turnover(self) -> float:
        """Mean fraction of each week's scanners that are new."""
        rates = [
            p.new / p.total for p in self.points[1:] if p.total > 0
        ]
        return float(np.mean(rates)) if rates else float("nan")

    def continuing_core(self) -> int:
        """Smallest weekly continuing count after the first week."""
        values = [p.continuing for p in self.points[1:]]
        return min(values) if values else 0


def run(preset: str = "default", dataset: str = "M-sampled") -> Fig15Result:
    analysis = windowed(dataset, preset)
    return Fig15Result(points=churn_series(analysis, app_class="scan"))


def format_table(result: Fig15Result) -> str:
    from repro.experiments.common import format_rows

    body = format_rows(
        ["day", "new", "continuing", "departing"],
        [
            [f"{p.day:.0f}", p.new, p.continuing, -p.departing]
            for p in result.points
        ],
    )
    footer = (
        f"\nmean weekly turnover: {result.mean_turnover():.2f} (paper: ~20%); "
        f"smallest weekly continuing core: {result.continuing_core()}"
    )
    return body + footer


if __name__ == "__main__":
    print(format_table(run()))
