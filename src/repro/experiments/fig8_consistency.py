"""Figure 8: CDF of the majority-class ratio r on M-sampled.

Classify every window of M-sampled, vote per originator across weeks,
and report the distribution of r (the fraction of weeks the preferred
class was assigned) for querier thresholds q ∈ {20, 50, 75, 100}.
Targets: higher q → more consistent classifications, and 85-90% of
originators have a strict-majority class (r > 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.consistency import (
    ConsistencyRecord,
    consistency_ratios,
    majority_fraction,
    ratio_cdf,
)
from repro.experiments.common import windowed

__all__ = ["Fig8Result", "run", "format_table"]

DEFAULT_THRESHOLDS = (20, 50, 75, 100)


@dataclass(slots=True)
class Fig8Result:
    by_threshold: dict[int, list[ConsistencyRecord]]

    def cdf(self, q: int):
        return ratio_cdf(self.by_threshold[q])

    def majority_fraction(self, q: int) -> float:
        return majority_fraction(self.by_threshold[q])


def run(
    preset: str = "default",
    dataset: str = "M-sampled",
    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS,
    min_appearances: int = 4,
) -> Fig8Result:
    analysis = windowed(dataset, preset)
    return Fig8Result(
        by_threshold={
            q: consistency_ratios(analysis, min_queriers=q, min_appearances=min_appearances)
            for q in thresholds
        }
    )


def format_table(result: Fig8Result) -> str:
    from repro.experiments.common import format_rows

    rows = []
    for q, records in sorted(result.by_threshold.items()):
        consistent = (
            sum(1 for record in records if record.r >= 0.999) / len(records)
            if records
            else 0.0
        )
        rows.append(
            [
                q,
                len(records),
                f"{consistent:.2f}",
                f"{result.majority_fraction(q):.2f}",
            ]
        )
    return format_rows(
        ["q (min queriers)", "originators", "fully consistent (r=1)", "strict majority (r>0.5)"],
        rows,
    )


if __name__ == "__main__":
    print(format_table(run()))
