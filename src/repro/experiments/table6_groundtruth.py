"""Table VI: labeled ground-truth example counts per class per dataset.

Run the § IV-B curation (external candidates ∩ top originators, verified)
and count examples per class.  Targets: a couple hundred examples per
dataset; mail and spam among the largest classes; update tiny and
JP-only; push/cloud absent from JP (the paper's dashes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.classes import APPLICATION_CLASSES
from repro.experiments.common import classified

__all__ = ["Table6Row", "run", "format_table"]

DEFAULT_DATASETS = ("JP-ditl", "B-post-ditl", "M-ditl", "M-sampled")


@dataclass(slots=True)
class Table6Row:
    dataset: str
    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS, preset: str = "default"
) -> list[Table6Row]:
    rows: list[Table6Row] = []
    for name in datasets:
        labeled = classified(name, preset).labeled
        rows.append(Table6Row(dataset=name, counts=dict(labeled.class_counts())))
    return rows


def format_table(rows: list[Table6Row]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["dataset"] + list(APPLICATION_CLASSES) + ["total"],
        [
            [row.dataset]
            + [row.counts.get(c, 0) or "-" for c in APPLICATION_CLASSES]
            + [row.total]
            for row in rows
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
