"""Figure 14 + § VI-B team statistics: /24 blocks originating scanning.

Targets: scanning concentrates — a minority of /24 blocks host 4+
scanner IPs (the candidate "teams"), a subset of those are single-class
(all members classified scan), and per-block member counts over time
show both persistent team blocks and transient ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.teams import TeamSummary, block_scan_series, find_teams
from repro.experiments.common import windowed
from repro.netmodel.addressing import ip_to_str

__all__ = ["Fig14Result", "run", "format_table"]


@dataclass(slots=True)
class Fig14Result:
    summary: TeamSummary
    team_blocks: dict[int, set[int]]
    block_series: dict[int, list[tuple[float, int]]]


def run(
    preset: str = "default",
    dataset: str = "M-sampled",
    example_blocks: int = 5,
) -> Fig14Result:
    analysis = windowed(dataset, preset)
    summary, teams = find_teams(analysis)
    biggest = sorted(teams, key=lambda b: -len(teams[b]))[:example_blocks]
    return Fig14Result(
        summary=summary,
        team_blocks=teams,
        block_series=block_scan_series(analysis, biggest),
    )


def format_table(result: Fig14Result) -> str:
    from repro.experiments.common import format_rows

    s = result.summary
    header = (
        f"scan originators: {s.scan_originators}; /24 blocks with scanning: {s.scan_blocks}; "
        f"blocks with 4+ scanners: {s.blocks_with_4plus}; "
        f"single-class teams: {s.single_class_teams}\n"
    )
    rows = []
    for block, series in result.block_series.items():
        peak = max((c for _, c in series), default=0)
        rows.append(
            [
                f"{ip_to_str(block << 8)}/24",
                len(result.team_blocks.get(block, ())),
                len(series),
                peak,
            ]
        )
    return header + format_rows(
        ["block", "member IPs", "weeks active", "peak concurrent scanners"], rows
    )


if __name__ == "__main__":
    print(format_table(run()))
