"""Table V: number of originators in each class per dataset.

Classify every analyzable originator (RF trained on the full curated
ground truth).  Targets: spam largest at JP; mail/spam/cdn prominent at
the unsampled roots; scan and spam dominating the long sampled dataset
(churn accumulates malicious originators over months).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.classes import APPLICATION_CLASSES
from repro.analysis.footprint import class_counts
from repro.experiments.common import classified, windowed

__all__ = ["Table5Row", "run", "format_table"]

DEFAULT_DATASETS = ("JP-ditl", "B-post-ditl", "M-ditl", "M-sampled")


@dataclass(slots=True)
class Table5Row:
    dataset: str
    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS, preset: str = "default"
) -> list[Table5Row]:
    rows: list[Table5Row] = []
    for name in datasets:
        if name == "M-sampled":
            # Long dataset: accumulate unique originators per class over
            # all weekly windows, as the paper's 9-month counts do.
            analysis = windowed(name, preset)
            per_class: dict[str, set[int]] = {}
            for window in analysis.windows:
                for originator, app_class in window.classification.items():
                    per_class.setdefault(app_class, set()).add(originator)
            counts = {c: len(v) for c, v in per_class.items()}
        else:
            counts = class_counts(classified(name, preset).classification)
        rows.append(Table5Row(dataset=name, counts=counts))
    return rows


def format_table(rows: list[Table5Row]) -> str:
    from repro.experiments.common import format_rows

    return format_rows(
        ["dataset"] + list(APPLICATION_CLASSES) + ["total"],
        [
            [row.dataset]
            + [row.counts.get(c, 0) for c in APPLICATION_CLASSES]
            + [row.total]
            for row in rows
        ],
    )


if __name__ == "__main__":
    print(format_table(run()))
