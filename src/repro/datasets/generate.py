"""Dataset generation: run one Table I collection end to end.

``generate_dataset(spec)`` builds the world, materializes the scenario's
actors and campaigns, wires the spec's vantage point into a DNS
hierarchy, replays every campaign lookup chronologically through the
resolver caches, and finally lets the ground-truth apparatus (darknet +
blacklists) observe the same campaigns.  Everything is seeded from the
spec, so regeneration is bit-identical — the tests pin that.

``get_dataset(name, preset)`` memoizes by ``(name, preset)``: the
experiment harness calls it from every table/figure module, and a
270-day simulation must only ever run once per process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.engine import SimulationEngine
from repro.activity.scenario import Scenario, build_scenario
from repro.datasets.specs import DatasetSpec, VantageSpec, spec_for
from repro.dnssim.authority import Authority, AuthorityLevel
from repro.dnssim.hierarchy import DnsHierarchy
from repro.groundtruth.blacklist import BlacklistRegistry
from repro.groundtruth.darknet import Darknet
from repro.groundtruth.labeling import GroundTruthSources
from repro.netmodel.world import World, WorldConfig
from repro.sensor.directory import WorldDirectory

__all__ = [
    "GeneratedDataset",
    "MultiVantageDataset",
    "generate_dataset",
    "generate_multi_vantage",
    "get_dataset",
]

SECONDS_PER_DAY = 86400.0


@dataclass(slots=True)
class GeneratedDataset:
    """One generated collection: the world it ran in and what the sensor saw."""

    spec: DatasetSpec
    world: World
    scenario: Scenario
    hierarchy: DnsHierarchy
    sensor: Authority
    darknet: Darknet
    blacklists: BlacklistRegistry

    @property
    def duration_seconds(self) -> float:
        return self.spec.duration_days * SECONDS_PER_DAY

    def directory(self) -> WorldDirectory:
        """Querier metadata provider backed by this dataset's world."""
        return WorldDirectory(self.world)

    def true_classes(self) -> dict[int, str]:
        """Originator → application class, from the simulation's own record."""
        return {c.originator: c.app_class for c in self.scenario.campaigns}

    def sources(self) -> GroundTruthSources:
        """The external-evidence bundle § IV-B curation consults."""
        return GroundTruthSources(
            darknet=self.darknet,
            blacklists=self.blacklists,
            actors_by_ip={a.originator: a for a in self.scenario.actors},
            seed=self.spec.seed + 7,
        )


def _attach_sensor(hierarchy: DnsHierarchy, world: World, vantage: VantageSpec) -> Authority:
    if vantage.kind == "root":
        return hierarchy.attach_root(
            Authority(
                name=vantage.name,
                level=AuthorityLevel.ROOT,
                root_letter=vantage.root_letter,
                sampling=vantage.sampling,
                sites=vantage.sites,
            )
        )
    if vantage.kind == "national":
        return hierarchy.attach_national(
            Authority(
                name=vantage.name,
                level=AuthorityLevel.NATIONAL,
                country=vantage.country,
                scope_slash8=frozenset(world.geo.blocks_of(vantage.country)),
                sampling=vantage.sampling,
                sites=vantage.sites,
            )
        )
    raise ValueError(f"unknown vantage kind {vantage.kind!r}")


def generate_dataset(spec: DatasetSpec) -> GeneratedDataset:
    """Simulate one collection from scratch; deterministic in the spec."""
    world = World(WorldConfig(seed=spec.seed, scale=spec.world_scale))
    scenario = build_scenario(world, spec.scenario)
    hierarchy = DnsHierarchy(world, seed=spec.seed + 1)
    sensor = _attach_sensor(hierarchy, world, spec.vantage)
    engine = SimulationEngine(world, hierarchy)
    engine.extend(scenario.campaigns)
    engine.run(0.0, spec.duration_days * SECONDS_PER_DAY)
    darknet = Darknet(world, seed=spec.seed + 2)
    darknet.observe(scenario.campaigns)
    blacklists = BlacklistRegistry(seed=spec.seed + 3)
    blacklists.observe(scenario.campaigns)
    return GeneratedDataset(
        spec=spec,
        world=world,
        scenario=scenario,
        hierarchy=hierarchy,
        sensor=sensor,
        darknet=darknet,
        blacklists=blacklists,
    )


@dataclass(slots=True)
class MultiVantageDataset:
    """One simulation observed from several vantages at once.

    The paper measures each authority separately; cross-vantage fusion
    (:mod:`repro.federation.fusion`) instead needs the *same* originators
    seen through *different* attenuation — a national authority below
    most caching, a root behind nearly-complete caching.  This bundle
    runs one world/scenario once with every vantage attached, so each
    sensor's log is that vantage's genuinely attenuated view of the same
    ground-truth activity.
    """

    spec: DatasetSpec
    world: World
    scenario: Scenario
    hierarchy: DnsHierarchy
    sensors: dict[str, Authority]
    """Vantage name → its authority (and attenuated log)."""

    @property
    def duration_seconds(self) -> float:
        return self.spec.duration_days * SECONDS_PER_DAY

    def directory(self) -> WorldDirectory:
        """Querier metadata provider backed by this dataset's world."""
        return WorldDirectory(self.world)

    def true_classes(self) -> dict[int, str]:
        """Originator → application class, from the simulation's own record."""
        return {c.originator: c.app_class for c in self.scenario.campaigns}


def generate_multi_vantage(
    spec: DatasetSpec, vantages: list[VantageSpec]
) -> MultiVantageDataset:
    """Simulate one collection with every vantage attached; deterministic.

    *spec* supplies the world/scenario/duration (its own ``vantage``
    field is ignored); *vantages* are attached together before the run,
    so a root and a ccTLD sensor log the same resolutions with their own
    cache attenuation.
    """
    if not vantages:
        raise ValueError("need at least one vantage")
    world = World(WorldConfig(seed=spec.seed, scale=spec.world_scale))
    scenario = build_scenario(world, spec.scenario)
    hierarchy = DnsHierarchy(world, seed=spec.seed + 1)
    for vantage in vantages:
        _attach_sensor(hierarchy, world, vantage)
    engine = SimulationEngine(world, hierarchy)
    engine.extend(scenario.campaigns)
    engine.run(0.0, spec.duration_days * SECONDS_PER_DAY)
    return MultiVantageDataset(
        spec=spec,
        world=world,
        scenario=scenario,
        hierarchy=hierarchy,
        sensors=hierarchy.sensors_by_name(),
    )


_CACHE: dict[tuple[str, str], GeneratedDataset] = {}


def get_dataset(name: str, preset: str = "default") -> GeneratedDataset:
    """Memoized :func:`generate_dataset` keyed by ``(name, preset)``.

    Callers share the returned dataset — treat it as read-only.
    """
    key = (name, preset)
    dataset = _CACHE.get(key)
    if dataset is None:
        dataset = generate_dataset(spec_for(name, preset))
        _CACHE[key] = dataset
    return dataset
