"""Text serialization for sensor logs and querier directories.

The text log format is one reverse query per line, the way an authority
operator would export it::

    # timestamp querier qname
    1.500 1.2.3.4 8.7.6.5.in-addr.arpa

i.e. the arrival time (seconds into the collection, millisecond
precision), the querier's address, and the PTR QNAME — which encodes the
originator in reversed-octet form.  Comment (``#``) and blank lines are
skipped on read.  The framed binary twin (exact timestamps, half the
size) lives in :mod:`repro.datasets.dnstap`.

Querier directories are JSON lines of
:class:`~repro.sensor.directory.QuerierInfo` rows; ``read_directory``
returns a :class:`~repro.sensor.directory.StaticDirectory`, whose lookup
of an unlisted address answers NXDOMAIN — the right default for
addresses the collection never enriched.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.dnssim.message import QueryLogEntry
from repro.netmodel.addressing import ip_to_reverse_name, ip_to_str, reverse_name_to_ip, str_to_ip
from repro.netmodel.world import NameStatus
from repro.sensor.directory import QuerierInfo, StaticDirectory

__all__ = ["write_log", "read_log", "read_log_block", "write_directory", "read_directory"]


def write_log(path: str | Path, entries: Iterable[QueryLogEntry]) -> int:
    """Write *entries* as a text log; returns the number written.

    Timestamps are rounded to the millisecond — callers needing exact
    float64 roundtrips use the framed binary format instead.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro backscatter log: timestamp querier qname\n")
        for entry in entries:
            handle.write(
                f"{entry.timestamp:.3f} {ip_to_str(entry.querier)} "
                f"{ip_to_reverse_name(entry.originator)}\n"
            )
            count += 1
    return count


def read_log(path: str | Path) -> list[QueryLogEntry]:
    """Parse a text log; raises ``ValueError`` on malformed lines."""
    entries: list[QueryLogEntry] = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'timestamp querier qname', got {line!r}"
                )
            timestamp, querier, qname = fields
            try:
                entries.append(
                    QueryLogEntry(
                        timestamp=float(timestamp),
                        querier=str_to_ip(querier),
                        originator=reverse_name_to_ip(qname),
                    )
                )
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from error
    return entries


def read_log_block(path: str | Path):
    """Parse a text log straight into a columnar block.

    Same validation as :func:`read_log`, but the parsed fields land in a
    :class:`~repro.logstore.EntryBlock` without materializing a list of
    entry objects — the native input of the array ingest plane.
    """
    import numpy as np

    from repro.logstore import ENTRY_DTYPE, EntryBlock

    rows: list[tuple[float, int, int]] = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'timestamp querier qname', got {line!r}"
                )
            timestamp, querier, qname = fields
            try:
                rows.append(
                    (float(timestamp), str_to_ip(querier), reverse_name_to_ip(qname))
                )
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from error
    return EntryBlock(np.array(rows, dtype=ENTRY_DTYPE))


def write_directory(path: str | Path, infos: Iterable[QuerierInfo]) -> int:
    """Write querier metadata as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for info in infos:
            handle.write(
                json.dumps(
                    {
                        "addr": info.addr,
                        "name": info.name,
                        "status": info.status.name,
                        "asn": info.asn,
                        "country": info.country,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            count += 1
    return count


def read_directory(path: str | Path) -> StaticDirectory:
    """Load a JSONL querier directory into a :class:`StaticDirectory`."""
    directory = StaticDirectory()
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                info = QuerierInfo(
                    addr=int(row["addr"]),
                    name=row["name"],
                    status=NameStatus[row["status"]],
                    asn=row["asn"],
                    country=row["country"],
                )
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                raise ValueError(f"{path}:{lineno}: invalid directory row: {error}") from error
            directory.add(info)
    return directory
