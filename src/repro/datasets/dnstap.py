"""Framed binary log format (dnstap-style), ``.rbsc``.

Layout: a 6-byte header (``>4sH``: magic, format version) followed by
length-prefixed frames — a big-endian ``>H`` byte count, then the frame
body ``>dII`` (float64 timestamp, uint32 querier, uint32 originator).
Exact timestamp roundtrips and roughly half the size of the text format,
at the cost of not being greppable.

Readers validate eagerly and raise ``ValueError`` describing the first
corruption encountered (bad magic, unsupported version, truncation, or
a frame whose declared length does not match the record size).
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.dnssim.message import QueryLogEntry

__all__ = ["MAGIC", "VERSION", "write_frames", "read_frames", "iter_frames"]

MAGIC = b"RBSC"
VERSION = 1

_HEADER = struct.Struct(">4sH")
_LENGTH = struct.Struct(">H")
_FRAME = struct.Struct(">dII")


def write_frames(path: str | Path, entries: Iterable[QueryLogEntry]) -> int:
    """Write *entries* as a framed binary log; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION))
        length = _LENGTH.pack(_FRAME.size)
        for entry in entries:
            handle.write(length)
            handle.write(_FRAME.pack(entry.timestamp, entry.querier, entry.originator))
            count += 1
    return count


def iter_frames(path: str | Path) -> Iterator[QueryLogEntry]:
    """Stream entries from a framed binary log, validating as it reads."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{path}: truncated header ({len(header)} bytes)")
        magic, version = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ValueError(f"{path}: bad magic {magic!r} (expected {MAGIC!r})")
        if version != VERSION:
            raise ValueError(f"{path}: unsupported version {version} (expected {VERSION})")
        while True:
            prefix = handle.read(_LENGTH.size)
            if not prefix:
                return
            if len(prefix) < _LENGTH.size:
                raise ValueError(f"{path}: truncated frame length prefix")
            (length,) = _LENGTH.unpack(prefix)
            if length != _FRAME.size:
                raise ValueError(
                    f"{path}: invalid frame length {length} (expected {_FRAME.size})"
                )
            body = handle.read(length)
            if len(body) < length:
                raise ValueError(f"{path}: truncated frame body ({len(body)}/{length} bytes)")
            timestamp, querier, originator = _FRAME.unpack(body)
            yield QueryLogEntry(timestamp=timestamp, querier=querier, originator=originator)


def read_frames(path: str | Path) -> list[QueryLogEntry]:
    """All entries of a framed binary log as a list."""
    return list(iter_frames(path))
