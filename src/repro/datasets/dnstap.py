"""Framed binary log format (dnstap-style), ``.rbsc``.

Layout: a 6-byte header (``>4sH``: magic, format version) followed by
length-prefixed frames — a big-endian ``>H`` byte count, then the frame
body ``>dII`` (float64 timestamp, uint32 querier, uint32 originator).
Exact timestamp roundtrips and roughly half the size of the text format,
at the cost of not being greppable.

Readers validate eagerly and raise ``ValueError`` describing the first
corruption encountered (bad magic, unsupported version, truncation, or
a frame whose declared length does not match the record size).
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.dnssim.message import QueryLogEntry

__all__ = [
    "MAGIC",
    "VERSION",
    "write_frames",
    "read_frames",
    "read_frames_block",
    "iter_frames",
]

MAGIC = b"RBSC"
VERSION = 1

_HEADER = struct.Struct(">4sH")
_LENGTH = struct.Struct(">H")
_FRAME = struct.Struct(">dII")


def write_frames(path: str | Path, entries: Iterable[QueryLogEntry]) -> int:
    """Write *entries* as a framed binary log; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION))
        length = _LENGTH.pack(_FRAME.size)
        for entry in entries:
            handle.write(length)
            handle.write(_FRAME.pack(entry.timestamp, entry.querier, entry.originator))
            count += 1
    return count


def iter_frames(path: str | Path) -> Iterator[QueryLogEntry]:
    """Stream entries from a framed binary log, validating as it reads."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{path}: truncated header ({len(header)} bytes)")
        magic, version = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ValueError(f"{path}: bad magic {magic!r} (expected {MAGIC!r})")
        if version != VERSION:
            raise ValueError(f"{path}: unsupported version {version} (expected {VERSION})")
        while True:
            prefix = handle.read(_LENGTH.size)
            if not prefix:
                return
            if len(prefix) < _LENGTH.size:
                raise ValueError(f"{path}: truncated frame length prefix")
            (length,) = _LENGTH.unpack(prefix)
            if length != _FRAME.size:
                raise ValueError(
                    f"{path}: invalid frame length {length} (expected {_FRAME.size})"
                )
            body = handle.read(length)
            if len(body) < length:
                raise ValueError(f"{path}: truncated frame body ({len(body)}/{length} bytes)")
            timestamp, querier, originator = _FRAME.unpack(body)
            yield QueryLogEntry(timestamp=timestamp, querier=querier, originator=originator)


def read_frames(path: str | Path) -> list[QueryLogEntry]:
    """All entries of a framed binary log as a list."""
    return list(iter_frames(path))


# Every frame is fixed-size (2-byte length prefix + 16-byte body), so a
# whole log decodes as one strided structured-array view — no per-frame
# unpacking.  Big-endian on the wire, converted to native on return.
_RECORD_DTYPE = None


def _record_dtype():
    global _RECORD_DTYPE
    if _RECORD_DTYPE is None:
        import numpy as np

        _RECORD_DTYPE = np.dtype(
            [("length", ">u2"), ("timestamp", ">f8"),
             ("querier", ">u4"), ("originator", ">u4")]
        )
    return _RECORD_DTYPE


def read_frames_block(path: str | Path):
    """Decode a framed binary log straight into a columnar block.

    Vectorized counterpart of :func:`read_frames`: the frame stream is
    validated and decoded with one ``np.frombuffer`` view instead of a
    per-frame ``struct.unpack`` loop, and the result is a
    :class:`~repro.logstore.EntryBlock`.
    """
    import numpy as np

    from repro.logstore import EntryBlock

    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < _HEADER.size:
        raise ValueError(f"{path}: truncated header ({len(raw)} bytes)")
    magic, version = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ValueError(f"{path}: unsupported version {version} (expected {VERSION})")
    body = memoryview(raw)[_HEADER.size:]
    record_size = _LENGTH.size + _FRAME.size
    n, trailing = divmod(len(body), record_size)
    if trailing:
        if trailing < _LENGTH.size:
            raise ValueError(f"{path}: truncated frame length prefix")
        (length,) = _LENGTH.unpack_from(body, n * record_size)
        if length != _FRAME.size:
            raise ValueError(
                f"{path}: invalid frame length {length} (expected {_FRAME.size})"
            )
        raise ValueError(
            f"{path}: truncated frame body ({trailing - _LENGTH.size}/{_FRAME.size} bytes)"
        )
    records = np.frombuffer(body, dtype=_record_dtype(), count=n)
    bad = np.flatnonzero(records["length"] != _FRAME.size)
    if bad.size:
        (length,) = _LENGTH.unpack_from(body, int(bad[0]) * record_size)
        raise ValueError(
            f"{path}: invalid frame length {length} (expected {_FRAME.size})"
        )
    return EntryBlock.from_arrays(
        records["timestamp"].astype(np.float64),
        records["querier"].astype(np.int64),
        records["originator"].astype(np.int64),
    )
