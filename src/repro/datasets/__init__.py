"""Table I datasets: specs, generation, and serialization (`repro.datasets`).

Layout::

    repro.datasets
    ├── specs      DatasetSpec / VantageSpec / DATASET_SPECS / spec_for
    ├── generate   GeneratedDataset / generate_dataset / get_dataset
    │              + MultiVantageDataset / generate_multi_vantage
    ├── io         text logs + JSONL querier directories
    └── dnstap     framed binary logs (.rbsc)

Logs read back either as entry lists (``read_log`` / ``read_frames``)
or straight into columnar :class:`~repro.logstore.EntryBlock` form
(``read_log_block`` / ``read_frames_block``) for the array ingest
plane; ``.npz`` / ``.npy`` block files are handled by
:mod:`repro.logstore` itself.

``get_dataset("JP-ditl", preset="tiny")`` is the entry point most code
wants: a memoized, fully simulated collection with its sensor log,
ground truth, and world attached.
"""

from repro.datasets.dnstap import read_frames_block
from repro.datasets.generate import (
    GeneratedDataset,
    MultiVantageDataset,
    generate_dataset,
    generate_multi_vantage,
    get_dataset,
)
from repro.datasets.io import (
    read_directory,
    read_log,
    read_log_block,
    write_directory,
    write_log,
)
from repro.datasets.specs import DATASET_SPECS, DatasetSpec, VantageSpec, spec_for

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "GeneratedDataset",
    "MultiVantageDataset",
    "VantageSpec",
    "generate_dataset",
    "generate_multi_vantage",
    "get_dataset",
    "read_directory",
    "read_frames_block",
    "read_log",
    "read_log_block",
    "spec_for",
    "write_directory",
    "write_log",
]
