"""Table I datasets: specs, generation, and serialization (`repro.datasets`).

Layout::

    repro.datasets
    ├── specs      DatasetSpec / VantageSpec / DATASET_SPECS / spec_for
    ├── generate   GeneratedDataset / generate_dataset / get_dataset
    ├── io         text logs + JSONL querier directories
    └── dnstap     framed binary logs (.rbsc)

``get_dataset("JP-ditl", preset="tiny")`` is the entry point most code
wants: a memoized, fully simulated collection with its sensor log,
ground truth, and world attached.
"""

from repro.datasets.generate import GeneratedDataset, generate_dataset, get_dataset
from repro.datasets.io import read_directory, read_log, write_directory, write_log
from repro.datasets.specs import DATASET_SPECS, DatasetSpec, VantageSpec, spec_for

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "GeneratedDataset",
    "VantageSpec",
    "generate_dataset",
    "get_dataset",
    "read_directory",
    "read_log",
    "spec_for",
    "write_directory",
    "write_log",
]
