"""Table I dataset specifications.

Each paper dataset is a :class:`DatasetSpec`: which vantage point logged
(root letter / national scope, sampling), how long, and which activity
scenario ran underneath.  ``spec_for(name, preset)`` resolves a named
spec; the ``tiny`` preset shrinks the world, the cast of actors, and the
duration so integration tests regenerate a dataset in seconds.

The specs pin the paper's observation setup (Table I): the three DITL
snapshots (JP national, B-Root, M-Root), the 2015 re-collection, the
nine-month 1:10-sampled M-Root feed that anchors the longitudinal
analyses (§ V), and the two long B-Root collections.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.activity.scenario import ScenarioConfig

__all__ = [
    "HEARTBLEED_DAY",
    "VantageSpec",
    "DatasetSpec",
    "DATASET_SPECS",
    "PRESETS",
    "spec_for",
]

#: Day offset of the Heartbleed disclosure (2014-04-07) into the
#: M-sampled collection, which starts 2014-02-06.  § V-C reads the scan
#: surge off this date.
HEARTBLEED_DAY: float = 60.0

#: Duration cap for the ``tiny`` preset, chosen so the tiny M-sampled
#: dataset yields exactly two 7-day observation windows.
_TINY_DURATION_DAYS = 14.0
_TINY_WORLD_SCALE = 0.3
_TINY_ACTOR_FRACTION = 0.5

PRESETS = ("default", "tiny")


@dataclass(frozen=True, slots=True)
class VantageSpec:
    """Where the sensor sits in the reverse hierarchy (Table I, col. 2)."""

    name: str
    kind: str
    """``"root"`` or ``"national"``."""
    root_letter: str | None = None
    country: str | None = None
    sampling: int = 1
    """Log every N-th arriving reverse query (M-sampled's 1:10)."""
    sites: int = 1
    """Anycast site count, reported in Table I."""


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """One Table I dataset: vantage + scenario + bookkeeping.

    ``duration_days`` is authoritative for generation; ``paper_duration``
    / ``paper_sampling`` / ``start_date`` / ``forward_qps`` exist only so
    the Table I experiment can render the paper's reporting columns.
    """

    name: str
    seed: int
    duration_days: float
    world_scale: float
    vantage: VantageSpec
    scenario: ScenarioConfig
    start_date: str
    paper_duration: str | None = None
    paper_sampling: str = "none"
    forward_qps: float = 0.0
    preset: str = "default"


def _scenario(
    seed: int,
    duration_days: float,
    heartbleed_day: float | None = None,
    force_home_country: str | None = None,
    audience_scale: float = 1.0,
) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed,
        duration_days=duration_days,
        heartbleed_day=heartbleed_day,
        force_home_country=force_home_country,
        audience_scale=audience_scale,
    )


_JP_VANTAGE = VantageSpec(name="JP-DNS", kind="national", country="jp", sites=2)
_B_VANTAGE = VantageSpec(name="B-Root", kind="root", root_letter="b", sites=1)
_M_VANTAGE = VantageSpec(name="M-Root", kind="root", root_letter="m", sites=7)
_M_SAMPLED_VANTAGE = replace(_M_VANTAGE, sampling=10)

#: The seven paper datasets (Table I), keyed by name.
DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="JP-ditl",
            seed=2101,
            duration_days=50 / 24,
            world_scale=1.0,
            vantage=_JP_VANTAGE,
            scenario=_scenario(3101, 50 / 24, force_home_country="jp"),
            start_date="2014-04-28",
            paper_duration="50 hours",
            forward_qps=55.0,
        ),
        DatasetSpec(
            name="B-post-ditl",
            seed=2102,
            duration_days=36 / 24,
            world_scale=1.0,
            vantage=_B_VANTAGE,
            scenario=_scenario(3102, 36 / 24),
            start_date="2014-05-03",
            paper_duration="36 hours",
            forward_qps=110.0,
        ),
        DatasetSpec(
            name="M-ditl",
            seed=2103,
            duration_days=50 / 24,
            world_scale=1.0,
            vantage=_M_VANTAGE,
            scenario=_scenario(3103, 50 / 24),
            start_date="2014-04-28",
            paper_duration="50 hours",
            forward_qps=95.0,
        ),
        DatasetSpec(
            name="M-ditl-2015",
            seed=2104,
            duration_days=50 / 24,
            world_scale=1.0,
            vantage=_M_VANTAGE,
            scenario=_scenario(3104, 50 / 24),
            start_date="2015-04-13",
            paper_duration="50 hours",
            forward_qps=105.0,
        ),
        DatasetSpec(
            name="M-sampled",
            seed=2105,
            duration_days=270.0,
            world_scale=0.7,
            vantage=_M_SAMPLED_VANTAGE,
            scenario=_scenario(3105, 270.0, heartbleed_day=HEARTBLEED_DAY),
            start_date="2014-02-06",
            paper_duration="9 months",
            paper_sampling="1:10",
            forward_qps=9.5,
        ),
        DatasetSpec(
            name="B-long",
            seed=2106,
            duration_days=68.0,
            world_scale=0.8,
            vantage=_B_VANTAGE,
            scenario=_scenario(3106, 68.0),
            start_date="2014-09-14",
            paper_duration="68 days",
            forward_qps=110.0,
        ),
        DatasetSpec(
            name="B-multi-year",
            seed=2107,
            duration_days=540.0,
            world_scale=0.5,
            vantage=_B_VANTAGE,
            scenario=_scenario(3107, 540.0),
            start_date="2013-06-01",
            paper_duration="18 months",
            forward_qps=100.0,
        ),
    )
}


def _tiny_actors(initial: dict[str, int]) -> dict[str, int]:
    """Shrink the cast while keeping every class represented."""
    return {
        app_class: max(1, round(count * _TINY_ACTOR_FRACTION))
        for app_class, count in initial.items()
    }


def _tiny(spec: DatasetSpec) -> DatasetSpec:
    duration = min(spec.duration_days, _TINY_DURATION_DAYS)
    scenario = spec.scenario
    heartbleed = scenario.heartbleed_day
    if heartbleed is not None:
        # Keep the surge inside the shortened span (with room to ramp).
        heartbleed = min(heartbleed, duration / 2.0)
    tiny_scenario = replace(
        scenario,
        duration_days=duration,
        initial_actors=_tiny_actors(scenario.initial_actors),
        weekly_arrivals={k: v * _TINY_ACTOR_FRACTION for k, v in scenario.weekly_arrivals.items()},
        heartbleed_day=heartbleed,
        heartbleed_extra_scanners=max(2, scenario.heartbleed_extra_scanners // 2),
    )
    return replace(
        spec,
        duration_days=duration,
        world_scale=min(spec.world_scale, _TINY_WORLD_SCALE),
        scenario=tiny_scenario,
        preset="tiny",
    )


def spec_for(name: str, preset: str = "default") -> DatasetSpec:
    """The spec for one Table I dataset, under one preset.

    Raises ``ValueError`` for unknown dataset names or presets.
    """
    spec = DATASET_SPECS.get(name)
    if spec is None:
        known = ", ".join(sorted(DATASET_SPECS))
        raise ValueError(f"unknown dataset {name!r} (known: {known})")
    if preset not in PRESETS:
        known = ", ".join(PRESETS)
        raise ValueError(f"unknown preset {preset!r} (known: {known})")
    if preset == "tiny":
        return _tiny(spec)
    return spec
