"""Lightweight tracing spans over the ambient metrics registry.

A :class:`span` is a context manager that measures wall time and — when
a :class:`~repro.telemetry.metrics.MetricsRegistry` is installed —
records it as a ``repro_span_seconds`` histogram observation plus a
``repro_span_total`` outcome counter.  Spans nest: the engine opens one
per run, one per window, one per stage, and the enrichment/classify
internals open their own inside those; each span records its parent's
name, so traces reconstruct the stage tree without unbounded label
cardinality.

With **no registry installed the span is a near-no-op**: two
``perf_counter`` calls and an attribute store.  The elapsed time is
still measured and exposed as :attr:`span.elapsed`, because the
engine's :class:`~repro.sensor.engine.StageStats` accounting reads it
regardless of whether metrics are being collected — tracing degrades,
accounting doesn't.

The registry is *ambient*: :func:`install` sets a process-wide default,
and :func:`use_registry` scopes one to a ``with`` block (the engine
uses it to thread an explicitly-passed registry down through featurize
and classify without widening every signature).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "span",
    "install",
    "get_registry",
    "use_registry",
    "current_span_path",
    "count",
    "set_gauge",
    "observe",
]

_REGISTRY: MetricsRegistry | None = None
#: Open-span name stack (per process; the sensing engine is single-
#: threaded per deployment, matching the rest of the repo).
_STACK: list[str] = []


def install(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Set (or clear, with ``None``) the ambient registry; returns the old one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def get_registry() -> MetricsRegistry | None:
    """The ambient registry, or ``None`` when telemetry is off."""
    return _REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Scope *registry* as the ambient one for a ``with`` block.

    ``use_registry(None)`` is a no-op scope that keeps whatever is
    currently installed — callers with an *optional* registry handle can
    wrap unconditionally.
    """
    if registry is None:
        yield _REGISTRY
        return
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)


def current_span_path() -> str:
    """Dotted path of the open spans (empty when none are open)."""
    return ".".join(_STACK)


class span:
    """Measure one operation; record it if a registry is installed.

    Usage::

        with span("stage.featurize") as sp:
            ...work...
        stats.seconds += sp.elapsed

    Attributes after exit: :attr:`elapsed` (wall seconds),
    :attr:`outcome` (``"ok"`` or ``"error"``), :attr:`parent` (enclosing
    span name or ``""``).  Use dotted names for sub-operations
    (``stage.featurize``, ``featurize.enrich``) — the name is a label on
    ``repro_span_seconds``, so keep its cardinality bounded (stage names
    yes, window indexes no).
    """

    __slots__ = ("name", "elapsed", "outcome", "parent", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0
        self.outcome = "ok"
        self.parent = ""
        self._started = 0.0

    def __enter__(self) -> "span":
        if _REGISTRY is not None:
            self.parent = _STACK[-1] if _STACK else ""
            _STACK.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        registry = _REGISTRY
        if registry is None:
            return
        if _STACK and _STACK[-1] == self.name:
            _STACK.pop()
        self.outcome = "ok" if exc_type is None else "error"
        registry.histogram(
            "repro_span_seconds",
            "Wall time of traced operations, by span name and parent.",
            labels=("span", "parent"),
        ).observe(self.elapsed, span=self.name, parent=self.parent)
        registry.counter(
            "repro_span_total",
            "Completed traced operations, by span name and outcome.",
            labels=("span", "outcome"),
        ).inc(1, span=self.name, outcome=self.outcome)


def count(name: str, amount: float = 1.0, help: str = "", **labels: object) -> None:
    """Increment a counter on the ambient registry (no-op when none)."""
    registry = _REGISTRY
    if registry is None or amount == 0:
        return
    registry.counter(name, help, labels=tuple(labels)).inc(amount, **labels)


def set_gauge(name: str, value: float, help: str = "", **labels: object) -> None:
    """Set a gauge on the ambient registry (no-op when none)."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.gauge(name, help, labels=tuple(labels)).set(value, **labels)


def observe(name: str, value: float, help: str = "", **labels: object) -> None:
    """Observe into a histogram on the ambient registry (no-op when none)."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.histogram(name, help, labels=tuple(labels)).observe(value, **labels)
