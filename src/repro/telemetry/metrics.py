"""Dependency-free metric instruments and their registry.

The sensor is an always-on service at an authority (§ III): originator
verdicts only matter if an operator can see where volume, drops, and
wall time went across ingest → window → select → featurize → classify.
This module provides the three classic instrument kinds over plain
Python state:

* :class:`Counter` — monotonically increasing totals (entries ingested,
  cache misses, stage drops);
* :class:`Gauge` — last-written values (reorder-buffer depth, open
  windows);
* :class:`Histogram` — fixed-bucket distributions with sum and count
  (stage wall times, per-chunk featurize times).

Instruments are *labeled*: one instrument family (say
``repro_stage_seconds``) holds an independent series per label
combination (``stage="featurize"``), matching the Prometheus data
model.  A :class:`MetricsRegistry` owns the families and renders them
three ways — :meth:`~MetricsRegistry.snapshot` (plain dict, for tests
and ``SensedWindow.telemetry``), :meth:`~MetricsRegistry.to_prometheus`
(text exposition format), and :meth:`~MetricsRegistry.to_jsonl` (one
JSON object per series, for appending periodic snapshots).

Everything is intentionally allocation-light: label series are dict
entries keyed by value tuples, and the hot-path operations (``inc``,
``set``, ``observe``) are a dict get plus an add.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets, tuned for stage/window wall times: 1 ms up
#: to 5 minutes, roughly ×2.5 per step (everything slower lands in +Inf).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    """The series key for one label assignment (validated against names)."""
    if len(labels) != len(label_names):
        missing = set(label_names) - set(labels)
        extra = set(labels) - set(label_names)
        raise ValueError(
            f"label mismatch: missing={sorted(missing)} unexpected={sorted(extra)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Instrument:
    """Shared naming/labeling machinery for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(labels)

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        return _label_key(self.label_names, labels)

    def series(self) -> Iterator[tuple[tuple[str, ...], object]]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total, one series per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        return iter(sorted(self._values.items()))


class Gauge(_Instrument):
    """A last-written value (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        return iter(sorted(self._values.items()))


class _HistogramSeries:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # cumulative at export, raw here
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution (upper bounds are inclusive, +Inf implicit)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be non-empty, sorted, and distinct")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        slot = bisect_left(self.buckets, value)
        if slot < len(self.buckets):
            series.bucket_counts[slot] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def cumulative_buckets(self, **labels: object) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with (+Inf, count)."""
        series = self._series.get(self._key(labels))
        if series is None:
            return [(b, 0) for b in self.buckets] + [(math.inf, 0)]
        out: list[tuple[float, int]] = []
        running = 0
        for bound, raw in zip(self.buckets, series.bucket_counts):
            running += raw
            out.append((bound, running))
        out.append((math.inf, series.count))
        return out

    def series(self) -> Iterator[tuple[tuple[str, ...], _HistogramSeries]]:
        return iter(sorted(self._series.items(), key=lambda kv: kv[0]))


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """Owns the instrument families and renders them for export.

    Families are created idempotently: asking for an existing name with
    the same kind returns the existing instrument, so call sites don't
    need to coordinate creation order.  Asking with a different kind (or
    different labels/buckets) raises — a family's schema is fixed.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is None:
            self._instruments[instrument.name] = instrument
            return instrument
        if type(existing) is not type(instrument):
            raise ValueError(
                f"metric {instrument.name!r} already registered as {existing.kind}"
            )
        if existing.label_names != instrument.label_names:
            raise ValueError(
                f"metric {instrument.name!r} already registered with labels "
                f"{existing.label_names}"
            )
        if (
            isinstance(existing, Histogram)
            and existing.buckets != instrument.buckets  # type: ignore[union-attr]
        ):
            raise ValueError(
                f"histogram {instrument.name!r} already registered with "
                "different buckets"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        out = self._register(Counter(name, help, labels))
        assert isinstance(out, Counter)
        return out

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        out = self._register(Gauge(name, help, labels))
        assert isinstance(out, Gauge)
        return out

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        out = self._register(Histogram(name, help, labels, buckets))
        assert isinstance(out, Histogram)
        return out

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Every family and series as plain dicts (stable ordering).

        Label keys are rendered ``name=value`` joined with commas (empty
        string for the unlabeled series), so snapshots are JSON-ready.
        """
        out: dict[str, dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            family: dict[str, object] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "label_names": list(instrument.label_names),
            }
            series: dict[str, object] = {}
            if isinstance(instrument, Histogram):
                for key, hist_series in instrument.series():
                    label_str = ",".join(
                        f"{n}={v}" for n, v in zip(instrument.label_names, key)
                    )
                    running = 0
                    buckets = {}
                    for bound, raw in zip(instrument.buckets, hist_series.bucket_counts):
                        running += raw
                        buckets[_format_value(bound)] = running
                    buckets["+Inf"] = hist_series.count
                    series[label_str] = {
                        "sum": hist_series.sum,
                        "count": hist_series.count,
                        "buckets": buckets,
                    }
            else:
                for key, value in instrument.series():  # type: ignore[assignment]
                    label_str = ",".join(
                        f"{n}={v}" for n, v in zip(instrument.label_names, key)
                    )
                    series[label_str] = value
            family["series"] = series
            out[name] = family
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, series in instrument.series():
                    running = 0
                    for bound, raw in zip(instrument.buckets, series.bucket_counts):
                        running += raw
                        labels = _render_labels(
                            instrument.label_names, key,
                            extra=(("le", _format_value(bound)),),
                        )
                        lines.append(f"{name}_bucket{labels} {running}")
                    labels = _render_labels(
                        instrument.label_names, key, extra=(("le", "+Inf"),)
                    )
                    lines.append(f"{name}_bucket{labels} {series.count}")
                    plain = _render_labels(instrument.label_names, key)
                    lines.append(f"{name}_sum{plain} {_format_value(series.sum)}")
                    lines.append(f"{name}_count{plain} {series.count}")
            else:
                for key, value in instrument.series():  # type: ignore[assignment]
                    labels = _render_labels(instrument.label_names, key)
                    lines.append(f"{name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def to_jsonl(self) -> str:
        """One JSON object per series, newline-delimited.

        Suited to periodic snapshot appends: each line carries the family
        name, kind, and labels, so consecutive snapshots concatenate into
        a valid stream.
        """
        lines: list[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                for key, series in instrument.series():
                    running = 0
                    buckets = {}
                    for bound, raw in zip(instrument.buckets, series.bucket_counts):
                        running += raw
                        buckets[_format_value(bound)] = running
                    buckets["+Inf"] = series.count
                    lines.append(json.dumps({
                        "name": name,
                        "kind": instrument.kind,
                        "labels": dict(zip(instrument.label_names, key)),
                        "sum": series.sum,
                        "count": series.count,
                        "buckets": buckets,
                    }, sort_keys=True))
            else:
                for key, value in instrument.series():  # type: ignore[assignment]
                    lines.append(json.dumps({
                        "name": name,
                        "kind": instrument.kind,
                        "labels": dict(zip(instrument.label_names, key)),
                        "value": value,
                    }, sort_keys=True))
        return "\n".join(lines) + "\n" if lines else ""
