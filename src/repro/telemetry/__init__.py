"""repro.telemetry — metrics and tracing for the sensing pipeline.

The paper's sensor is an always-on service at a DNS authority; verdicts
only matter operationally if you can see where volume, drops, and wall
time went across ingest → window → select → featurize → classify, and
longitudinal runs (§ V) live or die on knowing when a window was slow,
a cache went cold, or a stage silently dropped input.  This package is
that observability layer, dependency-free:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments, labeled per stage, with dict,
  Prometheus-text, and JSON-lines export (:func:`write_metrics`);
* :class:`span` context-manager tracing that nests (engine run → window
  → stage → enrichment/classify), records wall time and outcome, and
  degrades to a near-no-op when no registry is installed;
* an *ambient* registry (:func:`install` / :func:`use_registry`) so the
  instrumented hot paths — the engine stages, the enrichment cache, the
  featurize worker fan-out, the streaming collector — need no new
  parameters to report.

Enabling telemetry::

    from repro.telemetry import MetricsRegistry, install, write_metrics

    registry = MetricsRegistry()
    install(registry)                  # or: SensorEngine(..., registry=...)
    engine.process(entries, 0.0, end)
    write_metrics(registry, "metrics.prom")

With no registry installed every instrumentation point is a cheap
no-op; the engine's :class:`~repro.sensor.engine.StageStats` accounting
keeps working either way (it reads span wall times directly).
"""

from repro.telemetry.export import METRICS_FORMATS, format_for_path, write_metrics
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    count,
    current_span_path,
    get_registry,
    install,
    observe,
    set_gauge,
    span,
    use_registry,
)

__all__ = [
    "METRICS_FORMATS",
    "format_for_path",
    "write_metrics",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "current_span_path",
    "get_registry",
    "install",
    "observe",
    "set_gauge",
    "span",
    "use_registry",
]
