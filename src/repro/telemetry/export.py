"""Writing metric snapshots to disk (Prometheus text or JSON lines).

One function, used by the CLI (``repro classify --metrics-out``), the
experiment harness (``REPRO_METRICS_OUT``), and the benchmark: render
the registry in the requested format and write it.  Prometheus text is
a point-in-time exposition, so it always overwrites; JSON lines append
by default, so periodic streaming snapshots concatenate into one
replayable stream.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["METRICS_FORMATS", "format_for_path", "write_metrics"]

METRICS_FORMATS: tuple[str, ...] = ("prom", "jsonl")


def format_for_path(path: str | Path, explicit: str | None = None) -> str:
    """The export format: *explicit* if given, else inferred from suffix.

    ``.jsonl``/``.json``/``.ndjson`` infer JSON lines; anything else
    (including the conventional ``.prom``) infers Prometheus text.
    """
    if explicit is not None:
        if explicit not in METRICS_FORMATS:
            raise ValueError(f"unknown metrics format: {explicit!r}")
        return explicit
    suffix = Path(path).suffix.lower()
    return "jsonl" if suffix in (".jsonl", ".json", ".ndjson") else "prom"


def write_metrics(
    registry: MetricsRegistry,
    path: str | Path,
    fmt: str | None = None,
    append: bool | None = None,
) -> Path:
    """Write *registry* to *path*; returns the path written.

    *fmt* is ``"prom"`` or ``"jsonl"`` (default: inferred from the
    suffix).  *append* defaults to ``True`` for jsonl (periodic
    snapshots form a stream) and is forced ``False`` for prom (the
    exposition format describes one point in time).
    """
    path = Path(path)
    fmt = format_for_path(path, fmt)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "prom":
        path.write_text(registry.to_prometheus())
    else:
        text = registry.to_jsonl()
        if append is None or append:
            with path.open("a") as handle:
                handle.write(text)
        else:
            path.write_text(text)
    return path
