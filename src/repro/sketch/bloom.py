"""Window-scoped Bloom filter for constant-memory event dedup.

The exact sensing path dedups repeated ``(originator, querier)`` pairs
inside the 30 s resolver-cache horizon with a dict of last-kept
timestamps — O(active pairs) memory.  The sketch pre-stage replaces
that dict with this filter keyed on ``(originator, querier, qtype,
30 s bucket)``: membership says "already counted in this bucket", so a
hit suppresses the duplicate and a false positive drops one genuinely
new pair with probability ``fp_rate`` (sized for ``capacity``
insertions).  That error is one-sided in the safe direction for the
analyzability gate — it can only *under*-count a querier, and the
gate's margin absorbs it.

Probes use Kirsch–Mitzenstein double hashing (``h1 + i·h2``), bits
packed in a uint64 word array.  Two filters with equal ``(capacity,
fp_rate, seed)`` are aligned and merge by OR.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.hashing import MASK64, derive_seed, mix64, mix64_array

__all__ = ["BloomFilter"]


def _optimal_bits(capacity: int, fp_rate: float) -> int:
    bits = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
    return max(64, bits)


def _optimal_hashes(bits: int, capacity: int) -> int:
    return max(1, round(bits / capacity * math.log(2)))


class BloomFilter:
    """Approximate membership over 64-bit keys; no false negatives."""

    __slots__ = ("capacity", "fp_rate", "seed", "bits", "hashes", "_seed1", "_seed2", "_words")

    #: Keys per vectorized sub-chunk: each batch step holds a handful of
    #: ``hashes x chunk`` uint64/intp temporaries (probe positions, word
    #: indexes, masks, gathered words), so this bounds batch peak memory
    #: to ~1-2 MiB regardless of batch size.
    _BATCH_KEYS = 4_096

    def __init__(self, capacity: int = 1 << 20, fp_rate: float = 0.01, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        self.capacity = int(capacity)
        self.fp_rate = float(fp_rate)
        self.seed = int(seed)
        self.bits = _optimal_bits(self.capacity, self.fp_rate)
        self.hashes = _optimal_hashes(self.bits, self.capacity)
        self._seed1 = derive_seed(seed, 0x626C6D_01)
        self._seed2 = derive_seed(seed, 0x626C6D_02)
        self._words = np.zeros((self.bits + 63) // 64, dtype=np.uint64)

    def _probes(self, key: int):
        h1 = mix64(key, self._seed1)
        h2 = mix64(key, self._seed2) | 1  # odd → full-period stride
        bits = self.bits
        for i in range(self.hashes):
            # Mask to 64 bits so the stride wraps exactly like the
            # vectorized uint64 path.
            yield ((h1 + i * h2) & MASK64) % bits

    def add(self, key: int) -> bool:
        """Insert *key*; True when it was (probably) not present before."""
        words = self._words
        novel = False
        for pos in self._probes(key):
            word, bit = pos >> 6, np.uint64(1 << (pos & 63))
            if not words[word] & bit:
                words[word] |= bit
                novel = True
        return novel

    def __contains__(self, key: int) -> bool:
        words = self._words
        for pos in self._probes(key):
            if not words[pos >> 6] & np.uint64(1 << (pos & 63)):
                return False
        return True

    def _probe_matrix(self, keys: np.ndarray) -> np.ndarray:
        """(hashes, n) bit positions; dtype uint64."""
        h1 = mix64_array(keys, self._seed1)
        h2 = mix64_array(keys, self._seed2) | np.uint64(1)
        bits = np.uint64(self.bits)
        strides = np.arange(self.hashes, dtype=np.uint64)[:, np.newaxis]
        return (h1[np.newaxis, :] + strides * h2[np.newaxis, :]) % bits

    def add_batch(self, keys: np.ndarray) -> np.ndarray:
        """Insert an array of keys; boolean novel-mask aligned with *keys*.

        Processed in sub-chunks of :attr:`_BATCH_KEYS` to bound the
        probe-matrix temporaries.  Within a sub-chunk membership is read
        before any bits are set, so **distinct** keys always get a
        correct verdict; duplicate keys within one batch may report
        either occurrence's verdict depending on the chunk boundary —
        callers that need per-occurrence dedup (the pre-stage does) must
        unique the batch first.
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        novel = np.zeros(keys.shape[0], dtype=bool)
        for start in range(0, keys.shape[0], self._BATCH_KEYS):
            stop = min(start + self._BATCH_KEYS, keys.shape[0])
            positions = self._probe_matrix(keys[start:stop])
            words = (positions >> np.uint64(6)).astype(np.intp)
            masks = np.uint64(1) << (positions & np.uint64(63))
            present = (self._words[words] & masks) != 0
            novel[start:stop] = ~present.all(axis=0)
            np.bitwise_or.at(self._words, words.reshape(-1), masks.reshape(-1))
        return novel

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask aligned with *keys* (no insertion)."""
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        contained = np.zeros(keys.shape[0], dtype=bool)
        for start in range(0, keys.shape[0], self._BATCH_KEYS):
            stop = min(start + self._BATCH_KEYS, keys.shape[0])
            positions = self._probe_matrix(keys[start:stop])
            words = (positions >> np.uint64(6)).astype(np.intp)
            masks = np.uint64(1) << (positions & np.uint64(63))
            contained[start:stop] = ((self._words[words] & masks) != 0).all(axis=0)
        return contained

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — sanity signal for capacity sizing."""
        set_bits = int(np.bitwise_count(self._words).sum())
        return set_bits / self.bits

    # -- algebra ---------------------------------------------------------

    def _check_compatible(self, other: "BloomFilter") -> None:
        if not isinstance(other, BloomFilter):
            raise TypeError(f"cannot combine BloomFilter with {type(other).__name__}")
        if (self.capacity, self.fp_rate, self.seed) != (
            other.capacity,
            other.fp_rate,
            other.seed,
        ):
            raise ValueError(
                "incompatible filters: "
                f"(capacity={self.capacity}, fp_rate={self.fp_rate}, seed={self.seed}) vs "
                f"(capacity={other.capacity}, fp_rate={other.fp_rate}, seed={other.seed})"
            )

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Fold *other* in (bitwise OR, in place); returns self."""
        self._check_compatible(other)
        np.bitwise_or(self._words, other._words, out=self._words)
        return self

    def __or__(self, other: "BloomFilter") -> "BloomFilter":
        """A new filter equivalent to inserting both key sets."""
        return self.copy().merge(other)

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.capacity, self.fp_rate, self.seed)
        clone._words[:] = self._words
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            (self.capacity, self.fp_rate, self.seed)
            == (other.capacity, other.fp_rate, other.seed)
            and bool(np.array_equal(self._words, other._words))
        )

    __hash__ = None  # mutable

    @property
    def memory_bytes(self) -> int:
        return int(self._words.nbytes)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(capacity={self.capacity}, fp_rate={self.fp_rate}, "
            f"seed={self.seed}, fill={self.fill_ratio:.3f})"
        )
