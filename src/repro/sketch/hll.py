"""HyperLogLog cardinality estimation, single and pooled.

Two shapes share one register layout and one estimator:

* :class:`HyperLogLog` — a standalone counter (one set, ``m = 2^p``
  uint8 registers), used for whole-window uniques and in tests;
* :class:`HllBank` — many counters packed in one 2-D register matrix
  keyed by an integer (the pre-stage keys it by originator).  Growing a
  bank doubles one array instead of allocating 100k tiny objects, and
  estimating all rows is a single vectorized sweep.

Both hash items through the same seeded :func:`~repro.sketch.hashing`
finalizer, so a bank row is register-identical to a standalone HLL fed
the same items — the property tests pin that equivalence.

Estimator: Flajolet et al. 2007 raw estimate with the standard
small-range linear-counting correction (switched below ``5/2·m`` when
empty registers remain).  Relative standard error is ``~1.04/sqrt(m)``;
at the pre-stage's default ``p=6`` (64 registers, 64 bytes/originator)
that is ~13%, plenty for a threshold gate at 10–20 uniques where the
estimator is in its near-exact linear-counting regime anyway.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import derive_seed, mix64, mix64_array

__all__ = ["HyperLogLog", "HllBank"]

_ITEM_SALT = 0x686C6C_00

#: Bias-correction constants for small register counts (Flajolet et al.).
_ALPHA_SMALL = {16: 0.673, 32: 0.697, 64: 0.709}


def _alpha(m: int) -> float:
    return _ALPHA_SMALL.get(m, 0.7213 / (1.0 + 1.079 / m))


def _check_precision(precision: int) -> int:
    if not 4 <= precision <= 16:
        raise ValueError(f"precision must be in [4, 16], got {precision}")
    return int(precision)


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for uint64 (exact — no float log)."""
    length = np.zeros(values.shape, dtype=np.uint8)
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >= (np.uint64(1) << np.uint64(shift))
        length[big] += np.uint8(shift)
        v[big] >>= np.uint64(shift)
    length[v > 0] += np.uint8(1)
    return length


def _point(item: int, seed: int, precision: int) -> tuple[int, int]:
    """(register index, rank) of one item — scalar twin of :func:`_points`."""
    h = mix64(item, seed)
    index = h >> (64 - precision)
    rest = h & ((1 << (64 - precision)) - 1)
    rank = (64 - precision) + 1 - rest.bit_length()
    return index, rank


def _points(items: np.ndarray, seed: int, precision: int) -> tuple[np.ndarray, np.ndarray]:
    """(register indexes, ranks) for an item array; bit-identical to :func:`_point`."""
    h = mix64_array(items, seed)
    index = (h >> np.uint64(64 - precision)).astype(np.intp)
    rest = h & np.uint64((1 << (64 - precision)) - 1)
    rank = (np.uint8(64 - precision + 1) - _bit_length_u64(rest)).astype(np.uint8)
    return index, rank


def _estimate_rows(registers: np.ndarray) -> np.ndarray:
    """Cardinality estimate per row of an ``(n, m)`` uint8 register matrix.

    Raw harmonic-mean estimate with linear counting below ``5/2·m`` when
    zero registers remain.  Vectorized over rows; callers chunk the rows
    to bound the float64 temporary (``m`` doubles per row).
    """
    registers = np.atleast_2d(registers)
    m = registers.shape[1]
    power = np.ldexp(1.0, -registers.astype(np.int64))  # 2^-reg, exact
    raw = _alpha(m) * m * m / power.sum(axis=1)
    zeros = (registers == 0).sum(axis=1)
    small = (raw <= 2.5 * m) & (zeros > 0)
    if np.any(small):
        with np.errstate(divide="ignore"):
            linear = m * np.log(m / zeros.astype(np.float64))
        raw = np.where(small, linear, raw)
    return raw


class HyperLogLog:
    """Approximate distinct-count of an integer stream in ``2^p`` bytes."""

    __slots__ = ("precision", "seed", "_registers")

    def __init__(self, precision: int = 6, seed: int = 0) -> None:
        self.precision = _check_precision(precision)
        self.seed = int(seed)
        self._registers = np.zeros(1 << self.precision, dtype=np.uint8)

    @property
    def m(self) -> int:
        """Number of registers (``2^precision``)."""
        return 1 << self.precision

    @property
    def registers(self) -> np.ndarray:
        """Read-only view of the register array."""
        view = self._registers.view()
        view.flags.writeable = False
        return view

    def _item_seed(self) -> int:
        return derive_seed(self.seed, _ITEM_SALT)

    def add(self, item: int) -> bool:
        """Observe *item*; True when a register changed (a 'new-ish' item)."""
        index, rank = _point(item, self._item_seed(), self.precision)
        if self._registers[index] < rank:
            self._registers[index] = rank
            return True
        return False

    def add_batch(self, items: np.ndarray) -> None:
        """Vectorized :meth:`add` (no change reporting)."""
        items = np.asarray(items)
        if items.size == 0:
            return
        index, rank = _points(items, self._item_seed(), self.precision)
        np.maximum.at(self._registers, index, rank)

    def cardinality(self) -> float:
        """Estimated number of distinct items observed."""
        return float(_estimate_rows(self._registers[np.newaxis, :])[0])

    def __len__(self) -> int:
        return int(round(self.cardinality()))

    # -- algebra ---------------------------------------------------------

    def _check_compatible(self, other: "HyperLogLog") -> None:
        if not isinstance(other, HyperLogLog):
            raise TypeError(f"cannot combine HyperLogLog with {type(other).__name__}")
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise ValueError(
                "incompatible HLLs: "
                f"(precision={self.precision}, seed={self.seed}) vs "
                f"(precision={other.precision}, seed={other.seed})"
            )

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Fold *other* in (register-wise max, in place); returns self."""
        self._check_compatible(other)
        np.maximum(self._registers, other._registers, out=self._registers)
        return self

    def __or__(self, other: "HyperLogLog") -> "HyperLogLog":
        """A new HLL equivalent to observing both streams."""
        return self.copy().merge(other)

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision, self.seed)
        clone._registers[:] = self._registers
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (self.precision, self.seed) == (other.precision, other.seed) and bool(
            np.array_equal(self._registers, other._registers)
        )

    __hash__ = None  # mutable

    @property
    def memory_bytes(self) -> int:
        return int(self._registers.nbytes)

    def __repr__(self) -> str:
        return (
            f"HyperLogLog(precision={self.precision}, seed={self.seed}, "
            f"cardinality~{self.cardinality():.1f})"
        )


class HllBank:
    """Many keyed HLLs packed into one growable register matrix.

    ``bank.add(key, item)`` is semantically ``per_key_hll[key].add(item)``
    but the registers live in one ``(capacity, m)`` uint8 array (doubled
    on overflow) with a dict mapping key → row, so a 100k-originator
    window costs one allocation and ``m`` bytes per key.  Rows use the
    same item seed as :class:`HyperLogLog`, so :meth:`extract` returns a
    standalone HLL with identical registers.
    """

    __slots__ = ("precision", "seed", "_registers", "_slots")

    #: Rows per vectorized estimation chunk — bounds each temporary in
    #: :meth:`estimate_all` (one int64 cast + one float64 power array)
    #: to ~1 MiB at p=6.
    _CHUNK_ROWS = 2048

    def __init__(self, precision: int = 6, seed: int = 0) -> None:
        self.precision = _check_precision(precision)
        self.seed = int(seed)
        self._registers = np.zeros((64, 1 << self.precision), dtype=np.uint8)
        self._slots: dict[int, int] = {}

    def _slot(self, key: int) -> int:
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self._slots)
            if slot == self._registers.shape[0]:
                grown = np.zeros((slot * 2, self._registers.shape[1]), dtype=np.uint8)
                grown[:slot] = self._registers
                self._registers = grown
            self._slots[key] = slot
        return slot

    def _item_seed(self) -> int:
        return derive_seed(self.seed, _ITEM_SALT)

    def add(self, key: int, item: int) -> bool:
        """Observe *item* under *key*; True when a register changed."""
        slot = self._slot(key)
        index, rank = _point(item, self._item_seed(), self.precision)
        row = self._registers[slot]
        if row[index] < rank:
            row[index] = rank
            return True
        return False

    def add_batch(self, keys: np.ndarray, items: np.ndarray) -> None:
        """Vectorized :meth:`add` over aligned key/item arrays."""
        keys = np.asarray(keys)
        items = np.asarray(items)
        if keys.size == 0:
            return
        uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
        # Resolve each distinct key once (not once per event); new keys
        # get slots in first-occurrence order so bank order — and thus
        # survivor order — matches the scalar path.
        for key in uniq[np.argsort(first)]:
            self._slot(int(key))
        slot_of = self._slots
        slots = np.fromiter(
            (slot_of[int(key)] for key in uniq), dtype=np.intp, count=uniq.size
        )[inverse]
        index, rank = _points(items, self._item_seed(), self.precision)
        flat = slots * np.intp(self._registers.shape[1]) + index
        np.maximum.at(self._registers.reshape(-1), flat, rank)

    def ensure_keys(self, keys: np.ndarray) -> None:
        """Create (empty) rows for *keys* in the given order.

        Callers that split one event chunk into several per-group
        :meth:`add_batch` passes use this to pin bank insertion order to
        first-occurrence order up front, so survivor/merge iteration
        order stays identical to feeding the events one by one.
        """
        keys = np.asarray(keys, dtype=np.int64)
        self.resolve_slots(keys, create_order=np.arange(keys.size, dtype=np.intp))

    def resolve_slots(
        self, keys: np.ndarray, create_order: np.ndarray | None = None
    ) -> np.ndarray:
        """Slot per (unique) key, ``-1`` for unseen — one dict sweep.

        With *create_order* (index positions into *keys*), missing keys
        are created in exactly that order, pinning bank insertion order.
        The returned slots let hot paths address registers directly
        (:meth:`add_at_slots`, :meth:`estimate_slots`, :meth:`rows_at`)
        instead of paying a key lookup per call.
        """
        keys = np.asarray(keys, dtype=np.int64)
        get = self._slots.get
        slots = np.fromiter(
            (get(int(key), -1) for key in keys), dtype=np.intp, count=keys.size
        )
        if create_order is not None:
            missing = create_order[slots[create_order] < 0]
            for i in missing.tolist():
                slots[i] = self._slot(int(keys[i]))
        return slots

    def add_at_slots(self, slots: np.ndarray, items: np.ndarray) -> None:
        """Vectorized :meth:`add` for events with pre-resolved bank rows."""
        items = np.asarray(items)
        if items.size == 0:
            return
        index, rank = _points(items, self._item_seed(), self.precision)
        flat = (
            np.asarray(slots, dtype=np.intp) * np.intp(self._registers.shape[1])
            + index
        )
        np.maximum.at(self._registers.reshape(-1), flat, rank)

    def estimate_slots(
        self, slots: np.ndarray, with_zeros: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Estimates for pre-resolved (valid) *slots*; see :meth:`estimate_many`."""
        slots = np.asarray(slots, dtype=np.intp)
        n = int(slots.size)
        estimates = np.zeros(n, dtype=np.float64)
        zeros = np.full(n, 1 << self.precision, dtype=np.int64)
        for start in range(0, n, self._CHUNK_ROWS):
            sel = slice(start, min(start + self._CHUNK_ROWS, n))
            rows = self._registers[slots[sel]]
            estimates[sel] = _estimate_rows(rows)
            if with_zeros:
                zeros[sel] = (rows == 0).sum(axis=1)
        if with_zeros:
            return estimates, zeros
        return estimates

    def rows_at(self, slots: np.ndarray) -> np.ndarray:
        """Copy of the register rows at *slots* (pair with :meth:`write_rows_at`)."""
        return self._registers[np.asarray(slots, dtype=np.intp)]

    def write_rows_at(self, slots: np.ndarray, rows: np.ndarray) -> None:
        """Write *rows* (from :meth:`rows_at`) back over *slots*."""
        self._registers[np.asarray(slots, dtype=np.intp)] = rows

    def estimate(self, key: int) -> float:
        """Estimated distinct items under *key* (0.0 for unseen keys)."""
        slot = self._slots.get(key)
        if slot is None:
            return 0.0
        return float(_estimate_rows(self._registers[slot][np.newaxis, :])[0])

    def estimate_many(
        self, keys: np.ndarray, with_zeros: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Estimates aligned with *keys* — the batched subset twin of
        :meth:`estimate` (unseen keys estimate 0.0 with all ``m``
        registers zero).

        Chunked like :meth:`estimate_all` so the float64 temporaries
        stay bounded.  With ``with_zeros`` the per-key zero-register
        counts come back too — the streaming promotion resolver needs
        them to bound the linear-counting branch over a whole chunk.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = int(keys.size)
        estimates = np.zeros(n, dtype=np.float64)
        zeros = np.full(n, 1 << self.precision, dtype=np.int64)
        if n:
            slots = self.resolve_slots(keys)
            seen = np.flatnonzero(slots >= 0)
            if seen.size:
                if with_zeros:
                    est, zero = self.estimate_slots(slots[seen], with_zeros=True)
                    estimates[seen] = est
                    zeros[seen] = zero
                else:
                    estimates[seen] = self.estimate_slots(slots[seen])
        if with_zeros:
            return estimates, zeros
        return estimates

    def snapshot_rows(self, keys: np.ndarray) -> np.ndarray:
        """Copy of the register rows for *keys* (which must all exist).

        Paired with :meth:`restore_rows`: the streaming promotion
        resolver snapshots possible bar-crossers before a chunked
        :meth:`add_batch`, then rewinds exactly those rows for an
        event-by-event replay.
        """
        keys = np.asarray(keys, dtype=np.int64)
        slots = np.fromiter(
            (self._slots[int(key)] for key in keys), dtype=np.intp, count=keys.size
        )
        return self._registers[slots]

    def restore_rows(self, keys: np.ndarray, rows: np.ndarray) -> None:
        """Write *rows* (from :meth:`snapshot_rows`) back over *keys*."""
        keys = np.asarray(keys, dtype=np.int64)
        slots = np.fromiter(
            (self._slots[int(key)] for key in keys), dtype=np.intp, count=keys.size
        )
        self._registers[slots] = rows

    def estimate_all(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, estimates)`` for every key, in insertion order.

        Vectorized in chunks of :attr:`_CHUNK_ROWS` rows so the float64
        temporaries stay bounded regardless of bank size.
        """
        n = len(self._slots)
        keys = np.fromiter(self._slots.keys(), dtype=np.int64, count=n)
        estimates = np.zeros(n, dtype=np.float64)
        for start in range(0, n, self._CHUNK_ROWS):
            stop = min(start + self._CHUNK_ROWS, n)
            estimates[start:stop] = _estimate_rows(self._registers[start:stop])
        return keys, estimates

    def extract(self, key: int) -> HyperLogLog:
        """A standalone :class:`HyperLogLog` copy of one key's registers."""
        single = HyperLogLog(self.precision, self.seed)
        slot = self._slots.get(key)
        if slot is not None:
            single._registers[:] = self._registers[slot]
        return single

    def merge(self, other: "HllBank") -> "HllBank":
        """Fold *other* in (register-wise max per key, in place)."""
        if not isinstance(other, HllBank):
            raise TypeError(f"cannot combine HllBank with {type(other).__name__}")
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise ValueError(
                "incompatible banks: "
                f"(precision={self.precision}, seed={self.seed}) vs "
                f"(precision={other.precision}, seed={other.seed})"
            )
        for key, their_slot in other._slots.items():
            my_slot = self._slot(key)
            np.maximum(
                self._registers[my_slot],
                other._registers[their_slot],
                out=self._registers[my_slot],
            )
        return self

    def __contains__(self, key: int) -> bool:
        return key in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def memory_bytes(self) -> int:
        """Register memory including growth headroom (the slot dict excluded)."""
        return int(self._registers.nbytes)

    def __repr__(self) -> str:
        return (
            f"HllBank(precision={self.precision}, seed={self.seed}, "
            f"keys={len(self._slots)})"
        )
