"""Count-Min sketch: approximate per-key counts in fixed memory.

The pre-stage uses one to track per-originator *query* volume (after
window dedup) without a dict of counters: ``depth`` hash rows of
``width`` int64 cells, point queries answered by the minimum over rows.
Errors are one-sided — :meth:`estimate` never undercounts, and
overcounts by more than ``2N/width`` (N = total inserted count) with
probability at most ``2^-depth`` (Cormode & Muthukrishnan 2005).

Rows hash with independent seeds derived from the instance seed, so two
sketches built with the same ``(width, depth, seed)`` are *aligned*:
cell-wise addition is exactly the sketch of the combined stream, which
is what :meth:`merge` / ``|`` does.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import derive_seed, mix64, mix64_array

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """A ``depth × width`` grid of counters with one-sided error.

    Parameters
    ----------
    width:
        Cells per hash row.  Expected overcount is ~``N/width`` per row;
        the min over rows tightens that exponentially in ``depth``.
    depth:
        Number of independent hash rows.
    seed:
        Deployment seed; instances must share it to be mergeable.
    """

    __slots__ = ("width", "depth", "seed", "_rows", "_table")

    def __init__(self, width: int = 4096, depth: int = 4, seed: int = 0) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._rows = tuple(derive_seed(seed, 0x636D73_00 + row) for row in range(depth))
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)

    # -- updates ---------------------------------------------------------

    def add(self, key: int, count: int = 1) -> None:
        """Add *count* occurrences of *key* (scalar path)."""
        table = self._table
        width = self.width
        for row, row_seed in enumerate(self._rows):
            table[row, mix64(key, row_seed) % width] += count

    def add_batch(self, keys: np.ndarray, counts: np.ndarray | int = 1) -> None:
        """Vectorized :meth:`add` over an integer array of keys.

        *counts* is either one int applied to every key or an array
        aligned with *keys*.  Duplicate keys within the batch accumulate
        correctly (``np.add.at`` is unbuffered).
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return
        table = self._table
        width = self.width
        for row, row_seed in enumerate(self._rows):
            cells = (mix64_array(keys, row_seed) % np.uint64(width)).astype(np.intp)
            np.add.at(table[row], cells, counts)

    # -- queries ---------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Approximate count of *key*; never less than the true count."""
        table = self._table
        width = self.width
        return int(
            min(
                table[row, mix64(key, row_seed) % width]
                for row, row_seed in enumerate(self._rows)
            )
        )

    def estimate_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate`; returns int64 aligned with *keys*."""
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        estimates = np.full(keys.shape, np.iinfo(np.int64).max, dtype=np.int64)
        for row, row_seed in enumerate(self._rows):
            cells = (mix64_array(keys, row_seed) % np.uint64(self.width)).astype(np.intp)
            np.minimum(estimates, self._table[row, cells], out=estimates)
        return estimates

    @property
    def total(self) -> int:
        """Total inserted count (exact — every row sums to it)."""
        return int(self._table[0].sum())

    # -- algebra ---------------------------------------------------------

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if not isinstance(other, CountMinSketch):
            raise TypeError(f"cannot combine CountMinSketch with {type(other).__name__}")
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError(
                "incompatible sketches: "
                f"(width={self.width}, depth={self.depth}, seed={self.seed}) vs "
                f"(width={other.width}, depth={other.depth}, seed={other.seed})"
            )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold *other* into self (in place); returns self."""
        self._check_compatible(other)
        self._table += other._table
        return self

    def __or__(self, other: "CountMinSketch") -> "CountMinSketch":
        """A new sketch equivalent to sketching both streams."""
        return self.copy().merge(other)

    def copy(self) -> "CountMinSketch":
        clone = CountMinSketch(self.width, self.depth, self.seed)
        clone._table[:] = self._table
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMinSketch):
            return NotImplemented
        return (
            (self.width, self.depth, self.seed) == (other.width, other.depth, other.seed)
            and bool(np.array_equal(self._table, other._table))
        )

    __hash__ = None  # mutable

    @property
    def memory_bytes(self) -> int:
        """Register memory (the table; metadata excluded)."""
        return int(self._table.nbytes)

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"seed={self.seed}, total={self.total})"
        )
