"""Deterministic seeded 64-bit hashing shared by every sketch structure.

All of :mod:`repro.sketch` hashes through one finalizer — a seeded
splitmix64 — so that a sketch is a pure function of ``(params, seed,
inputs)``: the same keys produce the same registers on every run, on
every shard, which is what makes instances mergeable across processes
and lets the property tests pin exact register states.

Two call forms with bit-identical output:

* :func:`mix64` — scalar Python-int path, used by the streaming
  (per-event) pre-stage;
* :func:`mix64_array` — vectorized ``uint64`` path, used by the batch
  pre-stage and the bulk ``add_batch`` methods.

Negative inputs are taken modulo 2^64 (two's complement), matching the
``int64 → uint64`` reinterpretation NumPy performs, so the scalar and
array paths agree on signed keys too.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MASK64", "mix64", "mix64_array", "derive_seed"]

MASK64 = (1 << 64) - 1

#: splitmix64 constants (Steele, Lea & Flood; public domain reference).
_PHI = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(value: int, seed: int = 0) -> int:
    """Seeded splitmix64 finalizer of one 64-bit key (scalar path)."""
    z = ((value & MASK64) ^ ((seed * _PHI) & MASK64)) & MASK64
    z = (z + _PHI) & MASK64
    z ^= z >> 30
    z = (z * _MIX1) & MASK64
    z ^= z >> 27
    z = (z * _MIX2) & MASK64
    z ^= z >> 31
    return z


def mix64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`mix64` — bit-identical to the scalar path.

    Accepts any integer dtype; signed inputs are reinterpreted modulo
    2^64.  Returns ``uint64``.
    """
    z = np.asarray(values).astype(np.uint64, copy=True)
    z ^= np.uint64((seed * _PHI) & MASK64)
    z += np.uint64(_PHI)
    z ^= z >> np.uint64(30)
    z *= np.uint64(_MIX1)
    z ^= z >> np.uint64(27)
    z *= np.uint64(_MIX2)
    z ^= z >> np.uint64(31)
    return z


def derive_seed(seed: int, salt: int) -> int:
    """An independent child seed for one structure of a sketch family.

    The pre-stage derives distinct seeds for its Bloom filter, CMS rows,
    and HLL registers from one deployment seed, so structures never
    share hash planes (correlated collisions) yet the whole family stays
    reproducible from a single integer.
    """
    return mix64(salt, seed)
