"""The window-scoped probabilistic pre-select stage.

One :class:`SketchPreStage` summarizes one observation window in
constant memory so the §III-B analyzability gate (≥ ``min_queriers``
unique queriers) can run *before* any exact per-originator state
exists:

* a :class:`~repro.sketch.bloom.BloomFilter` dedups repeated
  ``(originator, querier, qtype, 30 s bucket)`` events — the sensor
  retains only PTR queries, so qtype folds in as a constant;
* a :class:`~repro.sketch.cms.CountMinSketch` tracks deduped query
  volume per originator;
* an :class:`~repro.sketch.hll.HllBank` estimates unique queriers per
  originator — the quantity the gate thresholds;
* an exact *querier roster* (unique querier addresses, O(queriers) not
  O(originators × queriers)) is kept on the side because downstream
  dynamic features normalize by the window's whole querier universe.

Two operating modes share the class:

* **batch** (two-pass): the engine streams every in-window event
  through :meth:`observe_batch`, reads :meth:`survivors`, then
  materializes exact observations for survivors only.  Because the
  second pass is the unchanged exact collector, survivor observations
  and feature rows are bit-identical to the exact path; the only error
  is one-sided — an analyzable originator is dropped only if its HLL
  estimate lands below ``gate_queriers``, which the margin built into
  the gate (see ``SensorConfig.sketch_margin``) makes vanishingly rare.
* **streaming** (single-pass): :meth:`observe` is called per event and
  an originator is *promoted* to exact state once its estimate reaches
  ``promote_queriers``; events before promotion are summarized but not
  materialized, so promoted footprints can trail exact ones by at most
  the handful of pre-promotion queriers.

Dedup note: the Bloom key uses fixed ``⌊t/30 s⌋`` buckets, not the
exact path's sliding 30 s horizon.  Unique-querier counts (the gate
input) are unaffected — duplicates never add to an HLL — only the
CMS query-volume telemetry sees the coarser dedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.sketch.bloom import BloomFilter
from repro.sketch.cms import CountMinSketch
from repro.sketch.hashing import MASK64, derive_seed, mix64, mix64_array
from repro.sketch.hll import HllBank

__all__ = [
    "SketchParams",
    "SketchPreStage",
    "KEEP",
    "DEFER",
    "DUPLICATE",
    "KEEP_CODE",
    "DEFER_CODE",
    "DUPLICATE_CODE",
    "VERDICT_NAMES",
]

#: :meth:`SketchPreStage.observe` verdicts.
KEEP = "keep"          #: materialize this event exactly (originator promoted)
DEFER = "defer"        #: summarized only; originator not yet promoted
DUPLICATE = "duplicate"  #: suppressed by the 30 s dedup filter

#: Integer verdicts used by the array-native :meth:`SketchPreStage.observe_arrays`
#: (one ``uint8`` per event); ``VERDICT_NAMES[code]`` maps a code back to
#: the string verdict :meth:`~SketchPreStage.observe` would have returned.
KEEP_CODE = 0
DEFER_CODE = 1
DUPLICATE_CODE = 2
VERDICT_NAMES = (KEEP, DEFER, DUPLICATE)

#: PTR RR type — the only qtype the sensor retains — folded into the
#: dedup key as a constant so the key shape matches the paper's
#: (originator, querier, qtype) triple.
_QTYPE_PTR = 12

#: Events per vectorized chunk in :meth:`observe_batch`; bounds the
#: temporaries (dedup-key sort copies, HLL point arrays, Bloom probe
#: matrices) to well under 1 MiB each so the pre-stage's peak memory
#: stays flat in the log size.
_CHUNK_EVENTS = 32_768


@dataclass(frozen=True, slots=True)
class SketchParams:
    """Geometry and error budget of one pre-stage instance.

    ``gate_queriers`` is the *approximate* analyzability threshold the
    HLL estimate is compared against — the engine derives it from
    ``min_queriers`` scaled down by its one-sided error margin.
    ``promote_queriers`` only matters in streaming mode: the estimate at
    which an originator starts materializing exact state.  It must not
    exceed ``gate_queriers``, otherwise the gate could select
    originators that never materialized.
    """

    width: int = 4096
    depth: int = 4
    hll_precision: int = 6
    fp_rate: float = 0.01
    capacity: int = 1 << 20
    gate_queriers: int = 10
    promote_queriers: int = 4
    dedup_seconds: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if not 4 <= self.hll_precision <= 16:
            raise ValueError(f"hll_precision must be in [4, 16], got {self.hll_precision}")
        if not 0.0 < self.fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1), got {self.fp_rate}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.gate_queriers < 1:
            raise ValueError(f"gate_queriers must be >= 1, got {self.gate_queriers}")
        if self.promote_queriers < 1:
            raise ValueError(f"promote_queriers must be >= 1, got {self.promote_queriers}")
        if self.promote_queriers > self.gate_queriers:
            raise ValueError(
                "inconsistent error budget: promote_queriers "
                f"({self.promote_queriers}) exceeds gate_queriers ({self.gate_queriers}) — "
                "the gate would select originators that never materialized"
            )
        if self.dedup_seconds < 0:
            raise ValueError(f"dedup_seconds must be >= 0, got {self.dedup_seconds}")


class _UniqueInts:
    """Exact set of int64 values kept as merged-unique numpy chunks.

    A plain ``set`` of Python ints costs ~60 bytes/element; this keeps
    8 bytes/element (plus transient buffers) and hands back a sorted
    array, which is what the window context wants anyway.
    """

    __slots__ = ("_chunks", "_buffer", "_merged")
    _BUFFER_LIMIT = 65_536
    _CHUNK_LIMIT = 64

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._buffer: list[int] = []
        self._merged: np.ndarray | None = None

    def add(self, value: int) -> None:
        self._buffer.append(value)
        self._merged = None
        if len(self._buffer) >= self._BUFFER_LIMIT:
            self._flush()

    def add_array(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self._chunks.append(np.unique(np.asarray(values, dtype=np.int64)))
        self._merged = None
        if len(self._chunks) >= self._CHUNK_LIMIT:
            self._compact()

    def _flush(self) -> None:
        if self._buffer:
            self._chunks.append(np.unique(np.array(self._buffer, dtype=np.int64)))
            self._buffer.clear()

    def _compact(self) -> None:
        self._flush()
        if self._chunks:
            self._chunks = [np.unique(np.concatenate(self._chunks))]

    def array(self) -> np.ndarray:
        """Sorted unique values (cached until the next add)."""
        if self._merged is None:
            self._compact()
            self._merged = self._chunks[0] if self._chunks else np.zeros(0, dtype=np.int64)
        return self._merged

    def update(self, other: "_UniqueInts") -> None:
        self.add_array(other.array())

    @property
    def nbytes(self) -> int:
        return 8 * (sum(chunk.size for chunk in self._chunks) + len(self._buffer))


def _event_key(originator: int, querier: int, bucket: int, seed: int) -> int:
    """64-bit dedup key of one (originator, querier, qtype, bucket) event."""
    k = mix64(originator, seed)
    k = mix64(k ^ (querier & MASK64), seed ^ _QTYPE_PTR)
    return mix64(k ^ (bucket & MASK64), seed)


def _event_key_array(
    originators: np.ndarray, queriers: np.ndarray, buckets: np.ndarray, seed: int
) -> np.ndarray:
    """Vectorized :func:`_event_key`; bit-identical to the scalar path."""
    k = mix64_array(originators, seed)
    k = mix64_array(k ^ queriers.astype(np.uint64), seed ^ _QTYPE_PTR)
    return mix64_array(k ^ buckets.astype(np.uint64), seed)


class SketchPreStage:
    """Constant-memory summary of one window, driving the approximate gate."""

    __slots__ = (
        "params",
        "bloom",
        "counts",
        "uniques",
        "exact_observations",
        "events_unique",
        "events_duplicate",
        "events_deferred",
        "resolver_wholesale",
        "resolver_replayed",
        "_key_seed",
        "_promoted",
        "_promoted_arr",
        "_roster",
        "_gate_cache",
    )

    def __init__(self, params: SketchParams) -> None:
        self.params = params
        self.bloom = BloomFilter(
            params.capacity, params.fp_rate, seed=derive_seed(params.seed, 0x707265_01)
        )
        self.counts = CountMinSketch(
            params.width, params.depth, seed=derive_seed(params.seed, 0x707265_02)
        )
        self.uniques = HllBank(
            params.hll_precision, seed=derive_seed(params.seed, 0x707265_03)
        )
        self._key_seed = derive_seed(params.seed, 0x707265_04)
        #: True when every surviving originator has *exact* observations
        #: (batch two-pass mode); False in single-pass streaming mode.
        self.exact_observations = False
        self.events_unique = 0
        self.events_duplicate = 0
        self.events_deferred = 0
        #: Promotion-resolver accounting (:meth:`observe_arrays` only):
        #: per chunk, originators settled wholesale with array math vs
        #: originators replayed event-by-event to find a bar crossing.
        self.resolver_wholesale = 0
        self.resolver_replayed = 0
        self._promoted: set[int] = set()
        #: Sorted-array mirror of ``_promoted`` for vectorized membership
        #: tests in :meth:`observe_arrays`; rebuilt lazily on promotion.
        self._promoted_arr: np.ndarray | None = None
        self._roster = _UniqueInts()
        self._gate_cache: tuple[np.ndarray, np.ndarray] | None = None

    # -- ingest ----------------------------------------------------------

    def _bucket(self, timestamp: float) -> int:
        dedup = self.params.dedup_seconds
        return int(timestamp // dedup) if dedup > 0 else 0

    def observe(self, timestamp: float, querier: int, originator: int) -> str:
        """Summarize one event; returns a verdict (:data:`KEEP`,
        :data:`DEFER`, or :data:`DUPLICATE`) telling the streaming
        collector what to do with the exact event."""
        self._roster.add(querier)
        if self.params.dedup_seconds > 0:
            key = _event_key(originator, querier, self._bucket(timestamp), self._key_seed)
            if not self.bloom.add(key):
                # A duplicate touches only the roster and the Bloom
                # filter — the HLL estimates the gate is built from are
                # unchanged, so the cache stays valid.
                self.events_duplicate += 1
                return DUPLICATE
        self._gate_cache = None
        self.events_unique += 1
        self.counts.add(originator)
        changed = self.uniques.add(originator, querier)
        if originator in self._promoted:
            return KEEP
        if changed and self.uniques.estimate(originator) >= self.params.promote_queriers:
            self._promoted.add(originator)
            self._promoted_arr = None
            return KEEP
        self.events_deferred += 1
        return DEFER

    def observe_batch(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> None:
        """Vectorized ingest of aligned event arrays (batch mode).

        Processes in chunks: exact within-chunk dedup via ``np.unique``
        on the event key, cross-chunk dedup via the Bloom filter — the
        same final sketch state and counters as the scalar path.
        """
        self._gate_cache = None
        timestamps = np.asarray(timestamps, dtype=np.float64)
        queriers = np.asarray(queriers, dtype=np.int64)
        originators = np.asarray(originators, dtype=np.int64)
        dedup = self.params.dedup_seconds
        for start in range(0, timestamps.size, _CHUNK_EVENTS):
            stop = min(start + _CHUNK_EVENTS, timestamps.size)
            q = queriers[start:stop]
            o = originators[start:stop]
            self._roster.add_array(q)
            if dedup > 0:
                buckets = np.floor_divide(timestamps[start:stop], dedup).astype(np.int64)
                keys = _event_key_array(o, q, buckets, self._key_seed)
                _, first = np.unique(keys, return_index=True)
                # Chronological first occurrences, so bank insertion
                # order (and thus survivor order) matches the scalar path.
                first.sort()
                novel = self.bloom.add_batch(keys[first])
                kept = first[novel]
                self.events_unique += int(kept.size)
                self.events_duplicate += int((stop - start) - kept.size)
            else:
                kept = slice(None)
                self.events_unique += int(stop - start)
            self.counts.add_batch(o[kept])
            self.uniques.add_batch(o[kept], q[kept])

    def observe_arrays(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ingest of aligned event arrays (streaming mode).

        The array-native twin of per-event :meth:`observe`: returns
        ``(codes, kept)`` where ``codes[i]`` is the uint8 verdict of
        event *i* (:data:`KEEP_CODE` / :data:`DEFER_CODE` /
        :data:`DUPLICATE_CODE` — the exact verdict sequence the scalar
        path would produce, for any chunk split) and ``kept`` holds the
        indices of KEEP events in input order, i.e. the events the
        streaming collector materializes exactly.

        Dedup is vectorized like :meth:`observe_batch` (``np.unique``
        within the chunk, Bloom across chunks).  Promotion uses a
        two-tier resolver per chunk: originators that entered the chunk
        promoted (all KEEP) or whose HLL estimate provably stays below
        ``promote_queriers`` throughout the chunk (all DEFER) are
        settled wholesale with array math; only originators that may
        *cross* the bar inside the chunk are rewound to their pre-chunk
        registers and replayed event-by-event to land on the exact
        crossing event.  See DESIGN.md § 3c for the bound that makes
        the wholesale DEFER tier safe.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        queriers = np.asarray(queriers, dtype=np.int64)
        originators = np.asarray(originators, dtype=np.int64)
        codes = np.empty(timestamps.size, dtype=np.uint8)
        for start in range(0, timestamps.size, _CHUNK_EVENTS):
            stop = min(start + _CHUNK_EVENTS, timestamps.size)
            self._observe_chunk(
                timestamps[start:stop],
                queriers[start:stop],
                originators[start:stop],
                codes[start:stop],
            )
        return codes, np.flatnonzero(codes == KEEP_CODE)

    def _observe_chunk(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
        codes: np.ndarray,
    ) -> None:
        """One bounded chunk of :meth:`observe_arrays`; writes *codes* in place."""
        n = int(timestamps.size)
        codes[:] = DUPLICATE_CODE
        self._roster.add_array(queriers)
        dedup = self.params.dedup_seconds
        if dedup > 0:
            buckets = np.floor_divide(timestamps, dedup).astype(np.int64)
            keys = _event_key_array(originators, queriers, buckets, self._key_seed)
            _, first = np.unique(keys, return_index=True)
            first.sort()
            novel = self.bloom.add_batch(keys[first])
            kept = first[novel]
            self.events_unique += int(kept.size)
            self.events_duplicate += int(n - kept.size)
        else:
            kept = np.arange(n, dtype=np.intp)
            self.events_unique += n
        if kept.size == 0:
            return
        self._gate_cache = None
        o = originators[kept]
        q = queriers[kept]
        self.counts.add_batch(o)
        uniq, ufirst, inverse = np.unique(o, return_index=True, return_inverse=True)
        # One dict sweep resolves every originator's bank row; missing
        # rows are created in chronological first-occurrence order so the
        # per-group register updates below cannot scramble bank insertion
        # order relative to the scalar path.
        slots = self.uniques.resolve_slots(uniq, create_order=np.argsort(ufirst))
        if self._promoted_arr is None:
            self._promoted_arr = np.fromiter(
                self._promoted, dtype=np.int64, count=len(self._promoted)
            )
            self._promoted_arr.sort()
        promoted = np.isin(uniq, self._promoted_arr, assume_unique=True)
        event_slots = slots[inverse]
        keep_events = promoted[inverse]
        if keep_events.any():
            # Tier 1a: already-promoted originators — every event KEEPs.
            codes[kept[keep_events]] = KEEP_CODE
            self.uniques.add_at_slots(event_slots[keep_events], q[keep_events])
        pending_sel = np.flatnonzero(~promoted)
        if pending_sel.size == 0:
            self.resolver_wholesale += int(uniq.size)
            return
        pending = uniq[pending_sel]
        pending_slots = slots[pending_sel]
        pending_events = ~keep_events
        snapshot = self.uniques.rows_at(pending_slots)
        self.uniques.add_at_slots(event_slots[pending_events], q[pending_events])
        estimates, zeros = self.uniques.estimate_slots(pending_slots, with_zeros=True)
        # Tier 1b: an unpromoted originator enters the chunk with an
        # estimate < promote_queriers (the scalar check re-runs at every
        # register change, which is the only time the estimate moves),
        # and no intermediate estimate inside the chunk can exceed
        # ``max(final estimate, m·ln(m / max(final zeros, 1)))``: the
        # raw harmonic estimate is monotone in the registers, the
        # linear-counting branch is monotone in the zero count, and when
        # the final estimate takes the linear branch every prefix does
        # too.  Originators whose bound stays below the bar never
        # promote inside the chunk — settled wholesale as DEFER.
        m = float(1 << self.params.hll_precision)
        bound = np.maximum(
            estimates, m * np.log(m / np.maximum(zeros, 1).astype(np.float64))
        )
        below = bound < float(self.params.promote_queriers)
        crossers = pending[~below]
        self.resolver_wholesale += int(uniq.size - crossers.size)
        if crossers.size == 0:
            codes[kept[pending_events]] = DEFER_CODE
            self.events_deferred += int(np.count_nonzero(pending_events))
            return
        # Tier 2: rewind the (few) possible crossers to their pre-chunk
        # registers and re-run their events through the scalar promote
        # check to land on the exact crossing event.
        self.resolver_replayed += int(crossers.size)
        self.uniques.write_rows_at(pending_slots[~below], snapshot[~below])
        crosser_flag = np.zeros(uniq.size, dtype=bool)
        crosser_flag[pending_sel[~below]] = True
        replay_events = crosser_flag[inverse]
        settled = pending_events & ~replay_events
        codes[kept[settled]] = DEFER_CODE
        self.events_deferred += int(np.count_nonzero(settled))
        bar = self.params.promote_queriers
        bank = self.uniques
        for i in np.flatnonzero(replay_events).tolist():
            origin = int(o[i])
            changed = bank.add(origin, int(q[i]))
            if origin in self._promoted:
                codes[kept[i]] = KEEP_CODE
                continue
            if changed and bank.estimate(origin) >= bar:
                self._promoted.add(origin)
                self._promoted_arr = None
                codes[kept[i]] = KEEP_CODE
                continue
            codes[kept[i]] = DEFER_CODE
            self.events_deferred += 1

    # -- the gate --------------------------------------------------------

    def _gate(self) -> tuple[np.ndarray, np.ndarray]:
        if self._gate_cache is None:
            self._gate_cache = self.uniques.estimate_all()
        return self._gate_cache

    def survivors(self) -> np.ndarray:
        """Originators whose estimated unique queriers pass the gate."""
        keys, estimates = self._gate()
        return keys[estimates >= self.params.gate_queriers]

    @property
    def originators_seen(self) -> int:
        """Distinct originators summarized (exact — one bank slot each)."""
        return len(self.uniques)

    @property
    def gate_kept(self) -> int:
        return int(self.survivors().size)

    @property
    def gate_dropped(self) -> int:
        return self.originators_seen - self.gate_kept

    def estimate_queriers(self, originator: int) -> float:
        """Estimated unique queriers of one originator."""
        return self.uniques.estimate(originator)

    def estimate_count(self, originator: int) -> int:
        """Estimated (deduped) query count of one originator."""
        return self.counts.estimate(originator)

    def is_promoted(self, originator: int) -> bool:
        return originator in self._promoted

    def roster_array(self) -> np.ndarray:
        """Sorted exact array of every querier address in the window."""
        return self._roster.array()

    # -- accounting ------------------------------------------------------

    def memory_bytes(self) -> dict[str, int]:
        """Bytes held per structure — the telemetry gauge payload."""
        return {
            "bloom": self.bloom.memory_bytes,
            "cms": self.counts.memory_bytes,
            "hll": self.uniques.memory_bytes,
            "roster": self._roster.nbytes,
        }

    def error_against(self, exact_footprints: Mapping[int, int]) -> np.ndarray:
        """Relative unique-querier estimate error per known originator.

        *exact_footprints* maps originator → true unique-querier count
        (available for survivors in batch mode); returns
        ``|estimate − true| / true`` aligned with the mapping's order.
        """
        errors = np.zeros(len(exact_footprints), dtype=np.float64)
        for i, (originator, true_count) in enumerate(exact_footprints.items()):
            if true_count > 0:
                estimate = self.uniques.estimate(originator)
                errors[i] = abs(estimate - true_count) / true_count
        return errors

    def false_drops(self, exact_footprints: Mapping[int, int], min_queriers: int) -> int:
        """How many truly-analyzable originators the gate dropped.

        Needs ground truth (*exact_footprints* over **all** originators),
        so only verification harnesses and the benchmark can call it —
        in sketch mode proper the dropped tail's exact footprints are
        never known.
        """
        kept = set(int(origin) for origin in self.survivors())
        return sum(
            1
            for originator, footprint in exact_footprints.items()
            if footprint >= min_queriers and originator not in kept
        )

    # -- algebra ---------------------------------------------------------

    def merge(self, other: "SketchPreStage") -> "SketchPreStage":
        """Fold another shard's pre-stage in (same params/seed required)."""
        if not isinstance(other, SketchPreStage):
            raise TypeError(f"cannot combine SketchPreStage with {type(other).__name__}")
        if self.params != other.params:
            raise ValueError(f"incompatible pre-stages: {self.params} vs {other.params}")
        self.bloom.merge(other.bloom)
        self.counts.merge(other.counts)
        self.uniques.merge(other.uniques)
        self._roster.update(other._roster)
        self._promoted |= other._promoted
        self._promoted_arr = None
        self.events_unique += other.events_unique
        self.events_duplicate += other.events_duplicate
        self.events_deferred += other.events_deferred
        self.resolver_wholesale += other.resolver_wholesale
        self.resolver_replayed += other.resolver_replayed
        self._gate_cache = None
        return self

    def __or__(self, other: "SketchPreStage") -> "SketchPreStage":
        clone = SketchPreStage(self.params)
        clone.exact_observations = self.exact_observations
        return clone.merge(self).merge(other)

    def __repr__(self) -> str:
        return (
            f"SketchPreStage(originators={self.originators_seen}, "
            f"unique={self.events_unique}, duplicate={self.events_duplicate}, "
            f"deferred={self.events_deferred})"
        )
