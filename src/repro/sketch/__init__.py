"""Probabilistic summaries for line-rate sensing (`repro.sketch`).

Dependency-free (numpy-backed) sketch structures plus the window-scoped
pre-select stage that lets the sensing engine apply the paper's §III-B
analyzability gate in constant memory — exact per-originator querier
sets are materialized only for originators that can plausibly pass it.

Layout::

    repro.sketch
    ├── hashing    seeded splitmix64 (scalar + vectorized, bit-identical)
    ├── cms        CountMinSketch — per-originator query counts
    ├── hll        HyperLogLog / HllBank — unique-querier cardinality
    ├── bloom      BloomFilter — 30 s (originator, querier, qtype) dedup
    └── prestage   SketchParams / SketchPreStage — the composed gate

All structures hash deterministically from a single seed and merge
(``a | b`` or ``a.merge(b)``) when built with equal parameters, so
per-shard instances can be federated before gating.
"""

from repro.sketch.bloom import BloomFilter
from repro.sketch.cms import CountMinSketch
from repro.sketch.hashing import mix64, mix64_array
from repro.sketch.hll import HllBank, HyperLogLog
from repro.sketch.prestage import SketchParams, SketchPreStage

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "HllBank",
    "HyperLogLog",
    "SketchParams",
    "SketchPreStage",
    "mix64",
    "mix64_array",
]
