"""Temporal co-activity of candidate scan teams (§ VI-B follow-up).

The paper flags /24 blocks with 4+ scanning addresses as candidate
teams but notes it "cannot confirm coordination" without direct scan
traffic — backscatter only "suggests networks for closer examination".
This module performs that closer examination with the data backscatter
*does* have: if the members of a block are a coordinated operation,
their active weeks should overlap far more than those of random
scanners drawn from different blocks.

Co-activity is the mean pairwise Jaccard similarity of the members'
active-window sets; the baseline is the same statistic over random
scanner pairs from distinct /24s.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.analysis.longitudinal import WindowedAnalysis
from repro.netmodel.addressing import slash24

__all__ = ["TeamCoactivity", "team_coactivity", "coactivity_baseline"]


def _active_windows(
    analysis: WindowedAnalysis, team_class: str
) -> dict[int, set[int]]:
    """Originator → indices of windows where it was classified *team_class*."""
    active: dict[int, set[int]] = {}
    for window in analysis.windows:
        for originator, app_class in window.classification.items():
            if app_class == team_class:
                active.setdefault(originator, set()).add(window.index)
    return active


def _jaccard(a: set[int], b: set[int]) -> float:
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def _mean_pairwise_jaccard(members: list[set[int]]) -> float:
    pairs = list(combinations(members, 2))
    if not pairs:
        return float("nan")
    return float(np.mean([_jaccard(a, b) for a, b in pairs]))


@dataclass(frozen=True, slots=True)
class TeamCoactivity:
    """Co-activity verdict for one candidate team block."""

    block: int
    members: int
    coactivity: float
    baseline: float

    @property
    def lift(self) -> float:
        """Co-activity relative to random scanner pairs (>1 = coordinated-looking)."""
        if self.baseline <= 0:
            return float("inf") if self.coactivity > 0 else float("nan")
        return self.coactivity / self.baseline


def coactivity_baseline(
    analysis: WindowedAnalysis,
    team_class: str = "scan",
    samples: int = 500,
    seed: int = 0,
) -> float:
    """Mean Jaccard of random cross-block scanner pairs."""
    active = _active_windows(analysis, team_class)
    originators = sorted(active)
    if len(originators) < 2:
        return float("nan")
    rng = np.random.default_rng(seed)
    values: list[float] = []
    for _ in range(samples):
        a, b = rng.choice(len(originators), size=2, replace=False)
        first, second = originators[int(a)], originators[int(b)]
        if slash24(first) == slash24(second):
            continue  # want cross-block pairs only
        values.append(_jaccard(active[first], active[second]))
    return float(np.mean(values)) if values else float("nan")


def team_coactivity(
    analysis: WindowedAnalysis,
    team_size: int = 4,
    team_class: str = "scan",
    seed: int = 0,
) -> list[TeamCoactivity]:
    """Score every 4+-member block's temporal co-activity against baseline."""
    active = _active_windows(analysis, team_class)
    blocks: dict[int, list[set[int]]] = {}
    for originator, windows in active.items():
        blocks.setdefault(slash24(originator), []).append(windows)
    baseline = coactivity_baseline(analysis, team_class, seed=seed)
    results: list[TeamCoactivity] = []
    for block, members in sorted(blocks.items()):
        if len(members) < team_size:
            continue
        results.append(
            TeamCoactivity(
                block=block,
                members=len(members),
                coactivity=_mean_pairwise_jaccard(members),
                baseline=baseline,
            )
        )
    results.sort(key=lambda t: -t.members)
    return results
