"""Controlled scan experiments: caching attenuation (§ IV-D, Fig 4).

The paper probes a known fraction of IPv4 from a host whose reverse zone
it controls, with the PTR TTL set to zero so every triggered lookup must
reach the final authority.  Plotting unique queriers against targets
scanned gives a power-law with exponent ≈ 0.71 (roughly one querier per
thousand targets), while root servers see almost nothing of even the
biggest scans.

Reproduction: each querier machine in our world fronts a *catchment* of
addresses (the hosts whose inbound traffic it logs or resolves for — a
shared ISP resolver fronts tens of thousands, a single firewall a few
hundred).  A random scan of fraction f trips querier q with probability
1 - (1-f)^catchment(q); heavy-tailed catchments are what bend the
aggregate below slope 1.  Reacting queriers resolve the scanner's PTR
through the normal hierarchy, so root-level visibility comes out of the
same cache model as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnssim.authority import Authority, AuthorityLevel
from repro.dnssim.hierarchy import DnsHierarchy
from repro.dnssim.resolver import ResolverConfig
from repro.dnssim.zone import PtrRecordSpec
from repro.netmodel.namespace import QuerierRole
from repro.netmodel.world import World

__all__ = ["ControlledTrial", "run_trial", "run_experiment", "fit_power_law"]

#: Lognormal catchment parameters per role: (log-mean, log-sigma).
#: Shared resolvers front whole ISPs; middleboxes front a subnet or two.
_CATCHMENT_PARAMS: dict[QuerierRole, tuple[float, float]] = {
    QuerierRole.NS: (8.8, 1.3),        # e^8.8 ≈ 6.6k addresses
    QuerierRole.FIREWALL: (5.8, 1.1),  # ≈ 330
    QuerierRole.MAIL: (5.0, 1.0),      # ≈ 150
    QuerierRole.ANTISPAM: (5.4, 1.0),
}
_DEFAULT_CATCHMENT = (4.4, 1.2)        # ≈ 80


@dataclass(frozen=True, slots=True)
class ControlledTrial:
    """One scan trial's observations."""

    fraction: float
    targets: int
    reacting_queriers: int
    final_queriers: int
    b_root_queriers: int
    m_root_queriers: int


def _catchments(world: World, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = np.empty(len(world.queriers))
    for index, querier in enumerate(world.queriers):
        mu, sigma = _CATCHMENT_PARAMS.get(querier.role, _DEFAULT_CATCHMENT)
        out[index] = rng.lognormal(mu, sigma)
    return np.maximum(out, 1.0)


def run_trial(
    world: World,
    fraction: float,
    seed: int = 0,
    protocol: str = "icmp",
    resolver_config: ResolverConfig | None = None,
    repeats_per_querier: float = 1.5,
) -> ControlledTrial:
    """Scan *fraction* of the (scaled) address space once.

    A fresh hierarchy is built per trial, as each of the paper's trials
    runs against independent cache state at the final authority.
    ``protocol`` only labels the trial; reverse-DNS reactions do not
    depend on the probed port.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    del protocol  # reactions are protocol-independent at the DNS layer
    rng = np.random.default_rng(seed)
    hierarchy = DnsHierarchy(
        world, seed=seed + 1, resolver_config=resolver_config or ResolverConfig()
    )
    scanner = world.allocate_originator(rng)
    # TTL zero: defeat PTR caching so the final authority sees everything.
    hierarchy.register_originator(scanner, PtrRecordSpec(ttl=0.0, name="scanner.example.org"))
    final = hierarchy.attach_final(
        frozenset({scanner}),
        Authority(
            name="final", level=AuthorityLevel.FINAL,
            scope_slash8=frozenset({scanner >> 24}),
        ),
    )
    b_root = hierarchy.attach_root(
        Authority(name="b-root", level=AuthorityLevel.ROOT, root_letter="b")
    )
    m_root = hierarchy.attach_root(
        Authority(name="m-root", level=AuthorityLevel.ROOT, root_letter="m", sites=7)
    )
    catchments = _catchments(world, seed=world.config.seed + 7)
    react_probability = 1.0 - np.power(1.0 - fraction, catchments)
    reacting = np.nonzero(rng.random(len(catchments)) < react_probability)[0]
    # Scans take hours; spread reactions over a 13-hour sweep (the paper's
    # largest trial duration) so repeat lookups exercise dedup windows.
    sweep_seconds = 13 * 3600.0
    events: list[tuple[float, int]] = []
    for index in reacting:
        first = float(rng.uniform(0.0, sweep_seconds))
        events.append((first, int(index)))
        for _ in range(rng.poisson(max(repeats_per_querier - 1.0, 0.0))):
            events.append((first + float(rng.exponential(600.0)), int(index)))
    events.sort()
    for when, index in events:
        hierarchy.resolve_ptr(world.queriers[index], scanner, when)
    space = world.geo.allocated * (1 << 24)
    return ControlledTrial(
        fraction=fraction,
        targets=int(fraction * space),
        reacting_queriers=len(reacting),
        final_queriers=len({e.querier for e in final.log}),
        b_root_queriers=len({e.querier for e in b_root.log}),
        m_root_queriers=len({e.querier for e in m_root.log}),
    )


def run_experiment(
    world: World,
    fractions: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0),
    trials_per_fraction: int = 3,
    seed: int = 0,
) -> list[ControlledTrial]:
    """The full Fig 4 sweep: several trials per scanned fraction."""
    results: list[ControlledTrial] = []
    for fraction_index, fraction in enumerate(fractions):
        for trial in range(trials_per_fraction):
            results.append(
                run_trial(world, fraction, seed=seed + fraction_index * 101 + trial)
            )
    return results


def fit_power_law(trials: list[ControlledTrial]) -> tuple[float, float]:
    """Least-squares fit queriers ≈ C · targets^k at the final authority.

    Returns (k, C).  The paper reports k ≈ 0.71.  Trials with zero
    queriers are excluded (log-domain fit).
    """
    points = [
        (t.targets, t.final_queriers)
        for t in trials
        if t.targets > 0 and t.final_queriers > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two non-empty trials to fit")
    x = np.log(np.array([p[0] for p in points], dtype=float))
    y = np.log(np.array([p[1] for p in points], dtype=float))
    k, log_c = np.polyfit(x, y, 1)
    return float(k), float(np.exp(log_c))
