"""Classification consistency over time: the r-ratio (§ V-E, Fig 8).

For each originator classified in several windows, r is the fraction of
windows in which its most common (preferred) class was assigned.  The
paper reports the CDF of r for originators with at least q queriers
(q ∈ {20, 50, 75, 100}): more queriers → more consistent classifications,
and 85-90% of originators have a strict-majority class (r > 0.5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.analysis.longitudinal import WindowedAnalysis

__all__ = ["ConsistencyRecord", "consistency_ratios", "ratio_cdf", "majority_fraction"]


@dataclass(frozen=True, slots=True)
class ConsistencyRecord:
    """One originator's voting summary across windows."""

    originator: int
    appearances: int
    preferred_class: str
    r: float
    min_footprint: int


def consistency_ratios(
    analysis: WindowedAnalysis,
    min_queriers: int = 20,
    min_appearances: int = 4,
) -> list[ConsistencyRecord]:
    """r per originator, over windows where its footprint >= min_queriers.

    Only originators appearing in at least *min_appearances* windows are
    reported (the paper uses four or more samples to avoid overly
    quantized distributions).
    """
    votes: dict[int, list[str]] = {}
    footprints: dict[int, list[int]] = {}
    for window in analysis.windows:
        for originator, app_class in window.classification.items():
            observation = window.observations.observations.get(originator)
            if observation is None or observation.footprint < min_queriers:
                continue
            votes.setdefault(originator, []).append(app_class)
            footprints.setdefault(originator, []).append(observation.footprint)
    records: list[ConsistencyRecord] = []
    for originator, classes in votes.items():
        if len(classes) < min_appearances:
            continue
        counts = Counter(classes)
        preferred, preferred_count = counts.most_common(1)[0]
        records.append(
            ConsistencyRecord(
                originator=originator,
                appearances=len(classes),
                preferred_class=preferred,
                r=preferred_count / len(classes),
                min_footprint=min(footprints[originator]),
            )
        )
    return records


def ratio_cdf(records: list[ConsistencyRecord]) -> tuple[np.ndarray, np.ndarray]:
    """CDF points (r, P[R <= r]) for Fig 8."""
    if not records:
        return np.array([]), np.array([])
    values = np.sort(np.array([record.r for record in records]))
    cumulative = np.arange(1, len(values) + 1) / len(values)
    return values, cumulative


def majority_fraction(records: list[ConsistencyRecord]) -> float:
    """Fraction of originators whose preferred class is a strict majority
    (r > 0.5) — the paper's 85-90% headline."""
    if not records:
        return 0.0
    return sum(1 for record in records if record.r > 0.5) / len(records)
