"""Surge alerting on class activity (the paper's "detection and response").

§ I motivates the sensor with anticipating attacks; § VI-C shows the
signal: scanning jumps >25% in the weeks after the Heartbleed
announcement against a large steady background.  This module turns the
per-window class counts into alerts using a robust rolling baseline —
median and MAD over the trailing windows — so a handful of noisy weeks
cannot mask a genuine surge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Alert", "SurgeDetector", "detect_surges"]


@dataclass(frozen=True, slots=True)
class Alert:
    """One surge: when, what class, how large against the baseline."""

    day: float
    app_class: str
    observed: int
    baseline: float
    score: float
    """Robust z-score: (observed - median) / (1.4826 * MAD)."""


class SurgeDetector:
    """Online robust-baseline surge detection for one class's counts.

    Parameters
    ----------
    window:
        Trailing windows forming the baseline (the paper's "large amount
        of scanning that happens at all times").
    threshold:
        Robust z-score above which a window is flagged.
    min_baseline:
        Alerts are suppressed until this many baseline samples exist —
        a detector with two data points has no business alarming.
    min_relative:
        Additionally require observed >= (1 + min_relative) * median, so
        tiny absolute wiggles on a flat series cannot alert even when
        the MAD is near zero.
    """

    def __init__(
        self,
        app_class: str,
        window: int = 6,
        threshold: float = 3.0,
        min_baseline: int = 4,
        min_relative: float = 0.2,
    ) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.app_class = app_class
        self.window = window
        self.threshold = threshold
        self.min_baseline = min_baseline
        self.min_relative = min_relative
        self._history: list[float] = []

    def update(self, day: float, observed: int) -> Alert | None:
        """Feed one window's count; returns an alert if it surges.

        Every observation — alerting or not — joins the baseline: the
        rolling *median* is already robust to isolated spikes (a one-week
        surge cannot normalize itself away), while sustained level shifts
        are correctly adopted as the new background within one window
        span, so a slowly growing population does not alarm forever.
        """
        alert: Alert | None = None
        if len(self._history) >= self.min_baseline:
            baseline = np.array(self._history[-self.window :], dtype=float)
            median = float(np.median(baseline))
            mad = float(np.median(np.abs(baseline - median)))
            spread = 1.4826 * mad if mad > 0 else max(1.0, 0.1 * max(median, 1.0))
            score = (observed - median) / spread
            relative_ok = observed >= (1.0 + self.min_relative) * max(median, 1.0)
            if score >= self.threshold and relative_ok:
                alert = Alert(
                    day=day,
                    app_class=self.app_class,
                    observed=observed,
                    baseline=median,
                    score=float(score),
                )
        self._history.append(float(observed))
        return alert

    @property
    def baseline_size(self) -> int:
        return len(self._history)


def detect_surges(
    series: Sequence[tuple[float, dict[str, int], int]],
    app_class: str = "scan",
    window: int = 6,
    threshold: float = 3.0,
    min_relative: float = 0.2,
) -> list[Alert]:
    """Run surge detection over a Fig 11-style class-count series.

    ``series`` is the output of
    :func:`repro.analysis.trends.class_count_series`; windows with no
    classifications at all are skipped (sensor not yet trained).
    """
    detector = SurgeDetector(
        app_class, window=window, threshold=threshold, min_relative=min_relative
    )
    alerts: list[Alert] = []
    for day, counts, total in series:
        if total == 0:
            continue
        alert = detector.update(day, counts.get(app_class, 0))
        if alert is not None:
            alerts.append(alert)
    return alerts
