"""Windowed analysis of long datasets (the M-sampled / B-multi-year flow).

Slices a generated dataset's sensor log into consecutive observation
windows (7 days for M-sampled, 1 day for B-multi-year, per § III-B),
extracts features per window, and — given a curated labeled set — trains
a pipeline and classifies every window.  All longitudinal results
(Figs 5-8 and 11-15) are computed from the resulting
:class:`WindowedAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.generate import GeneratedDataset
from repro.groundtruth.labeling import build_labeled_set
from repro.sensor.collection import ObservationWindow
from repro.sensor.curation import LabeledSet
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.features import FeatureSet
from repro.sensor.selection import rank_by_footprint

__all__ = ["AnalysisWindow", "WindowedAnalysis", "slice_windows", "analyze_dataset"]

SECONDS_PER_DAY = 86400.0


@dataclass(slots=True)
class AnalysisWindow:
    """One observation interval with everything derived from it."""

    index: int
    start_day: float
    end_day: float
    observations: ObservationWindow
    features: FeatureSet
    classification: dict[int, str] = field(default_factory=dict)

    @property
    def mid_day(self) -> float:
        return (self.start_day + self.end_day) / 2.0

    def originators(self) -> set[int]:
        return {int(o) for o in self.features.originators}


@dataclass(slots=True)
class WindowedAnalysis:
    """All windows of one dataset, plus the labeled set used to classify."""

    dataset: GeneratedDataset
    window_days: float
    windows: list[AnalysisWindow]
    labeled: LabeledSet | None = None

    def window_containing(self, day: float) -> AnalysisWindow | None:
        for window in self.windows:
            if window.start_day <= day < window.end_day:
                return window
        return None

    def feature_series(self) -> list[tuple[float, FeatureSet]]:
        return [(w.mid_day, w.features) for w in self.windows]


def slice_windows(
    dataset: GeneratedDataset,
    window_days: float,
    min_queriers: int = 20,
) -> list[AnalysisWindow]:
    """Cut the sensor log into consecutive windows with features.

    One staged :class:`~repro.sensor.engine.SensorEngine` pass: the
    engine emits the windows (single canonical dedup/windowing path) and
    featurizes each; this module only re-frames them in days.
    """
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    engine = SensorEngine(
        dataset.directory(),
        SensorConfig(
            window_seconds=window_days * SECONDS_PER_DAY,
            min_queriers=min_queriers,
        ),
    )
    sensed = engine.process(
        dataset.sensor.log.block(),
        0.0,
        dataset.spec.duration_days * SECONDS_PER_DAY,
        classify=False,
    )
    return [
        AnalysisWindow(
            index=index,
            start_day=result.window.start / SECONDS_PER_DAY,
            end_day=result.window.end / SECONDS_PER_DAY,
            observations=result.window,
            features=result.features,
        )
        for index, result in enumerate(sensed)
    ]


def curate_from_window(
    dataset: GeneratedDataset,
    window: AnalysisWindow,
    per_class_cap: int = 140,
    top_k: int = 10_000,
    min_queriers: int = 20,
) -> LabeledSet:
    """§ IV-B curation against one window's top originators."""
    ranked = rank_by_footprint(
        [
            o
            for o in window.observations.observations.values()
            if o.footprint >= min_queriers
        ]
    )[:top_k]
    return build_labeled_set(
        dataset.sources(),
        [o.originator for o in ranked],
        per_class_cap=per_class_cap,
        curated_day=window.mid_day,
    )


def analyze_dataset(
    dataset: GeneratedDataset,
    window_days: float = 7.0,
    min_queriers: int = 20,
    curation_windows: tuple[int, ...] = (0,),
    per_class_cap: int = 140,
    classify: bool = True,
    majority_runs: int = 3,
) -> WindowedAnalysis:
    """Slice, curate (merging curations from the given windows), classify.

    The paper's M-sampled labeled set merges three curations about a
    month apart (§ III-E); pass the corresponding window indices.
    """
    windows = slice_windows(dataset, window_days, min_queriers)
    if not windows:
        raise ValueError("dataset produced no windows")
    labeled = LabeledSet()
    for index in curation_windows:
        if not 0 <= index < len(windows):
            raise ValueError(f"curation window {index} out of range")
        labeled = labeled.merged_with(
            curate_from_window(
                dataset, windows[index], per_class_cap, min_queriers=min_queriers
            )
        )
    analysis = WindowedAnalysis(
        dataset=dataset, window_days=window_days, windows=windows, labeled=labeled
    )
    if classify and len(labeled):
        engine = SensorEngine(
            dataset.directory(),
            SensorConfig(
                window_seconds=window_days * SECONDS_PER_DAY,
                min_queriers=min_queriers,
                majority_runs=majority_runs,
                seed=dataset.spec.seed + 99,
            ),
        )
        for window in windows:
            present = labeled.restrict_to(window.originators())
            if len(present) < 8 or len(present.classes_present()) < 2:
                continue
            engine.fit(window.features, present)
            window.classification = engine.classify_map(window.features)
    return analysis
