"""Windowed analysis of long datasets (the M-sampled / B-multi-year flow).

Slices a generated dataset's sensor log into consecutive observation
windows (7 days for M-sampled, 1 day for B-multi-year, per § III-B),
extracts features per window, and — given a curated labeled set — trains
a pipeline and classifies every window.  All longitudinal results
(Figs 5-8 and 11-15) are computed from the resulting
:class:`WindowedAnalysis`.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass, field

from repro.datasets.generate import GeneratedDataset
from repro.groundtruth.labeling import build_labeled_set
from repro.sensor.collection import ObservationWindow, collect_window
from repro.sensor.curation import LabeledSet
from repro.sensor.features import FeatureSet, extract_features
from repro.sensor.pipeline import BackscatterPipeline
from repro.sensor.selection import rank_by_footprint

__all__ = ["AnalysisWindow", "WindowedAnalysis", "slice_windows", "analyze_dataset"]

SECONDS_PER_DAY = 86400.0


@dataclass(slots=True)
class AnalysisWindow:
    """One observation interval with everything derived from it."""

    index: int
    start_day: float
    end_day: float
    observations: ObservationWindow
    features: FeatureSet
    classification: dict[int, str] = field(default_factory=dict)

    @property
    def mid_day(self) -> float:
        return (self.start_day + self.end_day) / 2.0

    def originators(self) -> set[int]:
        return {int(o) for o in self.features.originators}


@dataclass(slots=True)
class WindowedAnalysis:
    """All windows of one dataset, plus the labeled set used to classify."""

    dataset: GeneratedDataset
    window_days: float
    windows: list[AnalysisWindow]
    labeled: LabeledSet | None = None

    def window_containing(self, day: float) -> AnalysisWindow | None:
        for window in self.windows:
            if window.start_day <= day < window.end_day:
                return window
        return None

    def feature_series(self) -> list[tuple[float, FeatureSet]]:
        return [(w.mid_day, w.features) for w in self.windows]


def slice_windows(
    dataset: GeneratedDataset,
    window_days: float,
    min_queriers: int = 20,
) -> list[AnalysisWindow]:
    """Cut the sensor log into consecutive windows with features."""
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    directory = dataset.directory()
    entries = list(dataset.sensor.log)
    # Authority logs are appended in time order; bisect window boundaries
    # instead of rescanning the whole log for every window.
    timestamps = [entry.timestamp for entry in entries]
    total_days = dataset.spec.duration_days
    windows: list[AnalysisWindow] = []
    index = 0
    day = 0.0
    while day < total_days:
        end_day = min(day + window_days, total_days)
        lo = bisect.bisect_left(timestamps, day * SECONDS_PER_DAY)
        hi = bisect.bisect_left(timestamps, end_day * SECONDS_PER_DAY)
        observations = collect_window(
            entries[lo:hi], day * SECONDS_PER_DAY, end_day * SECONDS_PER_DAY
        )
        features = extract_features(observations, directory, min_queriers)
        windows.append(
            AnalysisWindow(
                index=index,
                start_day=day,
                end_day=end_day,
                observations=observations,
                features=features,
            )
        )
        index += 1
        day = end_day
    return windows


def curate_from_window(
    dataset: GeneratedDataset,
    window: AnalysisWindow,
    per_class_cap: int = 140,
    top_k: int = 10_000,
    min_queriers: int = 20,
) -> LabeledSet:
    """§ IV-B curation against one window's top originators."""
    ranked = rank_by_footprint(
        [
            o
            for o in window.observations.observations.values()
            if o.footprint >= min_queriers
        ]
    )[:top_k]
    return build_labeled_set(
        dataset.sources(),
        [o.originator for o in ranked],
        per_class_cap=per_class_cap,
        curated_day=window.mid_day,
    )


def analyze_dataset(
    dataset: GeneratedDataset,
    window_days: float = 7.0,
    min_queriers: int = 20,
    curation_windows: tuple[int, ...] = (0,),
    per_class_cap: int = 140,
    classify: bool = True,
    majority_runs: int = 3,
) -> WindowedAnalysis:
    """Slice, curate (merging curations from the given windows), classify.

    The paper's M-sampled labeled set merges three curations about a
    month apart (§ III-E); pass the corresponding window indices.
    """
    windows = slice_windows(dataset, window_days, min_queriers)
    if not windows:
        raise ValueError("dataset produced no windows")
    labeled = LabeledSet()
    for index in curation_windows:
        if not 0 <= index < len(windows):
            raise ValueError(f"curation window {index} out of range")
        labeled = labeled.merged_with(
            curate_from_window(
                dataset, windows[index], per_class_cap, min_queriers=min_queriers
            )
        )
    analysis = WindowedAnalysis(
        dataset=dataset, window_days=window_days, windows=windows, labeled=labeled
    )
    if classify and len(labeled):
        pipeline = BackscatterPipeline(
            dataset.directory(),
            majority_runs=majority_runs,
            min_queriers=min_queriers,
            seed=dataset.spec.seed + 99,
        )
        for window in windows:
            present = labeled.restrict_to(window.originators())
            if len(present) < 8 or len(present.classes_present()) < 2:
                continue
            pipeline.fit(window.features, present)
            window.classification = pipeline.classify_map(window.features)
    return analysis
