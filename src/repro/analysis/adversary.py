"""Adversarial countermeasures against the sensor (§ III-F).

The paper notes two evasions an adversarial originator can attempt:

* **spreading** — split the same total activity over many originator
  IPs so each falls below the analyzability threshold ("Spreading
  traffic from an activity across many separate originating IP
  addresses ... reduces the signal.  We cannot prevent this
  countermeasure, but it greatly increases the effort required");
* **QNAME minimization at queriers** (§ VII) — not under the
  originator's control, but it erodes the signal upstream of the
  final authority; modeled in
  :class:`repro.dnssim.resolver.ResolverConfig`.

This module quantifies both against a national-level sensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.base import build_campaign
from repro.activity.engine import SimulationEngine
from repro.dnssim.authority import Authority, AuthorityLevel
from repro.dnssim.hierarchy import DnsHierarchy
from repro.dnssim.resolver import ResolverConfig
from repro.netmodel.world import World
from repro.sensor.engine import SensorEngine

__all__ = ["EvasionTrial", "spreading_experiment", "QminTrial", "qmin_experiment"]

SECONDS_PER_DAY = 86400.0

_SENSOR_CONFIG = ResolverConfig(national_warm_shared=0.85, national_warm_self=0.60)


def _national_sim(
    world: World, seed: int, country: str, resolver_config: ResolverConfig
) -> tuple[DnsHierarchy, Authority]:
    hierarchy = DnsHierarchy(world, seed=seed, resolver_config=resolver_config)
    sensor = hierarchy.attach_national(
        Authority(
            name=f"{country}-dns",
            level=AuthorityLevel.NATIONAL,
            country=country,
            scope_slash8=frozenset(world.geo.blocks_of(country)),
        )
    )
    return hierarchy, sensor


@dataclass(frozen=True, slots=True)
class EvasionTrial:
    """One spreading configuration's outcome at the sensor."""

    n_originators: int
    audience_per_originator: int
    detected: int
    """Originators that remained analyzable (>= threshold queriers)."""
    largest_footprint: int

    @property
    def detected_fraction(self) -> float:
        return self.detected / self.n_originators


def spreading_experiment(
    world: World,
    splits: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    total_audience: int = 480,
    app_class: str = "spam",
    country: str = "jp",
    duration_days: float = 2.0,
    threshold: int = 20,
    seed: int = 0,
) -> list[EvasionTrial]:
    """Split one activity across k originators and re-measure detection.

    Total activity (audience touched) is held constant; only the number
    of originating addresses varies, per § III-F's countermeasure.
    """
    trials: list[EvasionTrial] = []
    for index, k in enumerate(splits):
        rng = np.random.default_rng(seed + index * 31)
        hierarchy, sensor = _national_sim(world, seed + index, country, _SENSOR_CONFIG)
        engine = SimulationEngine(world, hierarchy)
        per_originator = max(1, total_audience // k)
        originators = []
        for _ in range(k):
            campaign = build_campaign(
                world,
                app_class,
                rng,
                start=0.0,
                duration_days=duration_days,
                audience_size=per_originator,
                home_country=country,
            )
            engine.add(campaign)
            originators.append(campaign.originator)
        engine.run(0.0, duration_days * SECONDS_PER_DAY)
        window = SensorEngine().collect(
            sensor.log, 0.0, duration_days * SECONDS_PER_DAY
        )
        footprints = [
            window.observations[o].footprint if o in window.observations else 0
            for o in originators
        ]
        trials.append(
            EvasionTrial(
                n_originators=k,
                audience_per_originator=per_originator,
                detected=sum(1 for f in footprints if f >= threshold),
                largest_footprint=max(footprints, default=0),
            )
        )
    return trials


@dataclass(frozen=True, slots=True)
class QminTrial:
    """Sensor signal at one QNAME-minimization deployment level."""

    qmin_fraction: float
    attributable_queries: int
    minimized_queries: int
    analyzable_originators: int

    @property
    def signal_fraction(self) -> float:
        total = self.attributable_queries + self.minimized_queries
        return self.attributable_queries / total if total else 0.0


def qmin_experiment(
    world: World,
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.95),
    n_campaigns: int = 8,
    app_class: str = "spam",
    country: str = "jp",
    duration_days: float = 2.0,
    threshold: int = 20,
    seed: int = 0,
) -> list[QminTrial]:
    """Sweep QNAME-minimization deployment and measure the sensor's loss.

    The same campaign workload is replayed against hierarchies whose
    resolvers minimize with increasing probability; above-the-final-
    authority sensors lose exactly the minimized share of their signal.
    """
    trials: list[QminTrial] = []
    for index, fraction in enumerate(fractions):
        rng = np.random.default_rng(seed + 97)
        config = ResolverConfig(
            national_warm_shared=_SENSOR_CONFIG.national_warm_shared,
            national_warm_self=_SENSOR_CONFIG.national_warm_self,
            qname_minimization_fraction=fraction,
        )
        hierarchy, sensor = _national_sim(world, seed + 7, country, config)
        engine = SimulationEngine(world, hierarchy)
        for _ in range(n_campaigns):
            engine.add(
                build_campaign(
                    world,
                    app_class,
                    rng,
                    start=0.0,
                    duration_days=duration_days,
                    home_country=country,
                )
            )
        engine.run(0.0, duration_days * SECONDS_PER_DAY)
        window = SensorEngine().collect(
            sensor.log, 0.0, duration_days * SECONDS_PER_DAY
        )
        analyzable = sum(
            1 for o in window.observations.values() if o.footprint >= threshold
        )
        trials.append(
            QminTrial(
                qmin_fraction=fraction,
                attributable_queries=sensor.seen_reverse,
                minimized_queries=sensor.seen_minimized,
                analyzable_originators=analyzable,
            )
        )
    return trials
