"""Result analyses: footprints, trends, teams, consistency, caching."""

from repro.analysis.alerts import Alert, SurgeDetector, detect_surges
from repro.analysis.adversary import (
    EvasionTrial,
    QminTrial,
    qmin_experiment,
    spreading_experiment,
)
from repro.analysis.retired import (
    RetiredService,
    RetirementStudy,
    retirement_experiment,
)
from repro.analysis.consistency import (
    ConsistencyRecord,
    consistency_ratios,
    majority_fraction,
    ratio_cdf,
)
from repro.analysis.coordination import (
    TeamCoactivity,
    coactivity_baseline,
    team_coactivity,
)
from repro.analysis.drift import DriftPoint, DriftSeries, feature_drift
from repro.analysis.controlled import (
    ControlledTrial,
    fit_power_law,
    run_experiment,
    run_trial,
)
from repro.analysis.footprint import (
    TopNClassMix,
    ccdf,
    class_counts,
    class_mix_of_top,
    footprint_sizes,
)
from repro.analysis.longitudinal import (
    AnalysisWindow,
    WindowedAnalysis,
    analyze_dataset,
    curate_from_window,
    slice_windows,
)
from repro.analysis.teams import TeamSummary, block_scan_series, find_teams
from repro.analysis.trends import (
    ChurnPoint,
    FootprintBox,
    churn_series,
    class_count_series,
    footprint_boxes,
    originator_series,
    reappearance_series,
)

__all__ = [
    "Alert",
    "SurgeDetector",
    "detect_surges",
    "RetiredService",
    "RetirementStudy",
    "retirement_experiment",
    "EvasionTrial",
    "QminTrial",
    "qmin_experiment",
    "spreading_experiment",
    "ConsistencyRecord",
    "consistency_ratios",
    "majority_fraction",
    "ratio_cdf",
    "TeamCoactivity",
    "coactivity_baseline",
    "team_coactivity",
    "DriftPoint",
    "DriftSeries",
    "feature_drift",
    "ControlledTrial",
    "fit_power_law",
    "run_experiment",
    "run_trial",
    "TopNClassMix",
    "ccdf",
    "class_counts",
    "class_mix_of_top",
    "footprint_sizes",
    "AnalysisWindow",
    "WindowedAnalysis",
    "analyze_dataset",
    "curate_from_window",
    "slice_windows",
    "TeamSummary",
    "block_scan_series",
    "find_teams",
    "ChurnPoint",
    "FootprintBox",
    "churn_series",
    "class_count_series",
    "footprint_boxes",
    "originator_series",
    "reappearance_series",
]
