"""Coordinated-scanner team detection (§ VI-B, Fig 14).

The paper's "very simple model": a team is multiple originators in the
same /24 block.  From classifications it reports how many /24s host
scanning, how many host 4+ scanners, and how many of those are
single-class (the likely genuine teams).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.longitudinal import WindowedAnalysis
from repro.netmodel.addressing import slash24

__all__ = ["TeamSummary", "find_teams", "block_scan_series"]


@dataclass(frozen=True, slots=True)
class TeamSummary:
    """§ VI-B's team statistics over a whole analysis."""

    scan_originators: int
    scan_blocks: int
    blocks_with_4plus: int
    single_class_teams: int
    multi_class_blocks: int
    best_block_purity: float
    """Highest scan-member share among the 4+ blocks (1.0 = pure team)."""


def find_teams(
    analysis: WindowedAnalysis, team_size: int = 4, team_class: str = "scan"
) -> tuple[TeamSummary, dict[int, set[int]]]:
    """Aggregate (block → member IPs) over all windows and summarize.

    Each originator is assigned its *majority* class across the windows
    it was classified in (the paper votes weekly classifications per
    originator, § V-E) — without this, one week of misclassification
    would mark an otherwise pure team block as multi-class.  Returns the
    summary plus the /24 → member map for blocks that reach *team_size*
    members of *team_class*.
    """
    from collections import Counter

    votes: dict[int, Counter[str]] = defaultdict(Counter)
    for window in analysis.windows:
        for originator, app_class in window.classification.items():
            votes[originator][app_class] += 1
    majority = {
        originator: counts.most_common(1)[0][0] for originator, counts in votes.items()
    }
    class_members: dict[int, set[int]] = defaultdict(set)   # block -> scan IPs
    block_classes: dict[int, set[str]] = defaultdict(set)   # block -> classes seen
    for originator, app_class in majority.items():
        block = slash24(originator)
        block_classes[block].add(app_class)
        if app_class == team_class:
            class_members[block].add(originator)
    scan_blocks = {b: ips for b, ips in class_members.items() if ips}
    big = {b: ips for b, ips in scan_blocks.items() if len(ips) >= team_size}
    single_class = {
        b: ips for b, ips in big.items() if block_classes[b] == {team_class}
    }
    block_population: dict[int, int] = defaultdict(int)
    for originator in majority:
        block_population[slash24(originator)] += 1
    purities = [
        len(ips) / block_population[b] for b, ips in big.items() if block_population[b]
    ]
    summary = TeamSummary(
        scan_originators=sum(len(ips) for ips in scan_blocks.values()),
        scan_blocks=len(scan_blocks),
        blocks_with_4plus=len(big),
        single_class_teams=len(single_class),
        multi_class_blocks=len(big) - len(single_class),
        best_block_purity=max(purities, default=0.0),
    )
    return summary, big


def block_scan_series(
    analysis: WindowedAnalysis, blocks: list[int], team_class: str = "scan"
) -> dict[int, list[tuple[float, int]]]:
    """Fig 14: per /24 block, (day, #addresses scanning) over time."""
    series: dict[int, list[tuple[float, int]]] = {b: [] for b in blocks}
    for window in analysis.windows:
        per_block: dict[int, int] = defaultdict(int)
        for originator, app_class in window.classification.items():
            if app_class == team_class:
                per_block[slash24(originator)] += 1
        for block in blocks:
            count = per_block.get(block, 0)
            if count:
                series[block].append((window.mid_day, count))
    return series
