"""Feature drift of labeled examples over time (§ V-B's mechanism).

Figure 7's train-once degradation has a cause the paper states directly:
"Even though there are a fair number of examples, the feature vectors
those examples exhibit change quickly — we must retrain on new feature
values to capture this shift."  This module measures that shift: for
each labeled example, the distance between its feature vector in window
t and its curation-window vector, aggregated per class group.

Distances are Euclidean over standardized features (each feature scaled
by its population standard deviation across all windows), so fractions
and rates contribute comparably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.classes import BENIGN_CLASSES, MALICIOUS_CLASSES
from repro.analysis.longitudinal import WindowedAnalysis
from repro.sensor.curation import LabeledSet

__all__ = ["DriftPoint", "DriftSeries", "feature_drift"]


@dataclass(frozen=True, slots=True)
class DriftPoint:
    """Mean standardized feature distance from curation at one window."""

    day: float
    mean_distance: float
    examples: int


@dataclass(slots=True)
class DriftSeries:
    benign: list[DriftPoint]
    malicious: list[DriftPoint]
    curation_day: float

    @staticmethod
    def _slope(points: list[DriftPoint]) -> float:
        usable = [p for p in points if p.examples > 0]
        if len(usable) < 3:
            return float("nan")
        x = np.array([p.day for p in usable])
        y = np.array([p.mean_distance for p in usable])
        return float(np.polyfit(x, y, 1)[0])

    def benign_slope(self) -> float:
        return self._slope(self.benign)

    def malicious_slope(self) -> float:
        return self._slope(self.malicious)


def _group_of(app_class: str) -> str:
    if app_class in MALICIOUS_CLASSES:
        return "malicious"
    if app_class in BENIGN_CLASSES:
        return "benign"
    return "other"


def feature_drift(
    analysis: WindowedAnalysis,
    labeled: LabeledSet,
    curation_day: float | None = None,
) -> DriftSeries:
    """Per-window mean feature distance from curation, by class group.

    Examples only contribute to windows where they are analyzable; the
    reference vector is the example's own vector in the window containing
    the curation day (examples absent there are skipped).
    """
    if curation_day is None:
        days = [example.curated_day for example in labeled]
        if not days:
            raise ValueError("labeled set is empty")
        curation_day = float(np.median(days))
    reference_window = analysis.window_containing(curation_day)
    if reference_window is None:
        raise ValueError(f"no window contains curation day {curation_day}")

    # Population scale per feature, over every analyzable originator.
    stacks = [w.features.matrix for w in analysis.windows if len(w.features)]
    if not stacks:
        raise ValueError("analysis has no feature vectors")
    population = np.vstack(stacks)
    scale = population.std(axis=0)
    scale[scale == 0] = 1.0

    references: dict[int, np.ndarray] = {}
    for example in labeled:
        row = reference_window.features.row_of(example.originator)
        if row is not None:
            references[example.originator] = row / scale

    series: dict[str, list[DriftPoint]] = {"benign": [], "malicious": []}
    for window in analysis.windows:
        distances: dict[str, list[float]] = {"benign": [], "malicious": []}
        for example in labeled:
            reference = references.get(example.originator)
            if reference is None:
                continue
            group = _group_of(example.app_class)
            if group == "other":
                continue
            row = window.features.row_of(example.originator)
            if row is None:
                continue
            distances[group].append(
                float(np.linalg.norm(row / scale - reference))
            )
        for group in ("benign", "malicious"):
            values = distances[group]
            series[group].append(
                DriftPoint(
                    day=window.mid_day,
                    mean_distance=float(np.mean(values)) if values else float("nan"),
                    examples=len(values),
                )
            )
    return DriftSeries(
        benign=series["benign"],
        malicious=series["malicious"],
        curation_day=curation_day,
    )
