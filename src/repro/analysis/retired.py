"""Retired-service detection (§ VI-B's "new and old observations").

The paper finds originators that are *retired* services — four old root
DNS server addresses, two decommissioned cloud mail servers, one prior
NTP server — still drawing traffic from overly-sticky clients years
later, and suggests backscatter "can be used to systematically identify
overly-sticky, outdated clients across many services".

We model a service that retires at a known day: its client population
stops being refreshed and decays exponentially (clients only leave when
someone fixes a config), while each remaining client keeps touching the
dead address and triggering reverse lookups.  The sensor keeps seeing
the originator for months — with a monotonically shrinking footprint,
which is precisely the detection signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.base import build_campaign
from repro.activity.engine import SimulationEngine
from repro.dnssim.authority import Authority, AuthorityLevel
from repro.dnssim.hierarchy import DnsHierarchy
from repro.dnssim.resolver import ResolverConfig
from repro.netmodel.world import World
from repro.sensor.engine import SensorConfig, SensorEngine

__all__ = ["RetiredService", "RetirementStudy", "retirement_experiment"]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True, slots=True)
class RetiredService:
    """One retired service and its weekly footprint at the sensor."""

    originator: int
    app_class: str
    retired_day: float
    weekly_footprints: tuple[int, ...]

    def weeks_visible_after_retirement(self, threshold: int = 10) -> int:
        retired_week = int(self.retired_day // 7)
        return sum(
            1
            for week, footprint in enumerate(self.weekly_footprints)
            if week >= retired_week and footprint >= threshold
        )

    def decays_after_retirement(self) -> bool:
        """Footprint trend after retirement is downward (robust slope)."""
        retired_week = int(self.retired_day // 7)
        tail = self.weekly_footprints[retired_week:]
        if len(tail) < 3:
            return False
        x = np.arange(len(tail), dtype=float)
        slope = np.polyfit(x, np.array(tail, dtype=float), 1)[0]
        return slope < 0


@dataclass(slots=True)
class RetirementStudy:
    services: list[RetiredService]
    duration_days: float


def retirement_experiment(
    world: World,
    n_services: int = 3,
    duration_days: float = 84.0,
    retired_day: float = 21.0,
    initial_audience: int = 400,
    decay_halflife_days: float = 28.0,
    country: str = "jp",
    seed: int = 0,
) -> RetirementStudy:
    """Simulate services retiring mid-observation and track their decay.

    Each service runs at full audience until *retired_day*; afterwards
    weekly campaigns reuse the same originator with an audience halved
    every *decay_halflife_days* (sticky clients dropping off as they are
    noticed and fixed).
    """
    rng = np.random.default_rng(seed)
    hierarchy = DnsHierarchy(
        world,
        seed=seed + 1,
        resolver_config=ResolverConfig(
            national_warm_shared=0.85, national_warm_self=0.60
        ),
    )
    sensor = hierarchy.attach_national(
        Authority(
            name=f"{country}-dns",
            level=AuthorityLevel.NATIONAL,
            country=country,
            scope_slash8=frozenset(world.geo.blocks_of(country)),
        )
    )
    engine = SimulationEngine(world, hierarchy)
    services: list[tuple[int, str]] = []
    for index in range(n_services):
        app_class = ("dns", "ntp", "mail")[index % 3]
        originator: int | None = None
        week = 0
        while week * 7 < duration_days:
            week_start_day = week * 7.0
            if week_start_day < retired_day:
                audience = initial_audience
            else:
                age = week_start_day - retired_day
                audience = int(initial_audience * 0.5 ** (age / decay_halflife_days))
            if audience >= 5:
                campaign = build_campaign(
                    world,
                    app_class,
                    rng,
                    start=week_start_day * SECONDS_PER_DAY,
                    duration_days=7.0,
                    audience_size=max(20, audience),
                    home_country=country,
                    originator=originator,
                )
                originator = campaign.originator
                engine.add(campaign)
            week += 1
        if originator is not None:
            services.append((originator, app_class))
    engine.run(0.0, duration_days * SECONDS_PER_DAY)
    results: list[RetiredService] = []
    n_weeks = int(np.ceil(duration_days / 7.0))
    # One staged pass: weekly windows over the whole log (per-pair dedup
    # is independent across originators, so this matches the old
    # per-originator slicing exactly — in a single traversal).
    weekly = SensorEngine(
        config=SensorConfig(window_seconds=7 * SECONDS_PER_DAY)
    ).windows(sensor.log, 0.0, n_weeks * 7 * SECONDS_PER_DAY)
    for originator, app_class in services:
        footprints = []
        for window in weekly:
            observation = window.observations.get(originator)
            footprints.append(observation.footprint if observation else 0)
        results.append(
            RetiredService(
                originator=originator,
                app_class=app_class,
                retired_day=retired_day,
                weekly_footprints=tuple(footprints),
            )
        )
    return RetirementStudy(services=results, duration_days=duration_days)
