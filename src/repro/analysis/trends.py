"""Longitudinal trend analyses (§ V-A, § VI-C).

Built on :class:`~repro.analysis.longitudinal.WindowedAnalysis`:

* per-window class counts (Fig 11, including the Heartbleed bump);
* footprint distribution statistics over time (Fig 12's box plot);
* per-originator footprint series (Fig 13's example scanners);
* week-by-week churn: new / continuing / departing originators (Fig 15);
* labeled-example reappearance counts around a curation day (Figs 5/6).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.activity.classes import BENIGN_CLASSES, MALICIOUS_CLASSES
from repro.analysis.longitudinal import WindowedAnalysis
from repro.sensor.curation import LabeledSet

__all__ = [
    "class_count_series",
    "FootprintBox",
    "footprint_boxes",
    "originator_series",
    "ChurnPoint",
    "churn_series",
    "reappearance_series",
]


def class_count_series(
    analysis: WindowedAnalysis, classes: tuple[str, ...] | None = None
) -> list[tuple[float, dict[str, int], int]]:
    """Fig 11: per window, (mid-day, counts per class, total classified)."""
    series = []
    for window in analysis.windows:
        counts = Counter(window.classification.values())
        if classes is not None:
            counts = Counter({c: counts.get(c, 0) for c in classes})
        series.append((window.mid_day, dict(counts), sum(counts.values())))
    return series


@dataclass(frozen=True, slots=True)
class FootprintBox:
    """One box of Fig 12: footprint quantiles for one window."""

    day: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    count: int


def footprint_boxes(
    analysis: WindowedAnalysis, app_class: str = "scan", min_count: int = 3
) -> list[FootprintBox]:
    """Fig 12: distribution of queriers-per-originator for one class.

    Windows with fewer than *min_count* members are skipped — quantiles
    of one or two samples say nothing about the distribution.
    """
    boxes: list[FootprintBox] = []
    for window in analysis.windows:
        members = [
            o for o, c in window.classification.items() if c == app_class
        ]
        sizes = [
            window.observations.observations[m].footprint
            for m in members
            if m in window.observations.observations
        ]
        if len(sizes) < max(1, min_count):
            continue
        q = np.percentile(sizes, [10, 25, 50, 75, 90])
        boxes.append(
            FootprintBox(
                day=window.mid_day,
                p10=float(q[0]),
                p25=float(q[1]),
                median=float(q[2]),
                p75=float(q[3]),
                p90=float(q[4]),
                count=len(sizes),
            )
        )
    return boxes


def originator_series(
    analysis: WindowedAnalysis, originators: list[int]
) -> dict[int, list[tuple[float, int]]]:
    """Fig 13: per-originator (day, footprint) series across windows."""
    series: dict[int, list[tuple[float, int]]] = {o: [] for o in originators}
    for window in analysis.windows:
        for originator in originators:
            observation = window.observations.observations.get(originator)
            if observation is not None and observation.footprint > 0:
                series[originator].append((window.mid_day, observation.footprint))
    return series


@dataclass(frozen=True, slots=True)
class ChurnPoint:
    """Fig 15: one window's churn of a class's originators."""

    day: float
    new: int
    continuing: int
    departing: int

    @property
    def total(self) -> int:
        return self.new + self.continuing


def churn_series(analysis: WindowedAnalysis, app_class: str = "scan") -> list[ChurnPoint]:
    """Week-by-week new/continuing/departing originators of a class."""
    points: list[ChurnPoint] = []
    previous: set[int] = set()
    for index, window in enumerate(analysis.windows):
        members = {o for o, c in window.classification.items() if c == app_class}
        new = len(members - previous)
        continuing = len(members & previous)
        departing = len(previous - members)
        if index > 0 or members:
            points.append(
                ChurnPoint(
                    day=window.mid_day, new=new, continuing=continuing, departing=departing
                )
            )
        previous = members
    return points


def reappearance_series(
    analysis: WindowedAnalysis,
    labeled: LabeledSet,
    group: str = "benign",
) -> list[tuple[float, int]]:
    """Figs 5/6: how many curated examples are still active per window.

    ``group`` is ``"benign"``, ``"malicious"``, or a single class name.
    An example "re-appears" when its originator is analyzable in the
    window (≥ the querier threshold), i.e. its campaign is still running.
    """
    if group == "benign":
        wanted = BENIGN_CLASSES
    elif group == "malicious":
        wanted = MALICIOUS_CLASSES
    else:
        wanted = frozenset({group})
    targets = {
        example.originator
        for example in labeled
        if example.app_class in wanted
    }
    series: list[tuple[float, int]] = []
    for window in analysis.windows:
        present = targets & window.originators()
        series.append((window.mid_day, len(present)))
    return series
