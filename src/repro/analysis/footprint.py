"""Footprint analyses: size distributions and top-N class mixes (§ VI-A/B).

The *footprint* of an originator is its unique-querier count at the
sensor — a caching-attenuated proxy for how much of the Internet the
activity touched.  These helpers produce the paper's Fig 9 (heavy-tailed
footprint distribution), Fig 10 (class mix of the top-100/1000/10000),
and Table V (originators per class).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.sensor.collection import ObservationWindow
from repro.sensor.selection import rank_by_footprint

__all__ = [
    "footprint_sizes",
    "ccdf",
    "TopNClassMix",
    "class_mix_of_top",
    "class_counts",
]


def footprint_sizes(window: ObservationWindow, min_queriers: int = 1) -> np.ndarray:
    """All originator footprints in the window, descending."""
    sizes = np.array(
        sorted(
            (
                observation.footprint
                for observation in window.observations.values()
                if observation.footprint >= min_queriers
            ),
            reverse=True,
        ),
        dtype=np.int64,
    )
    return sizes


def ccdf(sizes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF points (x, P[footprint >= x]) — Fig 9's curves."""
    if len(sizes) == 0:
        return np.array([]), np.array([])
    ordered = np.sort(np.asarray(sizes))
    unique, first_index = np.unique(ordered, return_index=True)
    survival = 1.0 - first_index / len(ordered)
    return unique.astype(float), survival


@dataclass(frozen=True, slots=True)
class TopNClassMix:
    """Class fractions among the N largest-footprint originators."""

    n: int
    fractions: dict[str, float]
    counts: dict[str, int]

    def fraction(self, app_class: str) -> float:
        return self.fractions.get(app_class, 0.0)


def class_mix_of_top(
    window: ObservationWindow,
    classification: dict[int, str],
    n: int,
    min_queriers: int = 20,
) -> TopNClassMix:
    """Fig 10: the class mix of the top-N originators by footprint.

    Originators without a classification (not analyzable, or dropped by
    the pipeline) count into an ``other`` bucket, as the paper's figures
    do.
    """
    ranked = rank_by_footprint(
        [o for o in window.observations.values() if o.footprint >= min_queriers]
    )[:n]
    counts: Counter[str] = Counter()
    for observation in ranked:
        counts[classification.get(observation.originator, "other")] += 1
    total = sum(counts.values())
    fractions = {k: v / total for k, v in counts.items()} if total else {}
    return TopNClassMix(n=n, fractions=fractions, counts=dict(counts))


def class_counts(classification: dict[int, str]) -> dict[str, int]:
    """Table V: number of originators classified into each class."""
    return dict(Counter(classification.values()))
