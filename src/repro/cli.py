"""Command-line interface: generate datasets, classify logs, render figures.

Subcommands:

* ``repro generate <dataset> -o DIR`` — generate a Table I dataset and
  write its query log (text + framed binary), querier directory, and
  ground-truth labels to files;
* ``repro classify -l LOG -d DIR -t LABELS`` — run the sensor pipeline
  on a serialized log: collect, featurize, train on the labels, print
  classifications;
* ``repro figures -o DIR`` — render the implemented paper figures as SVG;
* ``repro experiments ...`` — forwarded to :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.netmodel.addressing import ip_to_str, str_to_ip

__all__ = ["main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import spec_for, generate_dataset, write_directory, write_log
    from repro.datasets.dnstap import write_frames

    spec = spec_for(args.dataset, args.preset)
    print(f"generating {spec.name} (preset={args.preset}) …", flush=True)
    dataset = generate_dataset(spec)
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    log_path = output / f"{spec.name}.log"
    frames_path = output / f"{spec.name}.rbsc"
    directory_path = output / f"{spec.name}.queriers.jsonl"
    labels_path = output / f"{spec.name}.labels.json"
    entries = list(dataset.sensor.log)
    write_log(log_path, entries)
    write_frames(frames_path, entries)
    world_directory = dataset.directory()
    write_directory(
        directory_path,
        (world_directory.lookup(q.addr) for q in dataset.world.queriers),
    )
    labels_path.write_text(
        json.dumps(
            {ip_to_str(o): c for o, c in sorted(dataset.true_classes().items())},
            indent=0,
        )
    )
    print(f"wrote {len(entries):,} entries to {log_path} (+ {frames_path.name})")
    print(f"wrote querier directory to {directory_path}")
    print(f"wrote ground-truth labels to {labels_path}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.datasets import read_directory, read_log
    from repro.sensor import LabeledSet, SensorConfig, SensorEngine

    entries = read_log(args.log)
    if not entries:
        print("log is empty", file=sys.stderr)
        return 1
    directory = read_directory(args.directory)
    start = entries[0].timestamp if args.start is None else args.start
    end = entries[-1].timestamp + 1.0 if args.end is None else args.end
    raw_labels = json.loads(Path(args.labels).read_text())
    labeled = LabeledSet.from_pairs(
        (str_to_ip(addr), app_class) for addr, app_class in raw_labels.items()
    )

    # Train the classify stage on the full span (one batch window).
    trainer = SensorEngine(
        directory,
        SensorConfig(
            window_seconds=end - start,
            origin=start,
            min_queriers=args.min_queriers,
            featurize_workers=args.workers,
        ),
    )
    window = trainer.collect(entries, start, end)
    features = trainer.featurize(window)
    print(f"{len(window)} originators observed, {len(features)} analyzable")
    present = labeled.restrict_to({int(o) for o in features.originators})
    if len(present) < 4:
        print("too few labeled originators appear in the log", file=sys.stderr)
        return 1
    trainer.fit(features, present)

    if args.stream:
        return _classify_stream(args, trainer, entries, start, end)

    verdicts = sorted(trainer.classify(features), key=lambda v: -v.footprint)
    print(f"{'originator':<16} {'queriers':>8}  class")
    for verdict in verdicts[: args.top]:
        print(f"{ip_to_str(verdict.originator):<16} {verdict.footprint:>8}  {verdict.app_class}")
    if args.stats:
        print()
        print(trainer.format_accounting())
    return 0


def _classify_stream(
    args: argparse.Namespace, trainer, entries, start: float, end: float
) -> int:
    """Replay the log through the streaming path, window by window."""
    from repro.sensor import SensorConfig, SensorEngine

    if args.window <= 0:
        print("--window must be positive", file=sys.stderr)
        return 1
    engine = SensorEngine(
        trainer.directory,
        SensorConfig(
            window_seconds=args.window,
            origin=start,
            min_queriers=args.min_queriers,
            featurize_workers=args.workers,
        ),
    )
    # Reuse the span-trained classify stage.
    engine.fit_from(trainer)

    def report(sensed) -> None:
        window = sensed.window
        verdicts = sorted(sensed.verdicts, key=lambda v: -v.footprint)
        print(
            f"window [{window.start:.0f}, {window.end:.0f}): "
            f"{len(window)} originators, {len(sensed.features)} analyzable"
        )
        for verdict in verdicts[: args.top]:
            print(
                f"  {ip_to_str(verdict.originator):<16} "
                f"{verdict.footprint:>8}  {verdict.app_class}"
            )

    chunk = max(1, args.chunk)
    for offset in range(0, len(entries), chunk):
        engine.ingest_many(entries[offset : offset + chunk])
        for sensed in engine.poll():
            report(sensed)
    for sensed in engine.finish():
        report(sensed)
    print()
    print(engine.format_accounting())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz import render_all

    written = render_all(args.output, preset=args.preset)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded = list(args.names)
    if args.list:
        forwarded.append("--list")
    if args.all_cheap:
        forwarded.append("--all-cheap")
    return experiments_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNS backscatter sensor (paper reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", help="dataset name, e.g. JP-ditl")
    generate.add_argument("-o", "--output", default="datasets", help="output directory")
    generate.add_argument("--preset", default="default", choices=("default", "tiny"))
    generate.set_defaults(func=_cmd_generate)

    classify = commands.add_parser("classify", help="classify a serialized log")
    classify.add_argument("-l", "--log", required=True, help="query log file")
    classify.add_argument("-d", "--directory", required=True, help="querier directory (jsonl)")
    classify.add_argument("-t", "--labels", required=True, help="labels json (ip -> class)")
    classify.add_argument("--start", type=float, default=None)
    classify.add_argument("--end", type=float, default=None)
    classify.add_argument("--min-queriers", type=int, default=20)
    classify.add_argument("--top", type=int, default=30, help="rows to print")
    classify.add_argument(
        "--stream",
        action="store_true",
        help="replay the log through the streaming engine and print "
        "per-window verdicts plus stage accounting",
    )
    classify.add_argument(
        "--window",
        type=float,
        default=86400.0,
        help="streaming window interval in seconds (with --stream)",
    )
    classify.add_argument(
        "--chunk",
        type=int,
        default=5000,
        help="entries fed to the engine per chunk (with --stream)",
    )
    classify.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage engine accounting after classifying",
    )
    classify.add_argument(
        "--workers",
        type=int,
        default=1,
        help="featurize worker processes (1 = serial; results are "
        "bit-identical either way)",
    )
    classify.set_defaults(func=_cmd_classify)

    figures = commands.add_parser("figures", help="render paper figures as SVG")
    figures.add_argument("-o", "--output", default="figures")
    figures.add_argument("--preset", default="default", choices=("default", "tiny"))
    figures.set_defaults(func=_cmd_figures)

    experiments = commands.add_parser("experiments", help="run experiment modules")
    experiments.add_argument("names", nargs="*", help="experiment names")
    experiments.add_argument("--list", action="store_true")
    experiments.add_argument("--all-cheap", action="store_true")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
