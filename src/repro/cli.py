"""Command-line interface: generate datasets, classify logs, render figures.

Subcommands:

* ``repro generate <dataset> -o DIR`` — generate a Table I dataset and
  write its query log (text + framed binary + columnar ``.npz`` block),
  querier directory, and ground-truth labels to files;
* ``repro classify -l LOG -d DIR -t LABELS`` — run the sensor pipeline
  on a serialized log: collect, featurize, train on the labels, print
  classifications;
* ``repro convert <LOG> -o OUT`` — re-serialize a query log between the
  text/framed formats and the columnar block layouts;
* ``repro figures -o DIR`` — render the implemented paper figures as SVG;
* ``repro experiments ...`` — forwarded to :mod:`repro.experiments`;
* ``repro serve -l LOG -d DIR -t LABELS`` — run the long-running
  detection service (:mod:`repro.service`): train on the labels, replay
  the log as a chunked live feed, then keep serving ``/verdicts`` /
  ``/alerts`` / ``/healthz`` / ``/metrics`` (and an optional raw feed
  socket, ``--feed-port``) until SIGTERM; ``--retrain daily`` turns on
  the online § V retraining loop with atomic model hot-swaps.

``classify`` and ``convert`` accept any log format by suffix — ``.npz``
/ ``.npy`` columnar blocks (:mod:`repro.logstore`), ``.rbsc`` framed
binary, anything else as the text format — and replay it through the
array-native ingest plane as one :class:`~repro.logstore.EntryBlock`.

The work-shaping flags are uniform across subcommands: ``--workers``
fans the featurize stage out over processes wherever featurization
happens, and ``--metrics-out PATH`` (with ``--metrics-format``)
installs a :class:`repro.telemetry.MetricsRegistry` over the run and
writes a snapshot when it finishes — Prometheus text or JSON lines.
``repro classify --stream --metrics-every N`` additionally snapshots
every N sensed windows, the live-deployment cadence.  ``repro classify
--sketch`` (with ``--sketch-width`` / ``--hll-precision``) runs the
constant-memory probabilistic pre-select stage in both batch and
``--stream`` modes.  ``repro classify --shards N`` federates the run
across N originator-partitioned shard engines
(:mod:`repro.federation`; output is bit-identical to a single engine),
and ``--vantage NAME=LOG`` (repeatable, batch-only) classifies extra
vantage logs with the same trained stage and prints verdicts fused
across vantages.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.netmodel.addressing import ip_to_str, str_to_ip
from repro.telemetry import (
    METRICS_FORMATS,
    MetricsRegistry,
    format_for_path,
    use_registry,
    write_metrics,
)

__all__ = ["main"]


# -- shared option groups -------------------------------------------------


def add_workers_option(parser: argparse.ArgumentParser) -> None:
    """The featurize fan-out knob, identical on every subcommand."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="featurize worker processes (1 = serial; results are "
        "bit-identical either way)",
    )


def add_sketch_options(parser: argparse.ArgumentParser) -> None:
    """The probabilistic pre-select knobs (``repro classify``)."""
    parser.add_argument(
        "--sketch",
        action="store_true",
        help="run the constant-memory sketch pre-select stage: gate "
        "originators on an approximate unique-querier estimate and "
        "materialize exact state for survivors only",
    )
    parser.add_argument(
        "--sketch-width",
        type=int,
        default=4096,
        metavar="W",
        help="count-min sketch width (columns per hash row)",
    )
    parser.add_argument(
        "--hll-precision",
        type=int,
        default=6,
        metavar="P",
        help="HyperLogLog precision p (2^p registers per originator)",
    )


def _sketch_overrides(args: argparse.Namespace) -> dict:
    """SensorConfig overrides implied by the sketch flags."""
    if not getattr(args, "sketch", False):
        return {}
    return {
        "sketch_enabled": True,
        "sketch_width": args.sketch_width,
        "hll_precision": args.hll_precision,
    }


def add_metrics_options(
    parser: argparse.ArgumentParser, streaming: bool = False
) -> None:
    """The telemetry-export knobs, identical on every subcommand."""
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect pipeline metrics and write a snapshot here",
    )
    parser.add_argument(
        "--metrics-format",
        choices=METRICS_FORMATS,
        default=None,
        help="snapshot format (default: inferred from the path suffix; "
        ".jsonl/.json/.ndjson mean jsonl, anything else prom)",
    )
    if streaming:
        parser.add_argument(
            "--metrics-every",
            type=int,
            default=0,
            metavar="N",
            help="with --stream: also write a snapshot every N sensed "
            "windows (0 = only at the end)",
        )


def _registry_for(args: argparse.Namespace) -> MetricsRegistry | None:
    return MetricsRegistry() if args.metrics_out else None


def _load_log(path: str | Path):
    """Load any supported log format as a columnar EntryBlock (by suffix)."""
    from repro.datasets import read_frames_block, read_log_block
    from repro.logstore import load_block

    suffix = Path(path).suffix.lower()
    if suffix in (".npz", ".npy"):
        return load_block(path)
    if suffix == ".rbsc":
        return read_frames_block(path)
    return read_log_block(path)


def _write_snapshot(args: argparse.Namespace, registry: MetricsRegistry | None) -> None:
    if registry is None or not args.metrics_out:
        return
    fmt = format_for_path(args.metrics_out, args.metrics_format)
    write_metrics(registry, args.metrics_out, fmt)
    print(f"wrote {fmt} metrics to {args.metrics_out}")


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import spec_for, generate_dataset, write_directory, write_log
    from repro.datasets.dnstap import write_frames
    from repro.logstore import save_block

    spec = spec_for(args.dataset, args.preset)
    print(f"generating {spec.name} (preset={args.preset}) …", flush=True)
    dataset = generate_dataset(spec)
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    log_path = output / f"{spec.name}.log"
    frames_path = output / f"{spec.name}.rbsc"
    block_path = output / f"{spec.name}.npz"
    directory_path = output / f"{spec.name}.queriers.jsonl"
    labels_path = output / f"{spec.name}.labels.json"
    entries = list(dataset.sensor.log)
    write_log(log_path, entries)
    write_frames(frames_path, entries)
    save_block(block_path, dataset.sensor.log.block())
    world_directory = dataset.directory()
    write_directory(
        directory_path,
        (world_directory.lookup(q.addr) for q in dataset.world.queriers),
    )
    labels_path.write_text(
        json.dumps(
            {ip_to_str(o): c for o, c in sorted(dataset.true_classes().items())},
            indent=0,
        )
    )
    print(
        f"wrote {len(entries):,} entries to {log_path} "
        f"(+ {frames_path.name}, {block_path.name})"
    )
    print(f"wrote querier directory to {directory_path}")
    print(f"wrote ground-truth labels to {labels_path}")
    return 0


def _parse_vantages(args: argparse.Namespace) -> list[tuple[str, str]] | None:
    """``--vantage NAME=LOG`` pairs, validated; None on error."""
    vantages: list[tuple[str, str]] = []
    for item in args.vantage or []:
        name, sep, path = item.partition("=")
        if not sep or not name or not path:
            print(
                f"--vantage expects NAME=LOG, got {item!r}", file=sys.stderr
            )
            return None
        vantages.append((name, path))
    return vantages


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.datasets import read_directory
    from repro.sensor import LabeledSet, SensorConfig, SensorEngine

    if args.shards < 1:
        print("--shards must be positive", file=sys.stderr)
        return 1
    vantages = _parse_vantages(args)
    if vantages is None:
        return 1
    if vantages and args.stream:
        print("--vantage fusion is batch-only (drop --stream)", file=sys.stderr)
        return 1
    entries = _load_log(args.log)
    if not entries:
        print("log is empty", file=sys.stderr)
        return 1
    directory = read_directory(args.directory)
    start = entries[0].timestamp if args.start is None else args.start
    end = entries[-1].timestamp + 1.0 if args.end is None else args.end
    raw_labels = json.loads(Path(args.labels).read_text())
    labeled = LabeledSet.from_pairs(
        (str_to_ip(addr), app_class) for addr, app_class in raw_labels.items()
    )
    registry = _registry_for(args)

    # Train the classify stage on the full span (one batch window).
    trainer = SensorEngine(
        directory,
        SensorConfig(
            window_seconds=end - start,
            origin=start,
            min_queriers=args.min_queriers,
            featurize_workers=args.workers,
            **_sketch_overrides(args),
        ),
        registry=registry,
    )
    window = trainer.collect(entries, start, end)
    features = trainer.featurize(window)
    # In sketch mode the window materializes gate survivors only; the
    # pre-stage still saw (and counts) every originator.
    observed = (
        len(window) if window.prestage is None else window.prestage.originators_seen
    )
    print(f"{observed} originators observed, {len(features)} analyzable")
    present = labeled.restrict_to({int(o) for o in features.originators})
    if len(present) < 4:
        print("too few labeled originators appear in the log", file=sys.stderr)
        return 1
    trainer.fit(features, present)

    if args.stream:
        return _classify_stream(args, trainer, registry, entries, start, end)

    stats_text = ""
    if args.shards > 1:
        # Federated batch run: same span, same trained classifier, rows
        # and verdicts bit-identical to the single engine's.
        from repro.federation import FederatedSensor

        with FederatedSensor(
            directory, trainer.config, n_shards=args.shards, registry=registry
        ) as federated:
            federated.fit_from(trainer)
            merged = federated.process(entries, start, end)[0]
            verdicts = sorted(merged.verdicts, key=lambda v: -v.footprint)
            if args.stats:
                stats_text = federated.format_accounting()
    else:
        verdicts = sorted(trainer.classify(features), key=lambda v: -v.footprint)
        if args.stats:
            stats_text = trainer.format_accounting()
    print(f"{'originator':<16} {'queriers':>8}  class")
    for verdict in verdicts[: args.top]:
        print(f"{ip_to_str(verdict.originator):<16} {verdict.footprint:>8}  {verdict.app_class}")
    if vantages:
        code = _classify_vantages(args, trainer, verdicts, vantages)
        if code != 0:
            return code
    if args.stats:
        print()
        print(stats_text)
    _write_snapshot(args, registry)
    return 0


def _classify_vantages(
    args: argparse.Namespace,
    trainer,
    primary_verdicts,
    vantages: list[tuple[str, str]],
) -> int:
    """Classify each extra vantage log and print the fused judgements.

    Each ``--vantage NAME=LOG`` is the same deployment's trained
    classifier applied to *that* vantage's (attenuated) view; fusion
    keys on ``(originator, vantage)`` per
    :func:`repro.federation.fusion.fuse_verdicts`.
    """
    from repro.federation import fuse_verdicts
    from repro.sensor import SensorEngine

    primary_name = Path(args.log).stem
    per_vantage = {primary_name: primary_verdicts}
    for name, path in vantages:
        if name in per_vantage:
            print(f"duplicate vantage name {name!r}", file=sys.stderr)
            return 1
        vantage_entries = _load_log(path)
        if not vantage_entries:
            print(f"vantage log {path} is empty", file=sys.stderr)
            return 1
        engine = SensorEngine(trainer.directory, trainer.config)
        engine.fit_from(trainer)
        start = trainer.config.origin
        end = start + trainer.config.window_seconds
        sensed = engine.process(vantage_entries, start, end)
        per_vantage[name] = [v for window in sensed for v in window.verdicts]
    fused = fuse_verdicts(per_vantage)
    print()
    print(f"fused across {len(per_vantage)} vantages:")
    print(f"{'originator':<16} {'queriers':>8}  class     vantages")
    for item in fused[: args.top]:
        detail = ", ".join(
            f"{name}={item.verdicts[name]}" for name in item.vantages
        )
        print(
            f"{ip_to_str(item.originator):<16} {item.footprint:>8}  "
            f"{item.app_class:<8}  {detail}"
        )
    return 0


def _classify_stream(
    args: argparse.Namespace,
    trainer,
    registry: MetricsRegistry | None,
    entries,
    start: float,
    end: float,
) -> int:
    """Replay the log through the streaming path, window by window."""
    from repro.sensor import SensorConfig, SensorEngine

    if args.window <= 0:
        print("--window must be positive", file=sys.stderr)
        return 1
    config = SensorConfig(
        window_seconds=args.window,
        origin=start,
        min_queriers=args.min_queriers,
        featurize_workers=args.workers,
        **_sketch_overrides(args),
    )
    if args.shards > 1:
        from repro.federation import FederatedSensor

        engine = FederatedSensor(
            trainer.directory, config, n_shards=args.shards, registry=registry
        )
    else:
        engine = SensorEngine(trainer.directory, config, registry=registry)
    # Reuse the span-trained classify stage.
    engine.fit_from(trainer)

    every = max(0, args.metrics_every)
    since_snapshot = 0

    def report(sensed) -> None:
        # Window-close hook (engine.on_window): fires with a
        # SensedWindow (single engine) or FederatedWindow (--shards).
        nonlocal since_snapshot
        window = getattr(sensed, "window", sensed)
        originators = (
            len(window) if hasattr(window, "__len__") else window.originators
        )
        verdicts = sorted(sensed.verdicts, key=lambda v: -v.footprint)
        print(
            f"window [{window.start:.0f}, {window.end:.0f}): "
            f"{originators} originators, {len(sensed.features)} analyzable"
        )
        for verdict in verdicts[: args.top]:
            print(
                f"  {ip_to_str(verdict.originator):<16} "
                f"{verdict.footprint:>8}  {verdict.app_class}"
            )
        since_snapshot += 1
        if registry is not None and every and since_snapshot >= every:
            _write_snapshot(args, registry)
            since_snapshot = 0

    unsubscribe = engine.on_window(report)
    chunk = max(1, args.chunk)
    try:
        for offset in range(0, len(entries), chunk):
            engine.ingest_block(entries[offset : offset + chunk])
            engine.poll()
        engine.finish()
    finally:
        unsubscribe()
        if hasattr(engine, "close"):
            engine.close()
    print()
    print(engine.format_accounting())
    _write_snapshot(args, registry)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on detection service over a replayed feed."""
    import asyncio
    import signal

    from repro.datasets import read_directory
    from repro.sensor import LabeledSet, SensorConfig, SensorEngine
    from repro.service import BackscatterService, ServiceConfig

    if args.window <= 0:
        print("--window must be positive", file=sys.stderr)
        return 1
    entries = _load_log(args.log)
    if not entries:
        print("log is empty", file=sys.stderr)
        return 1
    directory = read_directory(args.directory)
    start = entries[0].timestamp
    end = entries[-1].timestamp + 1.0
    raw_labels = json.loads(Path(args.labels).read_text())
    labeled = LabeledSet.from_pairs(
        (str_to_ip(addr), app_class) for addr, app_class in raw_labels.items()
    )
    registry = _registry_for(args)

    # Train the initial model on the full span, exactly like classify.
    trainer = SensorEngine(
        directory,
        SensorConfig(
            window_seconds=end - start,
            origin=start,
            min_queriers=args.min_queriers,
            featurize_workers=args.workers,
            **_sketch_overrides(args),
        ),
        registry=registry,
    )
    features = trainer.featurize(trainer.collect(entries, start, end))
    present = labeled.restrict_to({int(o) for o in features.originators})
    if len(present) < 4:
        print("too few labeled originators appear in the log", file=sys.stderr)
        return 1
    trainer.fit(features, present)

    config = ServiceConfig(
        sensor=SensorConfig(
            window_seconds=args.window,
            origin=start,
            min_queriers=args.min_queriers,
            featurize_workers=args.workers,
            **_sketch_overrides(args),
        ),
        host=args.host,
        port=args.port,
        feed_port=args.feed_port,
        shards=args.shards,
        retrain=None if args.retrain == "off" else args.retrain,
    )
    service = BackscatterService(directory, config, registry=registry)
    service.fit_from(trainer, labeled=present)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, service.request_shutdown)
        await service.start()
        host, port = service.http_address
        print(f"serving http on {host}:{port}", flush=True)
        if service.feed_address is not None:
            feed_host, feed_port = service.feed_address
            print(f"accepting {config.feed_format} feed on "
                  f"{feed_host}:{feed_port}", flush=True)
        chunk = max(1, args.chunk)
        for offset in range(0, len(entries), chunk):
            service.submit_block(entries[offset : offset + chunk])
        await service.drain()
        print(f"replayed {len(entries):,} events "
              f"({service.windows_total} windows closed)", flush=True)
        if args.once:
            service.request_shutdown()
        await service.wait_shutdown()
        await service.stop()

    asyncio.run(run())
    health = service.health()
    print(
        f"served {health['windows']} windows, {health['verdicts']} verdicts, "
        f"{health['alerts']} alerts, model v{health['model_version']}"
    )
    _write_snapshot(args, registry)
    return 0


#: Output formats ``repro convert`` can write, by suffix.
CONVERT_SUFFIXES: tuple[str, ...] = (".npz", ".npy", ".rbsc", ".log", ".txt")


def _cmd_convert(args: argparse.Namespace) -> int:
    """Re-serialize a query log into the format implied by the output suffix."""
    from repro.datasets import write_log
    from repro.datasets.dnstap import write_frames
    from repro.logstore import save_block

    out = Path(args.output)
    suffix = out.suffix.lower()
    if suffix not in CONVERT_SUFFIXES:
        # A typo like ``out.np`` must not silently fall through to the
        # text format.
        print(
            f"unsupported output suffix {out.suffix or out.name!r}; "
            f"supported: {', '.join(CONVERT_SUFFIXES)}",
            file=sys.stderr,
        )
        return 1
    if out.resolve() == Path(args.log).resolve():
        # ``.npy`` replay is a lazy mmap — writing over the input while
        # it is still being read would corrupt the source.
        print("output must not be the input file", file=sys.stderr)
        return 1
    block = _load_log(args.log)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    if suffix in (".npz", ".npy"):
        save_block(out, block)
    elif suffix == ".rbsc":
        write_frames(out, block)
    else:
        write_log(out, block)
    print(f"wrote {len(block):,} entries to {out}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz import render_all

    if args.workers > 1:
        os.environ["REPRO_FEATURIZE_WORKERS"] = str(args.workers)
    registry = _registry_for(args)
    with use_registry(registry):
        written = render_all(args.output, preset=args.preset)
    for path in written:
        print(f"wrote {path}")
    _write_snapshot(args, registry)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    # The experiment modules share in-process caches keyed by dataset,
    # not by knob, so the work-shaping flags travel as the environment
    # variables the harness already reads (REPRO_FEATURIZE_WORKERS,
    # REPRO_METRICS_OUT / REPRO_METRICS_FORMAT).
    if args.workers > 1:
        os.environ["REPRO_FEATURIZE_WORKERS"] = str(args.workers)
    if args.metrics_out:
        os.environ["REPRO_METRICS_OUT"] = args.metrics_out
        if args.metrics_format:
            os.environ["REPRO_METRICS_FORMAT"] = args.metrics_format
    forwarded = list(args.names)
    if args.list:
        forwarded.append("--list")
    if args.all_cheap:
        forwarded.append("--all-cheap")
    return experiments_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNS backscatter sensor (paper reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", help="dataset name, e.g. JP-ditl")
    generate.add_argument("-o", "--output", default="datasets", help="output directory")
    generate.add_argument("--preset", default="default", choices=("default", "tiny"))
    generate.set_defaults(func=_cmd_generate)

    classify = commands.add_parser("classify", help="classify a serialized log")
    classify.add_argument("-l", "--log", required=True, help="query log file")
    classify.add_argument("-d", "--directory", required=True, help="querier directory (jsonl)")
    classify.add_argument("-t", "--labels", required=True, help="labels json (ip -> class)")
    classify.add_argument("--start", type=float, default=None)
    classify.add_argument("--end", type=float, default=None)
    classify.add_argument("--min-queriers", type=int, default=20)
    classify.add_argument("--top", type=int, default=30, help="rows to print")
    classify.add_argument(
        "--stream",
        action="store_true",
        help="replay the log through the streaming engine and print "
        "per-window verdicts plus stage accounting",
    )
    classify.add_argument(
        "--window",
        type=float,
        default=86400.0,
        help="streaming window interval in seconds (with --stream)",
    )
    classify.add_argument(
        "--chunk",
        type=int,
        default=5000,
        help="entries fed to the engine per chunk (with --stream)",
    )
    classify.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage engine accounting after classifying",
    )
    classify.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="federate the run across N originator-partitioned shard "
        "engines (results are bit-identical to a single engine)",
    )
    classify.add_argument(
        "--vantage",
        action="append",
        metavar="NAME=LOG",
        default=None,
        help="additional vantage log to classify with the same trained "
        "stage; repeatable; prints verdicts fused across vantages "
        "(batch only)",
    )
    add_sketch_options(classify)
    add_workers_option(classify)
    add_metrics_options(classify, streaming=True)
    classify.set_defaults(func=_cmd_classify)

    convert = commands.add_parser(
        "convert", help="re-serialize a query log (format by output suffix)"
    )
    convert.add_argument("log", help="input log (.log / .rbsc / .npz / .npy)")
    convert.add_argument(
        "-o",
        "--output",
        required=True,
        help="output path; .npz/.npy write columnar blocks, .rbsc framed "
        "binary, .log/.txt the text format (other suffixes are an error)",
    )
    convert.set_defaults(func=_cmd_convert)

    figures = commands.add_parser("figures", help="render paper figures as SVG")
    figures.add_argument("-o", "--output", default="figures")
    figures.add_argument("--preset", default="default", choices=("default", "tiny"))
    add_workers_option(figures)
    add_metrics_options(figures)
    figures.set_defaults(func=_cmd_figures)

    serve = commands.add_parser(
        "serve", help="run the long-running detection service"
    )
    serve.add_argument("-l", "--log", required=True, help="query log to replay as the feed")
    serve.add_argument("-d", "--directory", required=True, help="querier directory (jsonl)")
    serve.add_argument("-t", "--labels", required=True, help="labels json (ip -> class)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8053, help="HTTP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--feed-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also accept a raw text/.rbsc feed on this port (0 = ephemeral)",
    )
    serve.add_argument(
        "--retrain",
        choices=("off", "once", "daily", "grow"),
        default="off",
        help="online retraining strategy applied between windows "
        "(daily = refit the curated labels on fresh features; grow = "
        "auto-grow from the engine's own verdicts, the paper's "
        "cautionary §V strategy)",
    )
    serve.add_argument("--min-queriers", type=int, default=20)
    serve.add_argument(
        "--window",
        type=float,
        default=86400.0,
        help="streaming window interval in seconds",
    )
    serve.add_argument(
        "--chunk",
        type=int,
        default=5000,
        help="entries submitted to the service per feed chunk",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="federate the engine across N shard workers",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit after the replayed feed drains instead of serving "
        "until SIGTERM (smoke tests)",
    )
    add_sketch_options(serve)
    add_workers_option(serve)
    add_metrics_options(serve)
    serve.set_defaults(func=_cmd_serve)

    experiments = commands.add_parser("experiments", help="run experiment modules")
    experiments.add_argument("names", nargs="*", help="experiment names")
    experiments.add_argument("--list", action="store_true")
    experiments.add_argument("--all-cheap", action="store_true")
    add_workers_option(experiments)
    add_metrics_options(experiments)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
