"""Labeled ground truth: the expert-curated example sets (§ III-E, § IV-B).

A :class:`LabeledSet` maps originator addresses to application classes,
stamped with the curation day.  The paper requires roughly 20 examples
per class and 200+ total before training is considered viable, customizes
the set per vantage point, and (for long observations) re-curates every
month or two; those policies live here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.activity.classes import APPLICATION_CLASSES

__all__ = ["LabeledExample", "LabeledSet", "MIN_EXAMPLES_PER_CLASS", "MIN_TOTAL_EXAMPLES"]

MIN_EXAMPLES_PER_CLASS = 20
MIN_TOTAL_EXAMPLES = 200


@dataclass(frozen=True, slots=True)
class LabeledExample:
    """One expert-confirmed (originator, class) pair."""

    originator: int
    app_class: str
    curated_day: float = 0.0

    def __post_init__(self) -> None:
        if self.app_class not in APPLICATION_CLASSES:
            raise ValueError(f"unknown application class {self.app_class!r}")


@dataclass(slots=True)
class LabeledSet:
    """A curated collection of labeled examples, one label per originator."""

    examples: dict[int, LabeledExample] = field(default_factory=dict)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, str]], curated_day: float = 0.0
    ) -> "LabeledSet":
        labeled = cls()
        for originator, app_class in pairs:
            labeled.add(LabeledExample(originator, app_class, curated_day))
        return labeled

    def add(self, example: LabeledExample) -> None:
        self.examples[example.originator] = example

    def remove(self, originator: int) -> None:
        self.examples.pop(originator, None)

    def label_of(self, originator: int) -> str | None:
        example = self.examples.get(originator)
        return example.app_class if example else None

    def originators(self) -> set[int]:
        return set(self.examples)

    def class_counts(self) -> Counter[str]:
        return Counter(e.app_class for e in self.examples.values())

    def classes_present(self) -> set[str]:
        return {e.app_class for e in self.examples.values()}

    def restrict_to(self, originators: set[int]) -> "LabeledSet":
        """The sub-set whose originators appear in *originators* (the
        "re-appearing labeled examples" of § V)."""
        subset = LabeledSet()
        for originator, example in self.examples.items():
            if originator in originators:
                subset.add(example)
        return subset

    def merged_with(self, other: "LabeledSet") -> "LabeledSet":
        """Union; on conflict the *other* (newer curation) wins."""
        merged = LabeledSet(examples=dict(self.examples))
        for example in other.examples.values():
            merged.add(example)
        return merged

    def is_trainable(
        self,
        min_per_class: int = MIN_EXAMPLES_PER_CLASS,
        min_total: int = MIN_TOTAL_EXAMPLES,
        min_classes: int = 2,
    ) -> bool:
        """Whether the paper's size requirements for training are met.

        Classes below *min_per_class* are simply too sparse to learn, but
        do not invalidate the set; what matters is having at least
        *min_classes* adequately-sized classes and *min_total* examples.
        """
        counts = self.class_counts()
        adequate = sum(1 for c in counts.values() if c >= min_per_class)
        return adequate >= min_classes and sum(counts.values()) >= min_total

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[LabeledExample]:
        return iter(self.examples.values())

    def __contains__(self, originator: int) -> bool:
        return originator in self.examples
