"""Deprecated compatibility shim: the classic pipeline API over the engine.

:class:`BackscatterPipeline` predates :class:`repro.sensor.engine.SensorEngine`
and is kept, **deprecated**, as a thin wrapper for existing callers and
notebooks: it is exactly the engine's select/featurize/classify stages
with the classic constructor signature.  Constructing one emits a
:class:`DeprecationWarning`; every internal call site has been ported.
Use the engine directly — it adds streaming ingestion, explicit
windowing, per-stage accounting, and telemetry.  The mapping is
mechanical (see docs/API.md "Migrating off BackscatterPipeline")::

    BackscatterPipeline(directory, min_queriers=N)
    # becomes
    SensorEngine(directory, SensorConfig(min_queriers=N))

    pipeline.features_from_log(authority, start, end)
    # becomes
    engine.featurize(engine.collect(authority.log, start, end))

``fit`` / ``classify`` / ``classify_map`` / ``training_data`` keep
their names and signatures on the engine.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.dnssim.authority import Authority
from repro.ml.validation import Classifier
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierDirectory
from repro.sensor.engine import (
    ClassifiedOriginator,
    SensorConfig,
    SensorEngine,
    default_forest_factory,
)
from repro.sensor.features import FeatureSet
from repro.sensor.selection import ANALYZABLE_THRESHOLD

__all__ = ["ClassifiedOriginator", "BackscatterPipeline", "default_forest_factory"]


class BackscatterPipeline:
    """Deprecated trainable sensor; use :class:`SensorEngine` instead.

    Thin adapter over :class:`~repro.sensor.engine.SensorEngine`; see the
    engine for the staged API and accounting, and the module docstring
    for the migration mapping.

    Parameters
    ----------
    directory:
        Querier metadata source (names, ASNs, countries).
    factory:
        Builds a classifier from a seed; defaults to random forest.
    majority_runs:
        How many times to run the stochastic classifier per prediction,
        taking the majority label (the paper uses 10).
    min_queriers:
        Analyzability threshold (§ III-B; 20 in the paper).
    """

    def __init__(
        self,
        directory: QuerierDirectory,
        factory: Callable[[int], Classifier] = default_forest_factory,
        majority_runs: int = 10,
        min_queriers: int = ANALYZABLE_THRESHOLD,
        seed: int = 0,
    ) -> None:
        warnings.warn(
            "BackscatterPipeline is deprecated; use repro.sensor.SensorEngine "
            "with a SensorConfig (see docs/API.md, 'Migrating off "
            "BackscatterPipeline')",
            DeprecationWarning,
            stacklevel=2,
        )
        self.engine = SensorEngine(
            directory,
            SensorConfig(
                min_queriers=min_queriers,
                majority_runs=majority_runs,
                classifier_factory=factory,
                seed=seed,
            ),
        )

    # -- classic attribute surface, delegated ---------------------------

    @property
    def directory(self) -> QuerierDirectory:
        return self.engine.directory

    @property
    def factory(self) -> Callable[[int], Classifier]:
        return self.engine.config.classifier_factory

    @property
    def majority_runs(self) -> int:
        return self.engine.config.majority_runs

    @property
    def min_queriers(self) -> int:
        return self.engine.config.min_queriers

    @property
    def seed(self) -> int:
        return self.engine.config.seed

    @property
    def encoder(self):
        return self.engine.encoder

    # ------------------------------------------------------------------

    def features_from_log(
        self, authority: Authority, start: float, end: float
    ) -> FeatureSet:
        """Stage 1+2: window the log, dedup, select, extract features."""
        return self.engine.featurize(
            self.engine.collect(list(authority.log), start, end)
        )

    def training_data(
        self, features: FeatureSet, labeled: LabeledSet
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Feature rows and encoded labels for labeled originators present."""
        return self.engine.training_data(features, labeled)

    def fit(self, features: FeatureSet, labeled: LabeledSet) -> "BackscatterPipeline":
        """Train on the labeled originators present in *features*."""
        self.engine.fit(features, labeled)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.engine.is_fitted

    def classify(self, features: FeatureSet) -> list[ClassifiedOriginator]:
        """Majority-vote classification of every originator in *features*."""
        return self.engine.classify(features)

    def classify_map(self, features: FeatureSet) -> dict[int, str]:
        """Classification as an originator → class mapping."""
        return self.engine.classify_map(features)
