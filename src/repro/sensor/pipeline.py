"""End-to-end backscatter classification pipeline (Figure 2 of the paper).

Glues the stages together: an authority's query log → observation window
(dedup + grouping) → analyzable-originator feature vectors → trained
classifier → application-class labels.  Non-deterministic classifiers are
run several times with majority voting, per § III-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dnssim.authority import Authority
from repro.ml.forest import ForestConfig, RandomForestClassifier
from repro.ml.validation import Classifier, LabelEncoder, majority_vote_predict
from repro.sensor.collection import collect_window
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierDirectory
from repro.sensor.features import FeatureSet, extract_features
from repro.sensor.selection import ANALYZABLE_THRESHOLD

__all__ = ["ClassifiedOriginator", "BackscatterPipeline", "default_forest_factory"]


@dataclass(frozen=True, slots=True)
class ClassifiedOriginator:
    """One pipeline verdict."""

    originator: int
    app_class: str
    footprint: int


def default_forest_factory(seed: int) -> RandomForestClassifier:
    """The paper's preferred classifier (RF wins Table III)."""
    return RandomForestClassifier(ForestConfig(n_trees=60), seed=seed)


class BackscatterPipeline:
    """Trainable sensor: fit on labeled examples, classify observations.

    Parameters
    ----------
    directory:
        Querier metadata source (names, ASNs, countries).
    factory:
        Builds a classifier from a seed; defaults to random forest.
    majority_runs:
        How many times to run the stochastic classifier per prediction,
        taking the majority label (the paper uses 10).
    min_queriers:
        Analyzability threshold (§ III-B; 20 in the paper).
    """

    def __init__(
        self,
        directory: QuerierDirectory,
        factory: Callable[[int], Classifier] = default_forest_factory,
        majority_runs: int = 10,
        min_queriers: int = ANALYZABLE_THRESHOLD,
        seed: int = 0,
    ) -> None:
        self.directory = directory
        self.factory = factory
        self.majority_runs = majority_runs
        self.min_queriers = min_queriers
        self.seed = seed
        self.encoder = LabelEncoder()
        self._train_X: np.ndarray | None = None
        self._train_y: np.ndarray | None = None

    # ------------------------------------------------------------------

    def features_from_log(
        self, authority: Authority, start: float, end: float
    ) -> FeatureSet:
        """Stage 1+2: window the log, dedup, select, extract features."""
        window = collect_window(list(authority.log), start, end)
        return extract_features(window, self.directory, self.min_queriers)

    def training_data(
        self, features: FeatureSet, labeled: LabeledSet
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Feature rows and encoded labels for labeled originators present."""
        rows: list[np.ndarray] = []
        labels: list[str] = []
        used: list[int] = []
        for example in labeled:
            row = features.row_of(example.originator)
            if row is None:
                continue
            rows.append(row)
            labels.append(example.app_class)
            used.append(example.originator)
        if not rows:
            raise ValueError("no labeled originators appear in the features")
        for name in labels:
            self.encoder.add(name)
        return np.stack(rows), self.encoder.encode(labels), used

    def fit(self, features: FeatureSet, labeled: LabeledSet) -> "BackscatterPipeline":
        """Train on the labeled originators present in *features*."""
        X, y, _ = self.training_data(features, labeled)
        self._train_X = X
        self._train_y = y
        return self

    @property
    def is_fitted(self) -> bool:
        return self._train_X is not None

    def classify(self, features: FeatureSet) -> list[ClassifiedOriginator]:
        """Majority-vote classification of every originator in *features*."""
        if self._train_X is None or self._train_y is None:
            raise RuntimeError("pipeline is not fitted")
        if len(features) == 0:
            return []
        votes = majority_vote_predict(
            self.factory,
            self._train_X,
            self._train_y,
            features.matrix,
            runs=self.majority_runs,
            seed=self.seed,
        )
        names = self.encoder.decode(votes)
        return [
            ClassifiedOriginator(
                originator=int(features.originators[i]),
                app_class=names[i],
                footprint=int(features.footprints[i]),
            )
            for i in range(len(features))
        ]

    def classify_map(self, features: FeatureSet) -> dict[int, str]:
        """Classification as an originator → class mapping."""
        return {c.originator: c.app_class for c in self.classify(features)}
