"""Removed compatibility shim: the classic pipeline API over the engine.

:class:`BackscatterPipeline` predated :class:`repro.sensor.engine.SensorEngine`
and spent several releases as a :class:`DeprecationWarning` shim.  The
shim is now **removed**: constructing one raises immediately with the
migration mapping.  Use the engine directly — it adds streaming
ingestion, explicit windowing, per-stage accounting, and telemetry.
The mapping is mechanical (see docs/API.md "Migrating off
BackscatterPipeline")::

    BackscatterPipeline(directory, min_queriers=N)
    # becomes
    SensorEngine(directory, SensorConfig(min_queriers=N))

    pipeline.features_from_log(authority, start, end)
    # becomes
    engine.featurize(engine.collect(authority.log, start, end))

``fit`` / ``classify`` / ``classify_map`` / ``training_data`` keep
their names and signatures on the engine.
"""

from __future__ import annotations

from repro.sensor.engine import ClassifiedOriginator, default_forest_factory

__all__ = ["ClassifiedOriginator", "BackscatterPipeline", "default_forest_factory"]

_MIGRATION = (
    "BackscatterPipeline has been removed; use repro.sensor.SensorEngine "
    "with a SensorConfig — BackscatterPipeline(directory, min_queriers=N) "
    "becomes SensorEngine(directory, SensorConfig(min_queriers=N)), and "
    "features_from_log(authority, start, end) becomes "
    "engine.featurize(engine.collect(authority.log, start, end)). "
    "See docs/API.md, 'Migrating off BackscatterPipeline'."
)


class BackscatterPipeline:
    """Removed; use :class:`~repro.sensor.engine.SensorEngine` instead.

    The name is kept only so existing imports fail at construction time
    with a migration message rather than at import time with a bare
    :class:`AttributeError`.  See the module docstring for the mapping.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise RuntimeError(_MIGRATION)
