"""Query-log collection: dedup and per-originator grouping (§ III-A/B/C).

Raw authority logs contain bursts of duplicate queries from queriers that
ignore DNS timeout rules; the paper "eliminate[s] duplicate queries from
the same querier in a 30 s window" to avoid skewing query-rate estimates.
After dedup, entries are grouped into one :class:`OriginatorObservation`
per originator over the observation interval — the unit the feature
extractor consumes.
"""

from __future__ import annotations


from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.dnssim.message import QueryLogEntry

if TYPE_CHECKING:
    from repro.logstore import EntryBlock
    from repro.sketch.prestage import SketchPreStage

__all__ = [
    "DEDUP_WINDOW_SECONDS",
    "dedup_entries",
    "OriginatorObservation",
    "ObservationWindow",
    "collect_window",
]

DEDUP_WINDOW_SECONDS = 30.0


def dedup_entries(
    entries: list[QueryLogEntry], window: float = DEDUP_WINDOW_SECONDS
) -> list[QueryLogEntry]:
    """Drop repeats of the same (querier, originator) within *window* seconds.

    Entries must be in non-decreasing timestamp order (authority logs are
    append-ordered).  The first query of each burst is kept; a repeat is
    dropped when it falls strictly within *window* of the last *kept*
    query for that pair, matching rate-limiting semantics.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    kept: list[QueryLogEntry] = []
    last_kept: dict[tuple[int, int], float] = {}
    previous_ts = float("-inf")
    for entry in entries:
        if entry.timestamp < previous_ts:
            raise ValueError("entries are not time-ordered")
        previous_ts = entry.timestamp
        key = (entry.querier, entry.originator)
        last = last_kept.get(key)
        if last is not None and entry.timestamp - last < window:
            continue
        last_kept[key] = entry.timestamp
        kept.append(entry)
    return kept


@dataclass(slots=True)
class OriginatorObservation:
    """All (deduped) reverse queries for one originator in one interval.

    The unique-querier view is computed lazily and cached — ``queriers``
    already holds every address, so materializing a set per ``add``
    would keep a third copy of the column alive for observations whose
    footprint is never read (pre-gate drops, sketch DEFERs).
    """

    originator: int
    timestamps: list[float] = field(default_factory=list)
    queriers: list[int] = field(default_factory=list)
    _unique: frozenset[int] | None = field(default=None, repr=False, compare=False)

    def add(self, timestamp: float, querier: int) -> None:
        self.timestamps.append(timestamp)
        self.queriers.append(querier)
        self._unique = None

    def extend_arrays(self, timestamps: "np.ndarray", queriers: "np.ndarray") -> None:
        """Bulk append from parallel column arrays (block ingest path)."""
        self.timestamps.extend(timestamps.tolist())
        self.queriers.extend(queriers.tolist())
        self._unique = None

    def extend_lists(self, timestamps: list[float], queriers: list[int]) -> None:
        """Bulk append from parallel plain lists (block ingest path)."""
        self.timestamps.extend(timestamps)
        self.queriers.extend(queriers)
        self._unique = None

    @property
    def query_count(self) -> int:
        return len(self.timestamps)

    @property
    def unique_queriers(self) -> frozenset[int]:
        if self._unique is None:
            self._unique = frozenset(self.queriers)
        return self._unique

    @property
    def footprint(self) -> int:
        """Unique querier count — the paper's footprint estimate (§ VI-A)."""
        return len(self.unique_queriers)


@dataclass(slots=True)
class ObservationWindow:
    """One observation interval's worth of grouped originator activity."""

    start: float
    end: float
    observations: dict[int, OriginatorObservation] = field(default_factory=dict)
    prestage: "SketchPreStage | None" = field(default=None, compare=False, repr=False)
    """The probabilistic pre-select summary of this window, when the
    engine ran with ``sketch_enabled`` (see :mod:`repro.sketch.prestage`).
    In sketch mode ``observations`` holds only gate survivors; the
    pre-stage retains approximate counts for everything else."""
    querier_roster: "np.ndarray | None" = field(default=None, compare=False, repr=False)
    """Sorted exact array of *every* querier address seen in the window
    (pre-gate), attached alongside ``prestage``.  Dynamic features
    normalize by the window-wide querier universe, so sketch-mode
    windows carry it explicitly instead of unioning the (survivors-only)
    observations."""

    @property
    def duration_days(self) -> float:
        return (self.end - self.start) / 86400.0

    def originators(self) -> list[int]:
        return list(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    def __contains__(self, originator: int) -> bool:
        return originator in self.observations

    def get(self, originator: int) -> OriginatorObservation | None:
        return self.observations.get(originator)


def extend_window_arrays(
    window: ObservationWindow,
    timestamps: np.ndarray,
    queriers: np.ndarray,
    originators: np.ndarray,
) -> None:
    """Append deduped columns into *window*, grouped by originator.

    Observations are created in **first-kept-appearance order** — the
    same ``dict`` insertion order the per-entry path produces — because
    downstream feature-matrix row order follows it.  A stable argsort by
    originator makes each group's first sorted element its earliest
    appearance, so ordering groups by that original index reproduces the
    sequential insertion sequence.
    """
    if timestamps.size == 0:
        return
    order = np.argsort(originators, kind="stable")
    sorted_orig = originators[order]
    uniq, first = np.unique(sorted_orig, return_index=True)
    bounds = np.append(first, sorted_orig.size).tolist()
    appearance = np.argsort(order[first], kind="stable")
    # Gather each column once in group order; per-group work is then
    # plain list slicing (groups are typically a handful of events, where
    # per-group fancy indexing would dominate the whole pass).
    ts_sorted = timestamps[order].tolist()
    qs_sorted = queriers[order].tolist()
    uniq_list = uniq.tolist()
    observations = window.observations
    for g in appearance.tolist():
        originator = uniq_list[g]
        lo, hi = bounds[g], bounds[g + 1]
        observation = observations.get(originator)
        if observation is None:
            observation = OriginatorObservation(originator=originator)
            observations[originator] = observation
        observation.extend_lists(ts_sorted[lo:hi], qs_sorted[lo:hi])


def collect_window(
    entries: "Iterable[QueryLogEntry] | EntryBlock",
    start: float,
    end: float,
    dedup_window: float = DEDUP_WINDOW_SECONDS,
) -> ObservationWindow:
    """Build an :class:`ObservationWindow` from raw log entries.

    Filters to ``start <= t < end``, dedups, then groups by originator —
    as pure array math over the columnar form.  *entries* may be an
    :class:`~repro.logstore.EntryBlock` (used as-is) or any iterable of
    :class:`QueryLogEntry` (converted in bounded chunks).

    In-range entries must be in non-decreasing timestamp order; order is
    validated **before** any state is built, so a failed call leaves no
    partial window behind.  The dedup semantics are the canonical ones
    shared with :class:`repro.sensor.streaming.StreamingCollector`, via
    :func:`repro.logstore.dedup_mask` (bit-identical to
    :func:`dedup_entries`, pinned by property tests).
    """
    from repro.logstore import EntryBlock, dedup_mask

    if end <= start:
        raise ValueError("end must be after start")
    if dedup_window < 0:
        raise ValueError("dedup_window and reorder_slack must be non-negative")
    block = entries if isinstance(entries, EntryBlock) else EntryBlock.from_entries(entries)
    ts = block.timestamps
    in_range = (ts >= start) & (ts < end)
    timestamps = ts[in_range]
    window = ObservationWindow(start=start, end=end)
    if timestamps.size == 0:
        return window
    if np.any(timestamps[1:] < timestamps[:-1]):
        raise ValueError("entries are not time-ordered")
    queriers = block.queriers[in_range]
    originators = block.originators[in_range]
    mask, _ = dedup_mask(timestamps, queriers, originators, dedup_window)
    extend_window_arrays(
        window, timestamps[mask], queriers[mask], originators[mask]
    )
    return window
