"""Query-log collection: dedup and per-originator grouping (§ III-A/B/C).

Raw authority logs contain bursts of duplicate queries from queriers that
ignore DNS timeout rules; the paper "eliminate[s] duplicate queries from
the same querier in a 30 s window" to avoid skewing query-rate estimates.
After dedup, entries are grouped into one :class:`OriginatorObservation`
per originator over the observation interval — the unit the feature
extractor consumes.
"""

from __future__ import annotations


from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dnssim.message import QueryLogEntry

if TYPE_CHECKING:
    import numpy as np

    from repro.sketch.prestage import SketchPreStage

__all__ = [
    "DEDUP_WINDOW_SECONDS",
    "dedup_entries",
    "OriginatorObservation",
    "ObservationWindow",
    "collect_window",
]

DEDUP_WINDOW_SECONDS = 30.0


def dedup_entries(
    entries: list[QueryLogEntry], window: float = DEDUP_WINDOW_SECONDS
) -> list[QueryLogEntry]:
    """Drop repeats of the same (querier, originator) within *window* seconds.

    Entries must be in non-decreasing timestamp order (authority logs are
    append-ordered).  The first query of each burst is kept; a repeat is
    dropped when it falls strictly within *window* of the last *kept*
    query for that pair, matching rate-limiting semantics.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    kept: list[QueryLogEntry] = []
    last_kept: dict[tuple[int, int], float] = {}
    previous_ts = float("-inf")
    for entry in entries:
        if entry.timestamp < previous_ts:
            raise ValueError("entries are not time-ordered")
        previous_ts = entry.timestamp
        key = (entry.querier, entry.originator)
        last = last_kept.get(key)
        if last is not None and entry.timestamp - last < window:
            continue
        last_kept[key] = entry.timestamp
        kept.append(entry)
    return kept


@dataclass(slots=True)
class OriginatorObservation:
    """All (deduped) reverse queries for one originator in one interval."""

    originator: int
    timestamps: list[float] = field(default_factory=list)
    queriers: list[int] = field(default_factory=list)
    _unique: set[int] = field(default_factory=set)

    def add(self, timestamp: float, querier: int) -> None:
        self.timestamps.append(timestamp)
        self.queriers.append(querier)
        self._unique.add(querier)

    @property
    def query_count(self) -> int:
        return len(self.timestamps)

    @property
    def unique_queriers(self) -> frozenset[int]:
        return frozenset(self._unique)

    @property
    def footprint(self) -> int:
        """Unique querier count — the paper's footprint estimate (§ VI-A)."""
        return len(self._unique)


@dataclass(slots=True)
class ObservationWindow:
    """One observation interval's worth of grouped originator activity."""

    start: float
    end: float
    observations: dict[int, OriginatorObservation] = field(default_factory=dict)
    prestage: "SketchPreStage | None" = field(default=None, compare=False, repr=False)
    """The probabilistic pre-select summary of this window, when the
    engine ran with ``sketch_enabled`` (see :mod:`repro.sketch.prestage`).
    In sketch mode ``observations`` holds only gate survivors; the
    pre-stage retains approximate counts for everything else."""
    querier_roster: "np.ndarray | None" = field(default=None, compare=False, repr=False)
    """Sorted exact array of *every* querier address seen in the window
    (pre-gate), attached alongside ``prestage``.  Dynamic features
    normalize by the window-wide querier universe, so sketch-mode
    windows carry it explicitly instead of unioning the (survivors-only)
    observations."""

    @property
    def duration_days(self) -> float:
        return (self.end - self.start) / 86400.0

    def originators(self) -> list[int]:
        return list(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    def __contains__(self, originator: int) -> bool:
        return originator in self.observations

    def get(self, originator: int) -> OriginatorObservation | None:
        return self.observations.get(originator)


def collect_window(
    entries: list[QueryLogEntry],
    start: float,
    end: float,
    dedup_window: float = DEDUP_WINDOW_SECONDS,
) -> ObservationWindow:
    """Build an :class:`ObservationWindow` from raw log entries.

    Filters to ``start <= t < end``, dedups, then groups by originator.

    This is a thin batch adapter over the canonical streaming
    implementation (:class:`repro.sensor.streaming.StreamingCollector`):
    the whole span is treated as a single observation window, so dedup
    semantics are defined exactly once.
    """
    # Local import: streaming.py depends on this module's value types.
    from repro.sensor.streaming import StreamingCollector

    if end <= start:
        raise ValueError("end must be after start")
    collector = StreamingCollector(
        window_seconds=end - start,
        origin=start,
        dedup_window=dedup_window,
        reorder_slack=0.0,
    )
    previous_ts = float("-inf")
    for entry in entries:
        if not start <= entry.timestamp < end:
            continue
        if entry.timestamp < previous_ts:
            raise ValueError("entries are not time-ordered")
        previous_ts = entry.timestamp
        collector.ingest(entry)
    emitted = collector.flush()
    if not emitted:
        return ObservationWindow(start=start, end=end)
    window = emitted[0]
    window.end = end  # a span shorter than window_seconds keeps its bound
    return window
