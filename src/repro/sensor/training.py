"""Training-over-time strategies and their evaluation (§ III-E, § V).

The world changes under the classifier: labeled examples stop their
activity (fast for malicious classes) and the features of those that
remain drift.  The paper compares three strategies on a multi-year log:

* **train-once** — fit on curation-day features, never refit;
* **train-daily** — keep the labeled set fixed but refit every window on
  freshly computed features of the examples still active;
* **auto-grow** — use window t's classification as window t+1's labels
  (shown to collapse: ~30% label error compounds within weeks).

Evaluation follows § V-B: on each window, classify the *re-appearing*
labeled examples from their fresh feature vectors and score against their
curated labels.  Windows where the strategy lacks enough training data
are reported with ``trained=False`` (the paper's "training fails" gaps).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import ClassificationReport, evaluate
from repro.ml.validation import Classifier, LabelEncoder, majority_vote_predict
from repro.sensor.curation import LabeledSet
from repro.sensor.features import FeatureSet

__all__ = [
    "Strategy",
    "WindowScore",
    "TimeSeriesEvaluation",
    "evaluate_strategy",
    "labeled_rows",
    "enough_to_train",
]


class Strategy(enum.Enum):
    TRAIN_ONCE = "train-once"
    TRAIN_DAILY = "train-daily"
    AUTO_GROW = "auto-grow"


@dataclass(frozen=True, slots=True)
class WindowScore:
    """Strategy performance on one observation window."""

    day: float
    trained: bool
    n_reappearing: int
    report: ClassificationReport | None

    @property
    def f1(self) -> float | None:
        return self.report.f1 if self.report else None


@dataclass(slots=True)
class TimeSeriesEvaluation:
    """Scores across all windows for one strategy."""

    strategy: Strategy
    scores: list[WindowScore]

    def f1_series(self) -> list[tuple[float, float]]:
        return [(s.day, s.report.f1) for s in self.scores if s.report is not None]

    def mean_f1(self) -> float:
        series = [f for _, f in self.f1_series()]
        return float(np.mean(series)) if series else 0.0

    def trained_fraction(self) -> float:
        if not self.scores:
            return 0.0
        return sum(1 for s in self.scores if s.trained) / len(self.scores)


def labeled_rows(
    features: FeatureSet, labeled: LabeledSet, encoder: LabelEncoder
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """One window's training data: rows and encoded labels of the
    labeled originators present in *features*.

    The strategy primitive both the offline evaluation here and the
    online retraining service (:mod:`repro.service`) assemble candidate
    models from.  Returns ``(X, y, used_originators)``; absent examples
    are skipped, and class names are added to *encoder* in encounter
    order.
    """
    rows, names, used = [], [], []
    for example in labeled:
        row = features.row_of(example.originator)
        if row is None:
            continue
        rows.append(row)
        names.append(example.app_class)
        used.append(example.originator)
    if not rows:
        return np.zeros((0, features.matrix.shape[1])), np.zeros(0, dtype=int), []
    for name in names:
        encoder.add(name)
    return np.stack(rows), encoder.encode(names), used


def enough_to_train(
    y: np.ndarray, min_per_class: int, min_total: int, min_classes: int = 2
) -> bool:
    """Whether a candidate label vector can support a trained model.

    The paper's "training fails" gate (§ V-B): at least *min_total*
    examples and at least *min_classes* classes each holding
    *min_per_class* of them.
    """
    if len(y) < min_total:
        return False
    _, counts = np.unique(y, return_counts=True)
    return int((counts >= min_per_class).sum()) >= min_classes


def evaluate_strategy(
    strategy: Strategy,
    windows: Sequence[tuple[float, FeatureSet]],
    labeled: LabeledSet,
    factory: Callable[[int], Classifier],
    curation_day: float = 0.0,
    min_per_class: int = 3,
    min_total: int = 12,
    majority_runs: int = 3,
    seed: int = 0,
) -> TimeSeriesEvaluation:
    """Run one training strategy across the windows and score each one.

    ``windows`` is a time-ordered sequence of (day, FeatureSet).  The
    curation-day window (the first with day >= curation_day) provides
    train-once's fixed model and auto-grow's seed labels.  Thresholds
    default far below the paper's (20/class, 200 total) because the
    synthetic worlds used in tests are smaller; the experiment harness
    raises them proportionally.
    """
    if not windows:
        raise ValueError("no windows to evaluate")
    days = [day for day, _ in windows]
    if any(b < a for a, b in zip(days, days[1:])):
        raise ValueError("windows must be time-ordered")
    encoder = LabelEncoder()
    rng = np.random.default_rng(seed)
    curation_index = next(
        (i for i, (day, _) in enumerate(windows) if day >= curation_day), 0
    )

    fixed_model_data: tuple[np.ndarray, np.ndarray] | None = None
    if strategy is Strategy.TRAIN_ONCE:
        X0, y0, _ = labeled_rows(windows[curation_index][1], labeled, encoder)
        if enough_to_train(y0, min_per_class, min_total):
            fixed_model_data = (X0, y0)

    # Auto-grow state: labels believed true going into the current window.
    believed: LabeledSet = labeled

    scores: list[WindowScore] = []
    for index, (day, features) in enumerate(windows):
        # -- assemble this window's training data per strategy ------------
        if strategy is Strategy.TRAIN_ONCE:
            train_data = fixed_model_data
        elif strategy is Strategy.TRAIN_DAILY:
            X, y, _ = labeled_rows(features, labeled, encoder)
            train_data = (X, y) if enough_to_train(y, min_per_class, min_total) else None
        else:  # AUTO_GROW
            if index == curation_index:
                believed = labeled
            X, y, _ = labeled_rows(features, believed, encoder)
            train_data = (X, y) if enough_to_train(y, min_per_class, min_total) else None

        # -- evaluate on re-appearing curated examples --------------------
        reappearing = labeled.restrict_to(set(int(o) for o in features.originators))
        X_eval, y_eval, eval_origins = labeled_rows(features, reappearing, encoder)
        if train_data is None or len(y_eval) == 0:
            scores.append(
                WindowScore(day=day, trained=False, n_reappearing=len(y_eval), report=None)
            )
        else:
            predictions = majority_vote_predict(
                factory,
                train_data[0],
                train_data[1],
                X_eval,
                runs=majority_runs,
                seed=int(rng.integers(2**63)),
            )
            report = evaluate(y_eval, predictions, max(len(encoder), 1))
            scores.append(
                WindowScore(
                    day=day, trained=True, n_reappearing=len(y_eval), report=report
                )
            )
            if strategy is Strategy.AUTO_GROW:
                # Tomorrow's "truth" is today's output over those examples.
                names = encoder.decode(predictions)
                believed = LabeledSet.from_pairs(
                    zip(eval_origins, names), curated_day=day
                )
        if strategy is Strategy.AUTO_GROW and train_data is None:
            # Cannot propagate labels through an untrained window.
            believed = LabeledSet()
    return TimeSeriesEvaluation(strategy=strategy, scores=scores)
