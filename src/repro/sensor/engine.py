"""The staged sensing engine: one canonical ingestion path (Figure 2).

The paper's sensor is a single conceptual pipeline — authority log →
30 s dedup + windowing → analyzable-originator selection → static/
dynamic features → classifier — and this module is where that pipeline
lives.  Everything the repo senses (the CLI, the experiment harness, the
longitudinal analyses, the examples) routes through here, in batch or
streaming form, so sensing semantics are defined exactly once.

Stages, mapped to the paper:

========== ============================================================
ingest     § III-A — accept (timestamp, querier, originator) tuples,
           validate ordering / drop strictly-late arrivals
window     § III-A/B — 30 s per-(querier, originator) dedup + grouping
           into observation intervals (:class:`StreamingCollector` is
           the single implementation; batch calls adapt onto it)
select     § III-B — keep analyzable originators (>= ``min_queriers``
           unique queriers)
featurize  § III-C/D — the 14 static + 8 dynamic features per selected
           originator
classify   § III-D/E — majority-vote classification with the configured
           learner over a curated labeled set
========== ============================================================

Every stage records :class:`StageStats` (items in/out, dropped, wall
time), so an engine run can report exactly where volume and time went —
the baseline that later sharding/batching/caching PRs measure against.
All stage timing flows through :mod:`repro.telemetry` spans: each
stage's wall time is measured exactly once (feeding entries is *ingest*
time, closing/assembling windows is *window* time, and so on), so the
per-stage seconds sum to approximately the run's wall time.  When a
:class:`~repro.telemetry.MetricsRegistry` is installed — passed to the
engine or ambient via :func:`repro.telemetry.install` — the same spans
also emit ``repro_stage_seconds`` histograms, ``repro_stage_items_total``
counters, per-window ``repro_window_seconds`` timings, and the
streaming-collector drop/reorder counters; with none installed the
instrumentation is a near-no-op.

Configuration that used to be scattered across call sites (window
length, dedup horizon, reorder slack, analyzability threshold, majority
runs, classifier factory) is gathered into one frozen
:class:`SensorConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from itertools import compress
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock
from repro.ml.forest import ForestConfig, RandomForestClassifier
from repro.ml.validation import Classifier, LabelEncoder, majority_vote_predict
from repro.sensor.collection import DEDUP_WINDOW_SECONDS, ObservationWindow
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierDirectory
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FeatureSet, features_from_selected
from repro.sensor.selection import ANALYZABLE_THRESHOLD, analyzable
from repro.sensor.streaming import StreamingCollector, StreamingStats
from repro.sketch.prestage import SketchParams, SketchPreStage
from repro.telemetry import (
    MetricsRegistry,
    count,
    get_registry,
    observe,
    set_gauge,
    span,
    use_registry,
)

__all__ = [
    "SECONDS_PER_DAY",
    "STAGE_NAMES",
    "SensorConfig",
    "StageStats",
    "SensedWindow",
    "SensorEngine",
    "ClassifiedOriginator",
    "default_forest_factory",
]

SECONDS_PER_DAY = 86400.0

STAGE_NAMES: tuple[str, ...] = ("ingest", "window", "select", "featurize", "classify")


def default_forest_factory(seed: int) -> RandomForestClassifier:
    """The paper's preferred classifier (RF wins Table III)."""
    return RandomForestClassifier(ForestConfig(n_trees=60), seed=seed)


@dataclass(frozen=True, slots=True)
class SensorConfig:
    """Everything that parameterizes one sensor deployment, in one place.

    Previously these knobs were repeated as loose kwargs and module
    constants across the CLI, the experiment cache-builders, and the
    longitudinal analyses; a frozen config makes a deployment's
    semantics explicit and hashable-by-eye.
    """

    window_seconds: float = 7 * SECONDS_PER_DAY
    """Observation interval length (§ III-B's d; the paper uses 1-7 days)."""
    origin: float = 0.0
    """Timestamp where window 0 begins."""
    dedup_window: float = DEDUP_WINDOW_SECONDS
    """Per-(querier, originator) duplicate suppression horizon (§ III-A)."""
    reorder_slack: float = 2.0
    """Accepted input disorder; later arrivals are dropped as late."""
    min_queriers: int = ANALYZABLE_THRESHOLD
    """Analyzability threshold (§ III-B; 20 at Internet scale)."""
    majority_runs: int = 10
    """Stochastic-classifier reruns per prediction (§ III-D; paper uses 10)."""
    classifier_factory: Callable[[int], Classifier] = default_forest_factory
    """Builds a classifier from a seed; defaults to the paper's RF."""
    seed: int = 0
    """Base seed for the majority-vote classifier runs."""
    featurize_workers: int = 1
    """Process-pool workers for the featurize stage (1 = serial).

    Chunked by originator, so the parallel output is bit-identical to
    the serial path (see :func:`repro.sensor.features.features_from_selected`).
    """
    sketch_enabled: bool = False
    """Run the probabilistic pre-select stage (:mod:`repro.sketch`).

    Batch paths gate originators on an HLL unique-querier estimate and
    materialize exact observations for survivors only (two passes —
    survivor features are bit-identical to the exact path); the
    streaming path promotes originators to exact state once their
    estimate reaches the promote threshold (single pass).
    """
    sketch_width: int = 4096
    """Count-min sketch columns per row (per-originator query counts)."""
    sketch_depth: int = 4
    """Count-min sketch rows (independent hash functions)."""
    hll_precision: int = 6
    """HyperLogLog precision p — ``2^p`` registers per originator."""
    sketch_fp_rate: float = 0.01
    """Dedup Bloom filter false-positive budget at ``sketch_capacity``."""
    sketch_capacity: int = 1 << 20
    """Distinct (originator, querier, 30 s bucket) events the dedup
    filter is sized for."""
    sketch_margin: float = 0.5
    """One-sided error margin of the approximate gate: the HLL estimate
    is compared against ``(1 - margin) * min_queriers`` so that HLL
    underestimation cannot silently drop analyzable originators.  The
    exact ``min_queriers`` gate still applies at the select stage."""
    sketch_promote_queriers: int = 0
    """Streaming mode: estimate at which an originator starts
    materializing exact state.  0 = auto (``min(4, gate)``); an explicit
    value must not exceed the approximate gate threshold."""

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.dedup_window < 0:
            raise ValueError("dedup_window must be non-negative")
        if self.reorder_slack < 0:
            raise ValueError("reorder_slack must be non-negative")
        if self.min_queriers < 1:
            raise ValueError("min_queriers must be positive")
        if self.majority_runs < 1:
            raise ValueError("majority_runs must be positive")
        if self.featurize_workers < 1:
            raise ValueError("featurize_workers must be positive")
        if self.sketch_width < 1:
            raise ValueError("sketch_width must be positive")
        if self.sketch_depth < 1:
            raise ValueError("sketch_depth must be positive")
        if not 4 <= self.hll_precision <= 16:
            raise ValueError("hll_precision must be in [4, 16]")
        if not 0.0 < self.sketch_fp_rate < 1.0:
            raise ValueError("sketch_fp_rate must be in (0, 1)")
        if self.sketch_capacity < 1:
            raise ValueError("sketch_capacity must be positive")
        if not 0.0 <= self.sketch_margin < 1.0:
            raise ValueError("sketch_margin must be in [0, 1)")
        if self.sketch_promote_queriers < 0:
            raise ValueError("sketch_promote_queriers must be non-negative (0 = auto)")
        if (
            self.sketch_promote_queriers > 0
            and self.sketch_promote_queriers > self.sketch_gate_queriers
        ):
            raise ValueError(
                "sketch_promote_queriers must not exceed the approximate gate "
                f"threshold ({self.sketch_gate_queriers})"
            )

    @property
    def window_days(self) -> float:
        return self.window_seconds / SECONDS_PER_DAY

    @property
    def sketch_gate_queriers(self) -> int:
        """The approximate gate threshold the HLL estimate is held to."""
        return max(1, math.ceil((1.0 - self.sketch_margin) * self.min_queriers))

    def sketch_params(self) -> SketchParams:
        """The :class:`~repro.sketch.prestage.SketchParams` this config implies."""
        gate = self.sketch_gate_queriers
        promote = self.sketch_promote_queriers or min(4, gate)
        return SketchParams(
            width=self.sketch_width,
            depth=self.sketch_depth,
            hll_precision=self.hll_precision,
            fp_rate=self.sketch_fp_rate,
            capacity=self.sketch_capacity,
            gate_queriers=gate,
            promote_queriers=promote,
            dedup_seconds=self.dedup_window,
            seed=self.seed,
        )

    def replaced(self, **overrides: object) -> "SensorConfig":
        """A copy with the given fields overridden (validated again)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(slots=True)
class StageStats:
    """Accounting for one engine stage."""

    name: str
    items_in: int = 0
    items_out: int = 0
    dropped: int = 0
    seconds: float = 0.0


@dataclass(frozen=True, slots=True)
class ClassifiedOriginator:
    """One classify-stage verdict."""

    originator: int
    app_class: str
    footprint: int


@dataclass(slots=True)
class SensedWindow:
    """One observation interval after every engine stage that applies."""

    window: ObservationWindow
    features: FeatureSet | None = None
    verdicts: list[ClassifiedOriginator] = field(default_factory=list)
    telemetry: dict[str, object] | None = None
    """Per-window observability snapshot, attached by the engine.

    Keys: ``window_start`` / ``window_end``, per-stage counts
    (``originators``, ``selected``, ``featurized``, ``verdicts``) and a
    ``seconds`` dict with this window's select/featurize/classify wall
    times plus ``total``.  Always populated (it reads span wall times,
    which are measured whether or not a metrics registry is installed).
    """

    @property
    def classification(self) -> dict[int, str]:
        return {v.originator: v.app_class for v in self.verdicts}


class SensorEngine:
    """Staged sensor: ingest → window/dedup → select → featurize → classify.

    One engine instance is one sensor deployment: a
    :class:`QuerierDirectory` (metadata for the featurize stage; may be
    omitted when only windowing is needed), a :class:`SensorConfig`, and
    — after :meth:`fit` — a trained classify stage.

    Batch and streaming are the same pipeline.  Batch calls
    (:meth:`process`, :meth:`windows`, :meth:`collect`) run a whole
    time-ordered log through a fresh collector; streaming calls
    (:meth:`ingest`, :meth:`poll`, :meth:`finish`) feed a persistent one
    and hand back windows as the watermark closes them.  Both paths use
    :class:`~repro.sensor.streaming.StreamingCollector` as the single
    windowing/dedup implementation and record per-stage
    :class:`StageStats` (see :meth:`accounting`).
    """

    def __init__(
        self,
        directory: QuerierDirectory | None = None,
        config: SensorConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.directory = directory
        self.config = config or SensorConfig()
        self.registry = registry
        self.stats: dict[str, StageStats] = {
            name: StageStats(name) for name in STAGE_NAMES
        }
        self.encoder = LabelEncoder()
        self._train_X: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self._collector: StreamingCollector | None = None
        self._absorbed = StreamingStats()
        self._window_callbacks: list[Callable[[SensedWindow], None]] = []

    # -- window-close hooks ---------------------------------------------

    def on_window(
        self, callback: Callable[[SensedWindow], None]
    ) -> Callable[[], None]:
        """Register a hook invoked with each streaming-sensed window.

        The supported way for long-running callers (the service, the CLI
        stream report) to observe window closes without polling return
        values or reaching into collector internals.  Callbacks fire
        once per :class:`SensedWindow`, in emission order, after the
        window has run through every applicable stage — from inside
        :meth:`poll` / :meth:`finish` on the streaming path.  Exceptions
        propagate to the poller.  Returns an unsubscribe callable.
        """
        self._window_callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                self._window_callbacks.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def _notify_window(self, sensed: SensedWindow) -> None:
        for callback in list(self._window_callbacks):
            callback(sensed)

    # -- telemetry ------------------------------------------------------

    def _scope(self):
        """Ambient-registry scope for one engine operation.

        Makes an explicitly-passed registry visible to the instrumented
        internals (enrichment cache, featurize fan-out, classifier)
        without widening their signatures; with ``registry=None`` the
        scope keeps whatever is ambient (possibly nothing).
        """
        return use_registry(self.registry)

    def _record_stage(
        self,
        name: str,
        items_in: int = 0,
        items_out: int = 0,
        dropped: int = 0,
        seconds: float = 0.0,
    ) -> None:
        """Fold one unit of stage work into StageStats + metrics.

        StageStats always updates; the metric emissions no-op unless a
        registry is in scope.
        """
        stage = self.stats[name]
        stage.items_in += items_in
        stage.items_out += items_out
        stage.dropped += dropped
        stage.seconds += seconds
        if get_registry() is None:
            return
        help_items = "Items through each sensing stage, by direction."
        count("repro_stage_items_total", items_in,
              help=help_items, stage=name, direction="in")
        count("repro_stage_items_total", items_out,
              help=help_items, stage=name, direction="out")
        count("repro_stage_items_total", dropped,
              help=help_items, stage=name, direction="dropped")
        if seconds > 0.0:
            observe("repro_stage_seconds", seconds,
                    help="Wall time per unit of stage work.", stage=name)

    def _emit_sketch_metrics(self, prestage, selected) -> None:
        """Publish one window's pre-stage counters (registry in scope)."""
        help_gate = "Originators through the approximate analyzability gate."
        count("repro_sketch_gate_originators_total", prestage.gate_kept,
              help=help_gate, result="kept")
        count("repro_sketch_gate_originators_total", prestage.gate_dropped,
              help=help_gate, result="dropped")
        help_events = "Events through the sketch pre-stage, by outcome."
        count("repro_sketch_events_total", prestage.events_unique,
              help=help_events, result="unique")
        count("repro_sketch_events_total", prestage.events_duplicate,
              help=help_events, result="duplicate")
        count("repro_sketch_events_total", prestage.events_deferred,
              help=help_events, result="deferred")
        help_resolver = ("Streaming promotion-resolver outcomes per "
                         "(originator, chunk), vectorized path only.")
        count("repro_sketch_resolver_originators_total", prestage.resolver_wholesale,
              help=help_resolver, outcome="wholesale")
        count("repro_sketch_resolver_originators_total", prestage.resolver_replayed,
              help=help_resolver, outcome="replayed")
        for structure, nbytes in prestage.memory_bytes().items():
            set_gauge("repro_sketch_memory_bytes", nbytes,
                      help="Bytes held by each pre-stage structure.",
                      structure=structure)
        if prestage.exact_observations and selected:
            # Batch mode: survivors carry exact footprints, so the HLL's
            # relative estimate error is directly measurable.
            errors = prestage.error_against(
                {o.originator: o.footprint for o in selected}
            )
            for error in errors:
                observe("repro_sketch_estimate_error", float(error),
                        help="Relative HLL unique-querier estimate error "
                        "over exactly-materialized originators.")

    # -- ingest + window/dedup (streaming) ------------------------------

    @property
    def collector(self) -> StreamingCollector:
        """The persistent streaming collector (created on first use)."""
        if self._collector is None:
            self._collector = self._new_collector(self.config.origin)
        return self._collector

    def _new_collector(self, origin: float) -> StreamingCollector:
        factory = None
        if self.config.sketch_enabled:
            params = self.config.sketch_params()
            factory = lambda: SketchPreStage(params)  # noqa: E731
        return StreamingCollector(
            window_seconds=self.config.window_seconds,
            origin=origin,
            dedup_window=self.config.dedup_window,
            reorder_slack=self.config.reorder_slack,
            prestage_factory=factory,
        )

    def ingest(self, entry: QueryLogEntry) -> None:
        """Feed one live entry (streaming path).

        Feed time — validation, dedup, and windowing work triggered by
        the entry's arrival — is ingest-stage time; window-stage time is
        only accrued when windows are closed (:meth:`poll` /
        :meth:`finish`), so no wall second is counted twice.
        """
        with self._scope(), span("stage.ingest") as sp:
            self.collector.ingest(entry)
        self.stats["ingest"].seconds += sp.elapsed

    def ingest_many(self, entries: Iterable[QueryLogEntry]) -> None:
        """Feed a chunk of live entries (streaming path)."""
        with self._scope(), span("stage.ingest") as sp:
            self.collector.ingest_many(entries)
        self.stats["ingest"].seconds += sp.elapsed

    def ingest_block(self, block: EntryBlock) -> None:
        """Feed one columnar block of live entries (streaming path).

        The vectorized counterpart of :meth:`ingest_many`: the block's
        columns run through the collector's array core
        (:meth:`~repro.sensor.streaming.StreamingCollector.ingest_block`),
        with identical semantics to feeding the same entries one by one.
        """
        with self._scope():
            with span("stage.ingest") as sp:
                self.collector.ingest_block(block)
            self.stats["ingest"].seconds += sp.elapsed
            self._emit_block_metrics(block, path="stream")

    def _emit_block_metrics(self, block: EntryBlock, path: str) -> None:
        """Publish ``repro_ingest_*`` block telemetry (registry in scope)."""
        if get_registry() is None:
            return
        count("repro_ingest_blocks_total", 1,
              help="Columnar blocks fed to the ingest plane.", path=path)
        count("repro_ingest_block_events_total", len(block),
              help="Events ingested via columnar blocks.", path=path)
        set_gauge("repro_ingest_block_bytes", block.nbytes,
                  help="Bytes in the most recently ingested block.", path=path)

    def poll(self, classify: bool | None = None) -> list[SensedWindow]:
        """Windows the watermark has closed since the last poll.

        Each is run through select/featurize (and classify, when the
        engine :attr:`is_fitted` or *classify* is forced true).
        """
        with self._scope():
            with span("stage.window") as sp:
                completed = self.collector.completed_windows()
            self.stats["window"].seconds += sp.elapsed
            if get_registry() is not None:
                set_gauge(
                    "repro_stream_pending_entries",
                    self.collector.pending_entries,
                    help="Entries buffered awaiting the reorder watermark.",
                )
                set_gauge(
                    "repro_stream_pending_windows",
                    self.collector.pending_windows,
                    help="Observation windows still open at the collector.",
                )
            sensed = [self._sense(window, classify) for window in completed]
            for item in sensed:
                self._notify_window(item)
            return sensed

    def finish(self, classify: bool | None = None) -> list[SensedWindow]:
        """End of stream: flush still-open windows and sense them."""
        with self._scope():
            with span("stage.window") as sp:
                flushed = self.collector.flush()
            self.stats["window"].seconds += sp.elapsed
            sensed = [self._sense(window, classify) for window in flushed]
            for item in sensed:
                self._notify_window(item)
            return sensed

    def _absorb_collector_stats(self) -> None:
        """Fold collector counters into the ingest/window stage stats."""
        current = self.collector.stats if self._collector is not None else None
        if current is None:
            return
        delta = StreamingStats(
            ingested=current.ingested - self._absorbed.ingested,
            deduplicated=current.deduplicated - self._absorbed.deduplicated,
            late_dropped=current.late_dropped - self._absorbed.late_dropped,
            reordered=current.reordered - self._absorbed.reordered,
            windows_emitted=current.windows_emitted - self._absorbed.windows_emitted,
        )
        self._absorbed = replace(current)
        accepted = delta.ingested - delta.late_dropped
        self._record_stage(
            "ingest",
            items_in=delta.ingested,
            items_out=accepted,
            dropped=delta.late_dropped,
        )
        self._record_stage(
            "window",
            items_in=accepted,
            items_out=delta.windows_emitted,
            dropped=delta.deduplicated,
        )
        if get_registry() is not None:
            count("repro_stream_late_dropped_total", delta.late_dropped,
                  help="Entries dropped as later than the reorder slack.")
            count("repro_stream_deduplicated_total", delta.deduplicated,
                  help="Entries suppressed by the 30s per-pair dedup.")
            count("repro_stream_reordered_total", delta.reordered,
                  help="Out-of-order entries accepted within the reorder slack.")
            count("repro_stream_windows_total", delta.windows_emitted,
                  help="Observation windows emitted by the collector.")

    # -- batch adapters -------------------------------------------------

    @staticmethod
    def _block_in_range(block: EntryBlock, start: float, end: float) -> EntryBlock:
        """In-range sub-block, order-validated before any state is built.

        Mirrors the object path's contract: only the entries inside
        ``[start, end)`` must be time-ordered, and a failed validation
        raises before the collector sees anything.
        """
        sub = block.slice_time(start, end)
        if not sub.is_sorted:
            raise ValueError("entries are not time-ordered")
        return sub

    def windows(
        self,
        entries: Sequence[QueryLogEntry] | Iterable[QueryLogEntry] | EntryBlock,
        start: float,
        end: float,
        window_seconds: float | None = None,
    ) -> list[ObservationWindow]:
        """Slice a time-ordered log into consecutive observation windows.

        Covers ``[start, end)`` with windows of ``window_seconds``
        (default: the config's), aligned to *start*; the final window is
        clipped to *end* and intervals without traffic still yield empty
        windows, so indexes are contiguous — what the longitudinal
        analyses expect.  Out-of-order input raises (batch logs are
        append-ordered); use the streaming path for live reordering.

        *entries* may be an :class:`~repro.logstore.EntryBlock`, in
        which case the whole pipeline runs as array math (searchsorted
        range slicing, vectorized dedup, observations extended from
        column slices) and produces bit-identical windows to the
        per-object path.
        """
        if end <= start:
            raise ValueError("end must be after start")
        width = self.config.window_seconds if window_seconds is None else window_seconds
        if width <= 0:
            raise ValueError("window_seconds must be positive")
        if self.config.sketch_enabled:
            return self._windows_sketch(entries, start, end, width)
        collector = StreamingCollector(
            window_seconds=width,
            origin=start,
            dedup_window=self.config.dedup_window,
            reorder_slack=0.0,
        )
        with self._scope():
            # Feeding entries (validation + dedup as they arrive) is
            # ingest time; closing and assembling windows is window
            # time — each wall second lands in exactly one stage.
            with span("stage.ingest") as ingest_span:
                if isinstance(entries, EntryBlock):
                    ingested = len(entries)
                    sub = self._block_in_range(entries, start, end)
                    dropped = ingested - len(sub)
                    collector.ingest_block(sub)
                    self._emit_block_metrics(sub, path="batch")
                else:
                    ingested = dropped = 0
                    previous_ts = float("-inf")
                    for entry in entries:
                        ingested += 1
                        if not start <= entry.timestamp < end:
                            dropped += 1
                            continue
                        if entry.timestamp < previous_ts:
                            raise ValueError("entries are not time-ordered")
                        previous_ts = entry.timestamp
                        collector.ingest(entry)
            with span("stage.window") as window_span:
                emitted = {
                    self._index_of(window.start, start, width): window
                    for window in collector.flush()
                }
                windows: list[ObservationWindow] = []
                index = 0
                window_start = start
                while window_start < end:
                    window_end = min(window_start + width, end)
                    window = emitted.get(
                        index, ObservationWindow(start=window_start, end=window_end)
                    )
                    window.end = window_end
                    windows.append(window)
                    index += 1
                    window_start = window_start + width
            accepted = ingested - dropped
            self._record_stage(
                "ingest",
                items_in=ingested,
                items_out=accepted,
                dropped=dropped,
                seconds=ingest_span.elapsed,
            )
            self._record_stage(
                "window",
                items_in=accepted,
                items_out=len(windows),
                dropped=collector.stats.deduplicated,
                seconds=window_span.elapsed,
            )
        return windows

    def _windows_sketch(
        self,
        entries: Sequence[QueryLogEntry] | Iterable[QueryLogEntry],
        start: float,
        end: float,
        width: float,
    ) -> list[ObservationWindow]:
        """Sketch-mode :meth:`windows`: approximate gate, then exact pass.

        Pass 1 streams every in-range event through one window-scoped
        :class:`~repro.sketch.prestage.SketchPreStage` (vectorized) and
        reads the approximate-gate survivors.  Pass 2 runs only survivor
        events through the unchanged exact collector, so survivor
        observations — and therefore their feature rows — are
        bit-identical to the exact path.  Gated-out events are window-
        stage drops; pass-1 wall time is select-stage time (it *is* the
        approximate select).
        """
        if isinstance(entries, EntryBlock):
            return self._windows_sketch_block(entries, start, end, width)
        params = self.config.sketch_params()
        with self._scope():
            with span("stage.ingest") as ingest_span:
                # A boolean in-range mask over the input sequence (1 byte
                # per event) instead of a copied entry-reference list —
                # pass 2 re-reads survivors straight off *entries*.
                if not isinstance(entries, Sequence):
                    entries = list(entries)
                ingested = len(entries)
                in_range = np.zeros(ingested, dtype=bool)
                previous_ts = float("-inf")
                for j, entry in enumerate(entries):
                    if not start <= entry.timestamp < end:
                        continue
                    if entry.timestamp < previous_ts:
                        raise ValueError("entries are not time-ordered")
                    previous_ts = entry.timestamp
                    in_range[j] = True
                n = int(in_range.sum())
                dropped = ingested - n
            with span("stage.select") as select_span:
                timestamps = np.fromiter(
                    (e.timestamp for e in compress(entries, in_range)), np.float64, n
                )
                queriers = np.fromiter(
                    (e.querier for e in compress(entries, in_range)), np.int64, n
                )
                originators = np.fromiter(
                    (e.originator for e in compress(entries, in_range)), np.int64, n
                )
                # Entries are time-ordered, so window indices are
                # non-decreasing and each window is a contiguous slice.
                indices = ((timestamps - start) // width).astype(np.int64)
                uniq, bounds = np.unique(indices, return_index=True)
                bounds = np.append(bounds, n)
                prestages: dict[int, SketchPreStage] = {}
                survivor_mask = np.zeros(n, dtype=bool)
                for k, window_index in enumerate(uniq):
                    lo, hi = int(bounds[k]), int(bounds[k + 1])
                    prestage = SketchPreStage(params)
                    prestage.exact_observations = True
                    prestage.observe_batch(
                        timestamps[lo:hi], queriers[lo:hi], originators[lo:hi]
                    )
                    prestages[int(window_index)] = prestage
                    survivor_mask[lo:hi] = np.isin(
                        originators[lo:hi], prestage.survivors()
                    )
                gated_events = int(n - int(survivor_mask.sum()))
                # Expand the (in-range-relative) survivor mask back over
                # the full input sequence, then drop pass 1's whole-log
                # arrays — dead weight during the exact pass — so
                # sketch-mode peak memory stays bounded by survivor
                # state, not log size.
                in_range[in_range] = survivor_mask
                del timestamps, queriers, originators, indices, survivor_mask
            collector = StreamingCollector(
                window_seconds=width,
                origin=start,
                dedup_window=self.config.dedup_window,
                reorder_slack=0.0,
            )
            with span("stage.window") as window_span:
                for entry in compress(entries, in_range):
                    collector.ingest(entry)
                del in_range
                emitted = {
                    self._index_of(window.start, start, width): window
                    for window in collector.flush()
                }
                windows: list[ObservationWindow] = []
                index = 0
                window_start = start
                while window_start < end:
                    window_end = min(window_start + width, end)
                    window = emitted.get(
                        index, ObservationWindow(start=window_start, end=window_end)
                    )
                    window.end = window_end
                    prestage = prestages.get(index)
                    if prestage is not None:
                        window.prestage = prestage
                        window.querier_roster = prestage.roster_array()
                    windows.append(window)
                    index += 1
                    window_start = window_start + width
            accepted = ingested - dropped
            self._record_stage(
                "ingest",
                items_in=ingested,
                items_out=accepted,
                dropped=dropped,
                seconds=ingest_span.elapsed,
            )
            # Item accounting for the select stage happens per window at
            # featurize time (where the exact gate also runs); pass 1
            # contributes its wall time here.
            self._record_stage("select", seconds=select_span.elapsed)
            self._record_stage(
                "window",
                items_in=accepted,
                items_out=len(windows),
                dropped=collector.stats.deduplicated + gated_events,
                seconds=window_span.elapsed,
            )
            if get_registry() is not None:
                count(
                    "repro_sketch_events_total", gated_events,
                    help="Events through the sketch pre-stage, by outcome.",
                    result="gated",
                )
        return windows

    def _windows_sketch_block(
        self,
        block: EntryBlock,
        start: float,
        end: float,
        width: float,
    ) -> list[ObservationWindow]:
        """Sketch-mode :meth:`windows` over a columnar block.

        The pre-stage's ``observe_batch`` consumes the block's columns
        directly — no per-event object traffic at all — and pass 2 feeds
        the survivor column slices through the collector's array core.
        Survivor observations stay bit-identical to the exact path.
        """
        params = self.config.sketch_params()
        with self._scope():
            with span("stage.ingest") as ingest_span:
                ingested = len(block)
                sub = self._block_in_range(block, start, end)
                n = len(sub)
                dropped = ingested - n
                timestamps = sub.timestamps
                queriers = sub.queriers
                originators = sub.originators
                self._emit_block_metrics(sub, path="batch")
            with span("stage.select") as select_span:
                # Entries are time-ordered, so window indices are
                # non-decreasing and each window is a contiguous slice.
                indices = ((timestamps - start) // width).astype(np.int64)
                uniq, bounds = np.unique(indices, return_index=True)
                bounds = np.append(bounds, n)
                prestages: dict[int, SketchPreStage] = {}
                survivor_mask = np.zeros(n, dtype=bool)
                for k, window_index in enumerate(uniq):
                    lo, hi = int(bounds[k]), int(bounds[k + 1])
                    prestage = SketchPreStage(params)
                    prestage.exact_observations = True
                    prestage.observe_batch(
                        timestamps[lo:hi], queriers[lo:hi], originators[lo:hi]
                    )
                    prestages[int(window_index)] = prestage
                    survivor_mask[lo:hi] = np.isin(
                        originators[lo:hi], prestage.survivors()
                    )
                gated_events = int(n - int(survivor_mask.sum()))
            collector = StreamingCollector(
                window_seconds=width,
                origin=start,
                dedup_window=self.config.dedup_window,
                reorder_slack=0.0,
            )
            with span("stage.window") as window_span:
                collector.ingest_arrays(
                    timestamps[survivor_mask],
                    queriers[survivor_mask],
                    originators[survivor_mask],
                )
                emitted = {
                    self._index_of(window.start, start, width): window
                    for window in collector.flush()
                }
                windows: list[ObservationWindow] = []
                index = 0
                window_start = start
                while window_start < end:
                    window_end = min(window_start + width, end)
                    window = emitted.get(
                        index, ObservationWindow(start=window_start, end=window_end)
                    )
                    window.end = window_end
                    prestage = prestages.get(index)
                    if prestage is not None:
                        window.prestage = prestage
                        window.querier_roster = prestage.roster_array()
                    windows.append(window)
                    index += 1
                    window_start = window_start + width
            accepted = ingested - dropped
            self._record_stage(
                "ingest",
                items_in=ingested,
                items_out=accepted,
                dropped=dropped,
                seconds=ingest_span.elapsed,
            )
            self._record_stage("select", seconds=select_span.elapsed)
            self._record_stage(
                "window",
                items_in=accepted,
                items_out=len(windows),
                dropped=collector.stats.deduplicated + gated_events,
                seconds=window_span.elapsed,
            )
            if get_registry() is not None:
                count(
                    "repro_sketch_events_total", gated_events,
                    help="Events through the sketch pre-stage, by outcome.",
                    result="gated",
                )
        return windows

    @staticmethod
    def _index_of(window_start: float, origin: float, width: float) -> int:
        return int(round((window_start - origin) / width))

    def collect(
        self,
        entries: Sequence[QueryLogEntry] | Iterable[QueryLogEntry] | EntryBlock,
        start: float,
        end: float,
    ) -> ObservationWindow:
        """One observation window spanning ``[start, end)`` (batch)."""
        return self.windows(entries, start, end, window_seconds=end - start)[0]

    # -- select + featurize ---------------------------------------------

    def featurize(
        self, window: ObservationWindow, context: WindowContext | None = None
    ) -> FeatureSet:
        """Select analyzable originators and extract their features.

        Runs serial (vectorized + window-scoped enrichment cache) by
        default; with ``config.featurize_workers > 1`` the rows fan out
        over a process pool, bit-identical to serial.  Observations whose
        queriers all deduplicated away are skipped and accounted as
        featurize-stage drops rather than raising out of :meth:`poll`.

        An explicit *context* overrides the window-derived normalizers —
        the federated path passes the merged window's context so shard
        rows match a single engine's bit for bit.
        """
        if self.directory is None:
            raise RuntimeError("engine has no querier directory to featurize with")
        with self._scope():
            with span("stage.select") as select_span:
                selected = analyzable(window, self.config.min_queriers)
            prestage = window.prestage
            # With a pre-stage, the select stage saw every originator the
            # sketch summarized, not just the gate survivors the window
            # materialized — account for the approximately-gated ones too.
            items_in = len(window) if prestage is None else prestage.originators_seen
            self._record_stage(
                "select",
                items_in=items_in,
                items_out=len(selected),
                dropped=items_in - len(selected),
                seconds=select_span.elapsed,
            )
            if get_registry() is not None:
                help_select = "Originators through the select stage, by outcome."
                count("repro_select_originators_total", len(selected),
                      help=help_select, result="kept")
                count("repro_select_originators_total", items_in - len(selected),
                      help=help_select, result="dropped")
                if prestage is not None:
                    self._emit_sketch_metrics(prestage, selected)
            with span("stage.featurize") as featurize_span:
                features = features_from_selected(
                    window, selected, self.directory,
                    workers=self.config.featurize_workers,
                    context=context,
                )
            self._record_stage(
                "featurize",
                items_in=len(selected),
                items_out=len(features),
                dropped=len(selected) - len(features),
                seconds=featurize_span.elapsed,
            )
        return features

    # -- classify -------------------------------------------------------

    def training_data(
        self, features: FeatureSet, labeled: LabeledSet
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Feature rows and encoded labels for labeled originators present."""
        rows: list[np.ndarray] = []
        labels: list[str] = []
        used: list[int] = []
        for example in labeled:
            row = features.row_of(example.originator)
            if row is None:
                continue
            rows.append(row)
            labels.append(example.app_class)
            used.append(example.originator)
        if not rows:
            raise ValueError("no labeled originators appear in the features")
        for name in labels:
            self.encoder.add(name)
        return np.stack(rows), self.encoder.encode(labels), used

    def fit(self, features: FeatureSet, labeled: LabeledSet) -> "SensorEngine":
        """Train the classify stage on the labeled originators present."""
        with self._scope(), span("classifier.fit"):
            X, y, _ = self.training_data(features, labeled)
            self._train_X = X
            self._train_y = y
        return self

    @property
    def is_fitted(self) -> bool:
        return self._train_X is not None

    def fit_from(self, other: "SensorEngine") -> "SensorEngine":
        """Adopt another engine's trained classify stage.

        Lets a streaming deployment reuse a classifier trained over a
        batch span (training data and label encoder are shared, not
        copied).
        """
        if not other.is_fitted:
            raise RuntimeError("source engine is not fitted")
        return self.adopt_training(other._train_X, other._train_y, other.encoder)

    def adopt_training(
        self, X: np.ndarray, y: np.ndarray, encoder: LabelEncoder
    ) -> "SensorEngine":
        """Install a prepared training set as the classify stage's model.

        The classify stage reads ``(X, y, encoder)`` as one unit per
        prediction, and this method replaces all three together — the
        hot-swap primitive the online-retraining service uses to refresh
        the model at a window boundary without any window ever seeing a
        half-installed model.  Callers must not mutate *X*/*y* after
        handing them over.
        """
        if len(X) == 0:
            raise ValueError("training set is empty")
        if len(X) != len(y):
            raise ValueError("X and y row counts differ")
        self._train_X = X
        self._train_y = y
        self.encoder = encoder
        return self

    def classify(self, features: FeatureSet) -> list[ClassifiedOriginator]:
        """Majority-vote classification of every originator in *features*."""
        if self._train_X is None or self._train_y is None:
            raise RuntimeError("engine is not fitted")
        if len(features) == 0:
            self._record_stage("classify")
            return []
        with self._scope():
            with span("stage.classify") as sp:
                votes = majority_vote_predict(
                    self.config.classifier_factory,
                    self._train_X,
                    self._train_y,
                    features.matrix,
                    runs=self.config.majority_runs,
                    seed=self.config.seed,
                )
                names = self.encoder.decode(votes)
                verdicts = [
                    ClassifiedOriginator(
                        originator=int(features.originators[i]),
                        app_class=names[i],
                        footprint=int(features.footprints[i]),
                    )
                    for i in range(len(features))
                ]
            self._record_stage(
                "classify",
                items_in=len(features),
                items_out=len(verdicts),
                seconds=sp.elapsed,
            )
        return verdicts

    def classify_map(self, features: FeatureSet) -> dict[int, str]:
        """Classification as an originator → class mapping."""
        return {c.originator: c.app_class for c in self.classify(features)}

    # -- end to end -----------------------------------------------------

    def _sense(
        self, window: ObservationWindow, classify: bool | None = None
    ) -> SensedWindow:
        run_classify = self.is_fitted if classify is None else classify
        sensed = SensedWindow(window=window)
        with self._scope():
            before = {
                name: self.stats[name].seconds
                for name in ("select", "featurize", "classify")
            }
            selected_before = self.stats["select"].items_out
            with span("window.sense") as sp:
                if self.directory is not None:
                    sensed.features = self.featurize(window)
                    if run_classify:
                        sensed.verdicts = self.classify(sensed.features)
            seconds = {
                name: self.stats[name].seconds - before[name] for name in before
            }
            seconds["total"] = sp.elapsed
            sensed.telemetry = {
                "window_start": window.start,
                "window_end": window.end,
                "originators": len(window),
                "selected": self.stats["select"].items_out - selected_before,
                "featurized": (
                    len(sensed.features) if sensed.features is not None else 0
                ),
                "verdicts": len(sensed.verdicts),
                "seconds": seconds,
            }
            if window.prestage is not None:
                prestage = window.prestage
                sensed.telemetry["sketch"] = {
                    "originators_seen": prestage.originators_seen,
                    "gate_kept": prestage.gate_kept,
                    "gate_dropped": prestage.gate_dropped,
                    "events_unique": prestage.events_unique,
                    "events_duplicate": prestage.events_duplicate,
                    "events_deferred": prestage.events_deferred,
                    "resolver_wholesale": prestage.resolver_wholesale,
                    "resolver_replayed": prestage.resolver_replayed,
                    "memory_bytes": prestage.memory_bytes(),
                }
            if get_registry() is not None:
                observe("repro_window_seconds", sp.elapsed,
                        help="Wall time to sense one observation window.")
                count("repro_windows_sensed_total", 1,
                      help="Observation windows run through select/featurize.")
        return sensed

    def process(
        self,
        entries: Sequence[QueryLogEntry] | Iterable[QueryLogEntry] | EntryBlock,
        start: float,
        end: float,
        classify: bool | None = None,
    ) -> list[SensedWindow]:
        """Run a whole time-ordered log through every stage (batch).

        Slices ``[start, end)`` into config-width windows and runs each
        through select/featurize (and classify when fitted, or when
        *classify* is forced true).  Columnar input
        (:class:`~repro.logstore.EntryBlock`) runs end-to-end as array
        math, bit-identical to the per-object path.
        """
        with self._scope(), span("engine.run"):
            return [
                self._sense(window, classify)
                for window in self.windows(entries, start, end)
            ]

    # -- accounting -----------------------------------------------------

    def accounting(self) -> list[StageStats]:
        """Per-stage stats for everything this engine has processed."""
        with self._scope():
            self._absorb_collector_stats()
        return [self.stats[name] for name in STAGE_NAMES]

    def format_accounting(self) -> str:
        """The per-run accounting report, as an aligned text table."""
        rows = self.accounting()
        headers = ("stage", "in", "out", "dropped", "seconds")
        table = [headers] + [
            (s.name, f"{s.items_in:,}", f"{s.items_out:,}", f"{s.dropped:,}",
             f"{s.seconds:.3f}")
            for s in rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
        lines = []
        for index, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
