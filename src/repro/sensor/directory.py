"""Querier metadata directory: reverse name, ASN, and country lookups.

The sensor classifies originators from *querier* metadata (§ III-C): the
querier's reverse domain name (static features), its AS (via whois in the
paper), and its country (via MaxMind GeoLiteCity).  This module isolates
those lookups behind a small protocol so the pipeline is independent of
where the metadata comes from — in this reproduction a
:class:`WorldDirectory` answers from the synthetic world; in a deployment
it would be a resolver plus whois/GeoIP clients.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.netmodel.world import NameStatus, World
from repro.sensor.keywords import STATIC_CATEGORIES, classify_querier
from repro.telemetry import count as _tcount

__all__ = [
    "QuerierInfo",
    "QuerierDirectory",
    "WorldDirectory",
    "StaticDirectory",
    "ResolvedQuerier",
    "EnrichmentCache",
    "enrich_chunk",
]


@dataclass(frozen=True, slots=True)
class QuerierInfo:
    """Everything the feature extractor needs to know about one querier."""

    addr: int
    name: str | None
    status: NameStatus
    asn: int | None
    country: str | None


class QuerierDirectory(Protocol):
    """Metadata provider; must be cheap to call per unique querier."""

    def lookup(self, addr: int) -> QuerierInfo: ...


class WorldDirectory:
    """Directory backed by the synthetic world (exact whois + GeoIP)."""

    def __init__(self, world: World) -> None:
        self._world = world
        self._by_addr = {q.addr: q for q in world.queriers}

    def lookup(self, addr: int) -> QuerierInfo:
        querier = self._by_addr.get(addr)
        if querier is not None:
            return QuerierInfo(
                addr=addr,
                name=querier.name,
                status=querier.name_status,
                asn=querier.asn,
                country=querier.country,
            )
        # An address we never populated: treat like unassigned space.
        return QuerierInfo(
            addr=addr,
            name=None,
            status=NameStatus.NXDOMAIN,
            asn=self._world.asn_of(addr),
            country=self._world.country_of(addr),
        )


_CATEGORY_INDEX = {category: i for i, category in enumerate(STATIC_CATEGORIES)}


@dataclass(frozen=True, slots=True)
class ResolvedQuerier:
    """One querier fully enriched for featurization.

    The static keyword category (precomputed once, with its feature-vector
    index) plus the AS and country.  This is the scalar view used by the
    per-observation reference paths; batch featurization reads the same
    data as arrays via :meth:`EnrichmentCache.codes`.
    """

    addr: int
    category: str
    category_index: int
    asn: int | None
    country: str | None


def enrich_chunk(
    directory: QuerierDirectory, addrs: Sequence[int] | np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str]]:
    """Classify a chunk of addresses against *directory* (worker side).

    Returns ``(category indices, ASNs, country codes, country table)``
    aligned with *addrs*: ASN is ``-1`` for unknown, country codes index
    into the chunk-local *country table* (``-1`` unknown).  Compact int
    arrays pickle as raw buffers, so this is the unit of work the
    parallel featurize path ships between processes;
    :meth:`EnrichmentCache.prime_arrays` installs the result.
    """
    if isinstance(addrs, np.ndarray):
        addrs = addrs.tolist()
    n = len(addrs)
    categories = np.empty(n, dtype=np.int64)
    asns = np.empty(n, dtype=np.int64)
    country_codes = np.empty(n, dtype=np.int64)
    table: dict[str, int] = {}
    for i, addr in enumerate(addrs):
        info = directory.lookup(addr)
        categories[i] = _CATEGORY_INDEX[classify_querier(info.name, info.status)]
        asns[i] = -1 if info.asn is None else info.asn
        country = info.country
        country_codes[i] = (
            -1 if country is None else table.setdefault(country, len(table))
        )
    return categories, asns, country_codes, list(table)


class EnrichmentCache:
    """Window-scoped querier → (category, ASN, country) cache.

    Featurization needs every querier resolved — name classified into a
    static category, AS and country read — and the same querier typically
    appears under many originators of one observation window.  The cache
    wraps any :class:`QuerierDirectory` and resolves each address exactly
    once, so the window context, the static features, and the dynamic
    features share one round of directory lookups and keyword matching.

    Internally the cache is a column store: a sorted address array with
    aligned category/ASN/country-code columns, so the batch paths read
    enrichment data with one :func:`np.searchsorted` (:meth:`codes`)
    instead of a Python dict get per querier.  The scalar
    :meth:`resolve` view sits on top and is memoized separately.

    Scope one instance to one observation window: the cache never
    invalidates, so mutations of the underlying directory are only picked
    up by the *next* window's cache, matching the paper's
    snapshot-per-interval semantics.  It implements the
    :class:`QuerierDirectory` protocol, so it can be passed anywhere a
    directory is expected.
    """

    #: Telemetry counter names (emitted when a registry is installed).
    _HITS = "repro_enrichment_cache_hits_total"
    _MISSES = "repro_enrichment_cache_misses_total"
    _BUILT = "repro_enrichment_cache_built_total"

    def __init__(self, directory: QuerierDirectory) -> None:
        self._directory = directory
        # Lookup accounting (always-on plain ints; mirrored to the
        # ambient metrics registry when one is installed).
        self.hits = 0
        self.misses = 0
        self.built = 0
        # Consolidated column store, sorted by address.
        self._addrs = np.empty(0, dtype=np.int64)
        self._categories = np.empty(0, dtype=np.int64)
        self._asns = np.empty(0, dtype=np.int64)
        self._ccs = np.empty(0, dtype=np.int64)
        # Country-code interning (code → name is ``_countries[code]``).
        self._country_codes: dict[str, int] = {}
        self._countries: list[str] = []
        # Scalar-resolved entries awaiting consolidation, and the memo of
        # constructed ResolvedQuerier objects (batch priming skips both).
        self._pending: dict[int, tuple[int, int, int]] = {}
        self._memo: dict[int, ResolvedQuerier] = {}

    @classmethod
    def ensure(cls, directory: QuerierDirectory) -> "EnrichmentCache":
        """*directory* itself if it is already a cache, else a fresh wrap."""
        return directory if isinstance(directory, cls) else cls(directory)

    @property
    def directory(self) -> QuerierDirectory:
        """The wrapped (uncached) directory."""
        return self._directory

    def __len__(self) -> int:
        return len(self._addrs) + len(self._pending)

    def __contains__(self, addr: int) -> bool:
        return addr in self._pending or self._find(addr) >= 0

    def lookup(self, addr: int) -> QuerierInfo:
        return self._directory.lookup(addr)

    def _find(self, addr: int) -> int:
        """Position of *addr* in the consolidated columns, or -1."""
        pos = int(np.searchsorted(self._addrs, addr))
        if pos < len(self._addrs) and int(self._addrs[pos]) == addr:
            return pos
        return -1

    def _intern_country(self, country: str) -> int:
        code = self._country_codes.get(country)
        if code is None:
            code = len(self._countries)
            self._country_codes[country] = code
            self._countries.append(country)
        return code

    def _consolidate(self) -> None:
        """Merge scalar-resolved pending entries into the column store."""
        if not self._pending:
            return
        new_addrs = np.fromiter(self._pending.keys(), np.int64, len(self._pending))
        triples = np.array(list(self._pending.values()), dtype=np.int64)
        self._merge(new_addrs, triples[:, 0], triples[:, 1], triples[:, 2])
        self._pending.clear()

    def _merge(
        self,
        addrs: np.ndarray,
        categories: np.ndarray,
        asns: np.ndarray,
        ccs: np.ndarray,
    ) -> None:
        """Merge new (disjoint) rows into the sorted column store."""
        merged = np.concatenate([self._addrs, addrs])
        order = np.argsort(merged, kind="stable")
        self._addrs = merged[order]
        self._categories = np.concatenate([self._categories, categories])[order]
        self._asns = np.concatenate([self._asns, asns])[order]
        self._ccs = np.concatenate([self._ccs, ccs])[order]

    def resolve(self, addr: int) -> ResolvedQuerier:
        """The enriched view of one querier (memoized)."""
        hit = self._memo.get(addr)
        if hit is not None:
            self.hits += 1
            _tcount(self._HITS, 1, help="Enrichment cache lookups served warm.")
            return hit
        row = self._pending.get(addr)
        if row is None:
            pos = self._find(addr)
            if pos >= 0:
                row = (
                    int(self._categories[pos]),
                    int(self._asns[pos]),
                    int(self._ccs[pos]),
                )
        if row is None:
            self.misses += 1
            _tcount(self._MISSES, 1,
                    help="Enrichment cache lookups that went to the directory.")
            info = self._directory.lookup(addr)
            return self.prime(
                addr, classify_querier(info.name, info.status), info.asn, info.country
            )
        self.hits += 1
        _tcount(self._HITS, 1, help="Enrichment cache lookups served warm.")
        category_index, asn, cc = row
        hit = ResolvedQuerier(
            addr=addr,
            category=STATIC_CATEGORIES[category_index],
            category_index=category_index,
            asn=None if asn < 0 else asn,
            country=None if cc < 0 else self._countries[cc],
        )
        self._memo[addr] = hit
        return hit

    def prime(
        self, addr: int, category: str, asn: int | None, country: str | None
    ) -> ResolvedQuerier:
        """Install one externally resolved querier.

        An already-cached address is left untouched (the cached values
        win — the cache is a per-window snapshot).
        """
        if addr in self:
            return self.resolve(addr)
        self.built += 1
        _tcount(self._BUILT, 1, help="Enrichment cache entries built.")
        category_index = _CATEGORY_INDEX[category]
        cc = -1 if country is None else self._intern_country(country)
        self._pending[addr] = (category_index, -1 if asn is None else asn, cc)
        hit = ResolvedQuerier(
            addr=addr,
            category=category,
            category_index=category_index,
            asn=asn,
            country=country,
        )
        self._memo[addr] = hit
        return hit

    def prime_arrays(
        self,
        addrs: np.ndarray,
        categories: np.ndarray,
        asns: np.ndarray,
        country_codes: np.ndarray,
        countries: list[str],
    ) -> None:
        """Install a chunk of externally resolved queriers (worker results).

        Arguments are exactly one :func:`enrich_chunk` result plus the
        addresses it covered; *country_codes* are remapped from the
        chunk-local table to this cache's interned codes.  The addresses
        must not already be cached (callers chunk
        :meth:`missing` output, which guarantees that) and must not
        repeat within the call.
        """
        self._consolidate()
        self.built += len(addrs)
        _tcount(self._BUILT, len(addrs), help="Enrichment cache entries built.")
        if len(countries):
            mapping = np.fromiter(
                (self._intern_country(c) for c in countries), np.int64, len(countries)
            )
            ccs = np.where(
                country_codes >= 0, mapping[np.maximum(country_codes, 0)], -1
            )
        else:
            ccs = np.full(len(addrs), -1, dtype=np.int64)
        self._merge(
            addrs.astype(np.int64),
            categories.astype(np.int64),
            asns.astype(np.int64),
            ccs,
        )

    def country_names(self, codes: np.ndarray | Sequence[int]) -> list[str]:
        """Country names for interned codes (callers filter ``>= 0``).

        Codes are cache-internal (each cache interns independently), so
        cross-cache aggregation — e.g. the federation driver unioning
        per-shard distinct-country sets — must go through the names.
        """
        return [self._countries[int(code)] for code in codes]

    def missing(self, addrs: np.ndarray) -> np.ndarray:
        """Sorted distinct addresses from *addrs* not yet cached."""
        self._consolidate()
        distinct = np.unique(addrs.astype(np.int64))
        if len(self._addrs) == 0:
            return distinct
        pos = np.searchsorted(self._addrs, distinct)
        found = (pos < len(self._addrs)) & (
            self._addrs[np.minimum(pos, len(self._addrs) - 1)] == distinct
        )
        return distinct[~found]

    def codes(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized enrichment for an address array.

        Returns ``(category indices, ASNs, country codes)`` aligned with
        *addrs* (``-1`` encodes unknown; country codes are interned per
        cache).  Unresolved addresses are resolved through the directory
        first; on a warm cache this is pure array math — one
        searchsorted plus three gathers.
        """
        addrs = addrs.astype(np.int64, copy=False)
        unresolved = self.missing(addrs)
        self.misses += len(unresolved)
        self.hits += len(addrs) - len(unresolved)
        _tcount(self._MISSES, len(unresolved),
                help="Enrichment cache lookups that went to the directory.")
        _tcount(self._HITS, len(addrs) - len(unresolved),
                help="Enrichment cache lookups served warm.")
        if len(unresolved):
            self.prime_arrays(unresolved, *enrich_chunk(self._directory, unresolved))
        if len(addrs) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        pos = np.searchsorted(self._addrs, addrs)
        return self._categories[pos], self._asns[pos], self._ccs[pos]


class StaticDirectory:
    """In-memory directory for tests and serialized datasets."""

    def __init__(self, infos: dict[int, QuerierInfo] | None = None) -> None:
        self._infos = dict(infos or {})

    def add(self, info: QuerierInfo) -> None:
        self._infos[info.addr] = info

    def lookup(self, addr: int) -> QuerierInfo:
        info = self._infos.get(addr)
        if info is None:
            return QuerierInfo(
                addr=addr, name=None, status=NameStatus.NXDOMAIN, asn=None, country=None
            )
        return info
