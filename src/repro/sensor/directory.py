"""Querier metadata directory: reverse name, ASN, and country lookups.

The sensor classifies originators from *querier* metadata (§ III-C): the
querier's reverse domain name (static features), its AS (via whois in the
paper), and its country (via MaxMind GeoLiteCity).  This module isolates
those lookups behind a small protocol so the pipeline is independent of
where the metadata comes from — in this reproduction a
:class:`WorldDirectory` answers from the synthetic world; in a deployment
it would be a resolver plus whois/GeoIP clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.netmodel.world import NameStatus, World

__all__ = ["QuerierInfo", "QuerierDirectory", "WorldDirectory", "StaticDirectory"]


@dataclass(frozen=True, slots=True)
class QuerierInfo:
    """Everything the feature extractor needs to know about one querier."""

    addr: int
    name: str | None
    status: NameStatus
    asn: int | None
    country: str | None


class QuerierDirectory(Protocol):
    """Metadata provider; must be cheap to call per unique querier."""

    def lookup(self, addr: int) -> QuerierInfo: ...


class WorldDirectory:
    """Directory backed by the synthetic world (exact whois + GeoIP)."""

    def __init__(self, world: World) -> None:
        self._world = world
        self._by_addr = {q.addr: q for q in world.queriers}

    def lookup(self, addr: int) -> QuerierInfo:
        querier = self._by_addr.get(addr)
        if querier is not None:
            return QuerierInfo(
                addr=addr,
                name=querier.name,
                status=querier.name_status,
                asn=querier.asn,
                country=querier.country,
            )
        # An address we never populated: treat like unassigned space.
        return QuerierInfo(
            addr=addr,
            name=None,
            status=NameStatus.NXDOMAIN,
            asn=self._world.asn_of(addr),
            country=self._world.country_of(addr),
        )


class StaticDirectory:
    """In-memory directory for tests and serialized datasets."""

    def __init__(self, infos: dict[int, QuerierInfo] | None = None) -> None:
        self._infos = dict(infos or {})

    def add(self, info: QuerierInfo) -> None:
        self._infos[info.addr] = info

    def lookup(self, addr: int) -> QuerierInfo:
        info = self._infos.get(addr)
        if info is None:
            return QuerierInfo(
                addr=addr, name=None, status=NameStatus.NXDOMAIN, asn=None, country=None
            )
        return info
