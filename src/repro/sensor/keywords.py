"""The paper's querier-name keyword rules (§ III-C, static features).

Categories, their keywords, and the matching discipline come straight
from the text:

* matching is by name component, favoring the left-most component;
* within a component, the first matching rule in the listed order wins
  (so both ``mail.ns.example.com`` and ``mail-ns.example.com`` are mail —
  note the paper lists *home* first in its feature catalogue but its
  worked example requires *mail* to outrank *ns*; we therefore order
  rules mail-first among the service categories while keeping the
  home/mail overlap ("pop" appears in both lists) resolved toward mail,
  which also matches anti-spam practice);
* CDN/AWS/Azure/Google are recognized by registered-domain suffix, and
  only when no component keyword matched (``mail.google.com`` is mail);
* queriers with no usable reverse name are *nxdomain* (no PTR record) or
  *unreach* (their reverse zone's servers cannot be reached).

This matcher is intentionally independent of the name *generator* in
:mod:`repro.netmodel.namespace`: it implements the published rules, and
runs against whatever names the world synthesizes.
"""

from __future__ import annotations

import re

from repro.netmodel.world import NameStatus

__all__ = [
    "STATIC_CATEGORIES",
    "CATEGORY_KEYWORDS",
    "SUFFIX_CATEGORIES",
    "classify_name",
    "classify_querier",
]

#: Feature-vector order for the static features; the three pseudo
#: categories (other/unreach/nxdomain) close the list.
STATIC_CATEGORIES: tuple[str, ...] = (
    "home",
    "mail",
    "ns",
    "fw",
    "antispam",
    "www",
    "ntp",
    "cdn",
    "aws",
    "ms",
    "google",
    "other",
    "unreach",
    "nxdomain",
)

#: Component-keyword rules in match order (see module docstring for why
#: mail precedes home).  Keywords match a token exactly or as its prefix
#: ("send*" in the paper; dynamic19 matches "dynamic", resolver matches
#: "resolv").
CATEGORY_KEYWORDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "mail",
        (
            "mail", "mx", "smtp", "post", "correo", "poczta", "send", "lists",
            "newsletter", "zimbra", "mta", "pop", "imap",
        ),
    ),
    (
        "home",
        (
            "ap", "cable", "cpe", "customer", "dsl", "dynamic", "fiber",
            "flets", "home", "host", "ip", "net", "pool", "retail", "user",
        ),
    ),
    ("antispam", ("ironport", "spam")),
    ("ns", ("cns", "dns", "ns", "cache", "resolv", "name")),
    ("fw", ("firewall", "wall", "fw")),
    ("www", ("www",)),
    ("ntp", ("ntp",)),
)

#: Registered-domain suffixes for infrastructure categories.
SUFFIX_CATEGORIES: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "cdn",
        (
            "akamai.net", "akamaitechnologies.com", "akamaiedge.net",
            "edgecastcdn.net", "edgecast.com", "cdngc.net", "cdnetworks.com",
            "llnw.net", "llnwd.net",
        ),
    ),
    ("aws", ("amazonaws.com",)),
    ("ms", ("azure.com", "cloudapp.net", "azurewebsites.net")),
    ("google", ("google.com", "googlebot.com", "1e100.net", "googleusercontent.com")),
)

_TOKEN_SPLIT = re.compile(r"[^a-z]+")


def _component_category(component: str) -> str | None:
    """First matching category for one name component, or None."""
    tokens = [t for t in _TOKEN_SPLIT.split(component.lower()) if t]
    if not tokens:
        return None
    for category, keywords in CATEGORY_KEYWORDS:
        for token in tokens:
            for keyword in keywords:
                if token.startswith(keyword):
                    return category
    return None


def classify_name(name: str) -> str:
    """Static category of one reverse domain name.

    Walks components left to right applying the keyword rules, then falls
    back to registered-domain suffixes, then ``other``.
    """
    lowered = name.lower().rstrip(".")
    components = lowered.split(".")
    # The TLD never carries host semantics — and ".net" would otherwise
    # trip the home keyword "net" for every name under that TLD.
    for component in components[:-1] if len(components) > 1 else components:
        category = _component_category(component)
        if category is not None:
            return category
    for category, suffixes in SUFFIX_CATEGORIES:
        for suffix in suffixes:
            if lowered == suffix or lowered.endswith("." + suffix):
                return category
    return "other"


def classify_querier(name: str | None, status: NameStatus) -> str:
    """Static category for a querier, including the nameless cases."""
    if status is NameStatus.UNREACH:
        return "unreach"
    if status is NameStatus.NXDOMAIN or name is None:
        return "nxdomain"
    return classify_name(name)
