"""Dynamic features: temporal and spatial querier patterns (§ III-C).

Nine features per originator:

* ``queries_per_querier`` — mean deduped queries per unique querier
  (a rough rate proxy; caching prevents an exact rate, Table II);
* ``persistence`` — fraction of 10-minute periods of the observation
  interval in which the originator appears (the paper counts periods;
  we normalize by the interval's period count so the feature is
  comparable across 36-hour and 7-day windows);
* ``local_entropy`` — normalized Shannon entropy of querier /24 prefixes;
* ``global_entropy`` — normalized Shannon entropy of querier /8 prefixes
  (/8s are assigned geographically, so this captures global spread);
* ``unique_as`` / ``unique_country`` — distinct querier ASes/countries,
  normalized by how many appear in the whole window (so the feature
  reflects the originator's share of the observable world);
* ``queriers_per_country`` / ``queriers_per_as`` — mean unique queriers
  per country/AS, normalized by the window's total unique queriers
  (high values mean geographically/topologically concentrated activity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netmodel.addressing import slash8, slash24
from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.directory import EnrichmentCache, QuerierDirectory

__all__ = [
    "PERIOD_SECONDS",
    "DYNAMIC_FEATURE_NAMES",
    "WindowContext",
    "dynamic_features",
    "dynamic_feature_dict",
]

PERIOD_SECONDS = 600.0

DYNAMIC_FEATURE_NAMES: tuple[str, ...] = (
    "dyn_queries_per_querier",
    "dyn_persistence",
    "dyn_local_entropy",
    "dyn_global_entropy",
    "dyn_unique_as",
    "dyn_unique_country",
    "dyn_queriers_per_country",
    "dyn_queriers_per_as",
)


@dataclass(frozen=True, slots=True)
class WindowContext:
    """Window-wide totals used to normalize the spatial features."""

    start: float
    end: float
    total_ases: int
    total_countries: int
    total_queriers: int

    @property
    def periods(self) -> int:
        return max(1, int(np.ceil((self.end - self.start) / PERIOD_SECONDS)))

    @classmethod
    def from_window(
        cls, window: ObservationWindow, directory: QuerierDirectory
    ) -> "WindowContext":
        cache = EnrichmentCache.ensure(directory)
        if window.querier_roster is not None:
            # Sketch-mode windows materialize survivors only, but carry
            # the exact pre-gate querier roster — use it so the
            # normalizers match what the exact path would compute over
            # the full window.
            addrs = np.asarray(window.querier_roster, dtype=np.int64)
        else:
            queriers: set[int] = set()
            for observation in window.observations.values():
                queriers |= observation.unique_queriers
            addrs = np.fromiter(queriers, np.int64, len(queriers))
        _, asns, country_codes = cache.codes(addrs)
        return cls(
            start=window.start,
            end=window.end,
            total_ases=max(1, len(np.unique(asns[asns >= 0]))),
            total_countries=max(1, len(np.unique(country_codes[country_codes >= 0]))),
            total_queriers=max(1, len(addrs)),
        )


def _normalized_entropy(values: list[int], support: int | None = None) -> float:
    """Shannon entropy of the empirical distribution, scaled to [0, 1].

    Normalized by ``log(min(n, support))`` — the maximum entropy
    achievable with n samples over a *support*-sized alphabet — so that
    an even spread gives 1.0 and a single repeated value 0.0.  The /8
    global entropy passes support=256 (the /8 alphabet is the binding
    constraint for large querier sets); the /24 local entropy leaves it
    unbounded (distinct /24s vastly outnumber queriers).  A single
    sample is defined as 0 (no spread to measure).
    """
    n = len(values)
    if n <= 1:
        return 0.0
    _, counts = np.unique(np.asarray(values), return_counts=True)
    probabilities = counts / n
    entropy = float(-(probabilities * np.log(probabilities)).sum())
    ceiling = float(np.log(min(n, support) if support else n))
    return min(1.0, entropy / ceiling) if ceiling > 0 else 0.0


def dynamic_features(
    observation: OriginatorObservation,
    directory: QuerierDirectory,
    context: WindowContext,
) -> np.ndarray:
    """The eight dynamic features for one originator."""
    queriers = sorted(observation.unique_queriers)
    if not queriers:
        raise ValueError("observation has no queriers")
    cache = EnrichmentCache.ensure(directory)
    n_queriers = len(queriers)
    queries_per_querier = observation.query_count / n_queriers

    # A timestamp exactly at window.end would index period `periods` —
    # one past the last real period — so clamp to the final period.
    periods = {
        min(int((ts - context.start) // PERIOD_SECONDS), context.periods - 1)
        for ts in observation.timestamps
    }
    persistence = len(periods) / context.periods

    local_entropy = _normalized_entropy([slash24(a) for a in queriers])
    global_entropy = _normalized_entropy([slash8(a) for a in queriers], support=256)

    ases: set[int] = set()
    countries: set[str] = set()
    for addr in queriers:
        resolved = cache.resolve(addr)
        if resolved.asn is not None:
            ases.add(resolved.asn)
        if resolved.country is not None:
            countries.add(resolved.country)
    n_ases = max(1, len(ases))
    n_countries = max(1, len(countries))
    return np.array(
        [
            queries_per_querier,
            persistence,
            local_entropy,
            global_entropy,
            len(ases) / context.total_ases,
            len(countries) / context.total_countries,
            (n_queriers / n_countries) / context.total_queriers,
            (n_queriers / n_ases) / context.total_queriers,
        ]
    )


def dynamic_feature_dict(
    observation: OriginatorObservation,
    directory: QuerierDirectory,
    context: WindowContext,
) -> dict[str, float]:
    """Same vector keyed by feature name."""
    vector = dynamic_features(observation, directory, context)
    return dict(zip(DYNAMIC_FEATURE_NAMES, vector.tolist()))
