"""Operational sensor reports: one window's findings as readable text.

The paper positions backscatter as input to "detection and response"
(§ I); an operator consuming the sensor does so through a periodic
report.  :func:`build_report` and :func:`render_report` turn one
observation window — population, class mix, the largest originators,
arrivals/departures against the previous window, and any class surges —
into markdown text, built entirely from the public sensor APIs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.netmodel.addressing import ip_to_str, slash24
from repro.sensor.collection import ObservationWindow

if TYPE_CHECKING:  # avoid a sensor -> analysis import cycle at runtime
    from repro.analysis.alerts import Alert

__all__ = ["WindowReport", "build_report", "render_report"]


@dataclass(slots=True)
class WindowReport:
    """Structured findings for one window, ready to render or ship."""

    start_day: float
    end_day: float
    observed_originators: int
    analyzable_originators: int
    class_counts: dict[str, int]
    top_originators: list[tuple[int, int, str]]
    """(address, footprint, class) for the biggest footprints."""
    new_originators: set[int] = field(default_factory=set)
    departed_originators: set[int] = field(default_factory=set)
    alerts: list["Alert"] = field(default_factory=list)
    dense_blocks: list[tuple[int, int]] = field(default_factory=list)
    """(/24 key, classified members) for blocks hosting several originators."""


def build_report(
    window: ObservationWindow,
    classification: dict[int, str],
    previous_classification: dict[int, str] | None = None,
    alerts: list["Alert"] | None = None,
    min_queriers: int = 20,
    top: int = 10,
    dense_block_size: int = 3,
) -> WindowReport:
    """Assemble a report from one window's observations + classification."""
    analyzable = [
        o for o in window.observations.values() if o.footprint >= min_queriers
    ]
    ranked = sorted(analyzable, key=lambda o: (-o.footprint, o.originator))
    top_rows = [
        (o.originator, o.footprint, classification.get(o.originator, "?"))
        for o in ranked[:top]
    ]
    current = set(classification)
    previous = set(previous_classification or {})
    blocks = Counter(slash24(o) for o in classification)
    dense = sorted(
        ((b, n) for b, n in blocks.items() if n >= dense_block_size),
        key=lambda kv: -kv[1],
    )
    return WindowReport(
        start_day=window.start / 86400.0,
        end_day=window.end / 86400.0,
        observed_originators=len(window),
        analyzable_originators=len(analyzable),
        class_counts=dict(Counter(classification.values())),
        top_originators=top_rows,
        new_originators=current - previous if previous_classification is not None else set(),
        departed_originators=previous - current,
        alerts=list(alerts or []),
        dense_blocks=dense,
    )


def render_report(report: WindowReport) -> str:
    """Render a report as plain markdown text."""
    lines = [
        f"# Backscatter sensor report — days {report.start_day:.1f} to {report.end_day:.1f}",
        "",
        f"* originators observed: {report.observed_originators}"
        f" (analyzable: {report.analyzable_originators})",
    ]
    if report.class_counts:
        mix = ", ".join(
            f"{name}: {count}"
            for name, count in sorted(report.class_counts.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"* class mix: {mix}")
    if report.new_originators or report.departed_originators:
        lines.append(
            f"* churn: +{len(report.new_originators)} new, "
            f"-{len(report.departed_originators)} departed"
        )
    if report.alerts:
        lines.append("")
        lines.append("## Alerts")
        for alert in report.alerts:
            lines.append(
                f"* **{alert.app_class} surge** on day {alert.day:.0f}: "
                f"{alert.observed} originators vs baseline {alert.baseline:.0f} "
                f"(score {alert.score:.1f})"
            )
    if report.top_originators:
        lines.append("")
        lines.append("## Largest originators")
        for address, footprint, app_class in report.top_originators:
            lines.append(f"* {ip_to_str(address):<16} {footprint:>6} queriers  {app_class}")
    if report.dense_blocks:
        lines.append("")
        lines.append("## Dense /24 blocks (possible teams)")
        for block, members in report.dense_blocks:
            lines.append(f"* {ip_to_str(block << 8)}/24 — {members} classified originators")
    return "\n".join(lines) + "\n"
