"""Static features: querier-name category fractions (§ III-C).

For each originator, the fraction of its unique queriers whose reverse
names fall into each keyword category.  Fractions (not absolute counts)
make static features independent of query rate, as the paper requires;
by construction each originator's static vector sums to exactly 1.
"""

from __future__ import annotations

import numpy as np

from repro.sensor.collection import OriginatorObservation
from repro.sensor.directory import EnrichmentCache, QuerierDirectory
from repro.sensor.keywords import STATIC_CATEGORIES

__all__ = ["STATIC_FEATURE_NAMES", "static_features", "static_feature_dict"]

STATIC_FEATURE_NAMES: tuple[str, ...] = tuple(
    f"static_{category}" for category in STATIC_CATEGORIES
)


def static_features(
    observation: OriginatorObservation, directory: QuerierDirectory
) -> np.ndarray:
    """Category-fraction vector over the observation's unique queriers.

    Pass an :class:`EnrichmentCache` as *directory* to share querier
    resolution with the dynamic features and the window context.
    """
    queriers = observation.unique_queriers
    if not queriers:
        raise ValueError("observation has no queriers")
    cache = EnrichmentCache.ensure(directory)
    counts = np.zeros(len(STATIC_CATEGORIES))
    for addr in queriers:
        counts[cache.resolve(addr).category_index] += 1.0
    return counts / counts.sum()


def static_feature_dict(
    observation: OriginatorObservation, directory: QuerierDirectory
) -> dict[str, float]:
    """Same vector keyed by category name, for reports and case studies."""
    vector = static_features(observation, directory)
    return dict(zip(STATIC_CATEGORIES, vector.tolist()))
