"""Streaming backscatter collection: the canonical windowing + dedup.

This module is the **single** windowing/dedup implementation of the
sensor.  The batch entry points (:func:`repro.sensor.collection.collect_window`
and the batch side of :class:`repro.sensor.engine.SensorEngine`) are thin
adapters over :class:`StreamingCollector`, so sensing semantics are
defined exactly once, here:

* **30 s dedup, scoped to the observation window** — repeats of the same
  (querier, originator) pair within ``dedup_window`` seconds of the last
  kept query are dropped (§ III-A's "eliminate duplicate queries from the
  same querier in a 30 s window").  Dedup state resets at window
  boundaries, so every :class:`~repro.sensor.collection.ObservationWindow`
  is a pure function of its own slice of the log.  A burst that straddles
  a boundary therefore starts a fresh dedup scope in the new window; the
  edge effect is at most one extra kept query per pair per boundary,
  negligible against day-to-week windows, and in exchange windows are
  reproducible and shardable in isolation.
* **bounded reordering** — entries may arrive up to ``reorder_slack``
  seconds behind the newest-seen timestamp (network capture reorders
  packets).  Accepted entries are buffered in a small timestamp-ordered
  heap and only processed once the watermark (newest timestamp minus
  slack) passes them, so the dedup/windowing core always sees a
  time-ordered stream.  Input whose disorder is bounded by the slack
  yields **identical** windows to a sorted batch pass; strictly-late
  entries are counted and dropped rather than corrupting closed windows.
* **bounded state** — dedup state lives per open window and is pruned as
  the watermark advances, so memory is O(active pairs + buffered slack),
  not O(log).

These guarantees are enforced by the batch/streaming equivalence
property tests in ``tests/test_engine.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.dnssim.message import QueryLogEntry
from repro.logstore.ops import dedup_mask
from repro.sensor.collection import (
    DEDUP_WINDOW_SECONDS,
    ObservationWindow,
    OriginatorObservation,
    extend_window_arrays,
)

if TYPE_CHECKING:
    from repro.logstore import EntryBlock
    from repro.sketch.prestage import SketchPreStage

__all__ = ["StreamingStats", "StreamingCollector"]


@dataclass(slots=True)
class StreamingStats:
    """Ingest accounting.

    ``reordered`` counts entries that arrived behind the newest-seen
    timestamp but within ``reorder_slack`` — accepted disorder, the
    reorder buffer's workload.  ``late_dropped`` counts entries beyond
    the slack, which are dropped.  The engine publishes both (plus
    dedup and window counts) as telemetry counters when a metrics
    registry is installed (``repro_stream_*_total``).
    """

    ingested: int = 0
    deduplicated: int = 0
    late_dropped: int = 0
    reordered: int = 0
    windows_emitted: int = 0


class StreamingCollector:
    """Online windowing + dedup over a (nearly) time-ordered entry feed.

    Parameters
    ----------
    window_seconds:
        Observation interval length; windows are aligned to multiples of
        this from ``origin``.
    origin:
        Timestamp where window 0 begins.
    dedup_window:
        Per-(querier, originator) duplicate suppression horizon.  Dedup
        state is scoped to the observation window (see module docstring).
    reorder_slack:
        How far behind the newest-seen timestamp an entry may arrive and
        still be accepted.  Accepted entries are re-ordered internally,
        so any input whose disorder is bounded by the slack produces the
        same windows as sorted input.  Entries later than the slack are
        dropped (counted in ``stats.late_dropped``); windows are only
        emitted once the watermark passes their end, so accepted
        reordering can never mutate an emitted window.
    on_window:
        Optional callback invoked with each completed window.
    prestage_factory:
        Optional factory building one
        :class:`~repro.sketch.prestage.SketchPreStage` per observation
        window (sketch mode, single-pass).  When set, the pre-stage
        replaces the exact dedup dict: every processed entry is first
        summarized, ``DUPLICATE`` verdicts are counted as deduplicated,
        ``DEFER`` verdicts are summarized but not materialized, and only
        ``KEEP`` verdicts (promoted originators) build exact
        observations.  Emitted windows carry the pre-stage and its exact
        querier roster (``window.prestage`` / ``window.querier_roster``).
    """

    def __init__(
        self,
        window_seconds: float,
        origin: float = 0.0,
        dedup_window: float = DEDUP_WINDOW_SECONDS,
        reorder_slack: float = 2.0,
        on_window: Callable[[ObservationWindow], None] | None = None,
        prestage_factory: "Callable[[], SketchPreStage] | None" = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if dedup_window < 0 or reorder_slack < 0:
            raise ValueError("dedup_window and reorder_slack must be non-negative")
        self.window_seconds = window_seconds
        self.origin = origin
        self.dedup_window = dedup_window
        self.reorder_slack = reorder_slack
        self.on_window = on_window
        self.stats = StreamingStats()
        self._high_water = float("-inf")
        self._emitted_through = origin
        # Reorder buffer: (timestamp, arrival seq, querier, originator),
        # popped in time order once the watermark passes the timestamp.
        # Arrival seq breaks timestamp ties, so equal-timestamp entries
        # always release in arrival order — chunked block ingest relies
        # on this determinism matching the per-entry path exactly.
        self._pending: list[tuple[float, int, int, int]] = []
        self._seq = 0
        # Ingest count at the last dedup prune.  The prune cadence is a
        # high-water threshold on this delta (not a modulo on the total):
        # block ingest advances ``stats.ingested`` by chunk-sized jumps,
        # which can skip any particular modulo value indefinitely.
        self._pruned_at_ingested = 0
        # Dedup state for the window currently being filled (processing
        # is time-ordered, so only one window accumulates at a time).
        self._dedup_index: int | None = None
        self._last_kept: dict[tuple[int, int], float] = {}
        self._open: dict[int, ObservationWindow] = {}
        self._ready: list[ObservationWindow] = []
        self._prestage_factory = prestage_factory
        self._prestage: "SketchPreStage | None" = None

    # ------------------------------------------------------------------

    def _window_index(self, timestamp: float) -> int:
        return int((timestamp - self.origin) // self.window_seconds)

    def _window_for(self, index: int) -> ObservationWindow:
        window = self._open.get(index)
        if window is None:
            window = ObservationWindow(
                start=self.origin + index * self.window_seconds,
                end=self.origin + (index + 1) * self.window_seconds,
            )
            self._open[index] = window
        return window

    def ingest(self, entry: QueryLogEntry) -> None:
        """Feed one entry; may close windows as the watermark advances.

        This is the thin per-object adapter over the same core the
        columnar :meth:`ingest_block` path uses; the two are pinned
        equivalent by property tests.
        """
        self.stats.ingested += 1
        timestamp = entry.timestamp
        if timestamp < self.origin:
            self.stats.late_dropped += 1
            return
        if timestamp < self._high_water - self.reorder_slack:
            self.stats.late_dropped += 1
            return
        if timestamp > self._high_water:
            self._high_water = timestamp
        elif timestamp < self._high_water:
            self.stats.reordered += 1
        if self.reorder_slack == 0:
            # Fast path: watermark == high water, the entry is released
            # immediately — no buffering needed.
            self._process(timestamp, entry.querier, entry.originator)
        else:
            heapq.heappush(
                self._pending,
                (timestamp, self._seq, entry.querier, entry.originator),
            )
            self._seq += 1
        self._release(self._high_water - self.reorder_slack)

    def ingest_many(self, entries: Iterable[QueryLogEntry]) -> None:
        for entry in entries:
            self.ingest(entry)

    def ingest_block(self, block: "EntryBlock") -> None:
        """Feed one columnar block through the vectorized ingest core."""
        self.ingest_arrays(block.timestamps, block.queriers, block.originators)

    def ingest_arrays(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> None:
        """Vectorized chunk ingest: same semantics as per-entry ``ingest``.

        Lateness/reorder accounting, watermark advancement, and release
        ordering are computed as array math; the released pool is then
        processed per window index with the columnar dedup
        (:func:`repro.logstore.dedup_mask`) carrying the exact
        ``_last_kept`` state across chunks.  Entries the watermark has
        not passed are parked in the same ``(timestamp, seq, querier,
        originator)`` heap the scalar path uses, so the two paths
        interleave freely.
        """
        ts = np.ascontiguousarray(timestamps, dtype=np.float64)
        qs = np.ascontiguousarray(queriers, dtype=np.int64)
        os_ = np.ascontiguousarray(originators, dtype=np.int64)
        n = int(ts.size)
        self.stats.ingested += n
        if n == 0:
            return
        # High water *before* each entry: running max shifted one, seeded
        # with the pre-chunk high water.  Late entries never update the
        # scalar high water, and the running max is unaffected by
        # including them (anything below the watermark is below the max).
        prev_high = self._high_water
        running = np.maximum.accumulate(ts)
        high_before = np.empty(n, dtype=np.float64)
        high_before[0] = prev_high
        if n > 1:
            np.maximum(running[:-1], prev_high, out=high_before[1:])
        late = ts < self.origin
        late |= ts < high_before - self.reorder_slack
        n_late = int(np.count_nonzero(late))
        if n_late:
            self.stats.late_dropped += n_late
            if n_late == n:
                return
            accepted = ~late
            ts = ts[accepted]
            qs = qs[accepted]
            os_ = os_[accepted]
            high_before = high_before[accepted]
        self.stats.reordered += int(np.count_nonzero(ts < high_before))
        # running[-1] may include late entries, but a late entry can never
        # exceed the legitimate high water (slack-late is strictly below
        # it; below-origin values stay below origin, where no window end,
        # buffered entry, or dedup horizon can be affected).
        self._high_water = max(prev_high, float(running[-1]))
        watermark = self._high_water - self.reorder_slack
        if self.reorder_slack == 0 and not self._pending:
            # In-order fast path: with zero slack every accepted entry is
            # released on arrival, and acceptance implies non-decreasing
            # timestamps, so arrival order *is* (timestamp, seq) order.
            self._process_arrays(ts, qs, os_)
        else:
            seqs = np.arange(self._seq, self._seq + ts.size, dtype=np.int64)
            self._seq += int(ts.size)
            releasable = ts <= watermark
            held = np.flatnonzero(~releasable)
            for i in held.tolist():
                heapq.heappush(
                    self._pending,
                    (float(ts[i]), int(seqs[i]), int(qs[i]), int(os_[i])),
                )
            pool_ts = ts[releasable]
            pool_seq = seqs[releasable]
            pool_q = qs[releasable]
            pool_o = os_[releasable]
            if self._pending and self._pending[0][0] <= watermark:
                drained = []
                while self._pending and self._pending[0][0] <= watermark:
                    drained.append(heapq.heappop(self._pending))
                old_ts = np.array([d[0] for d in drained], dtype=np.float64)
                old_seq = np.array([d[1] for d in drained], dtype=np.int64)
                old_q = np.array([d[2] for d in drained], dtype=np.int64)
                old_o = np.array([d[3] for d in drained], dtype=np.int64)
                pool_ts = np.concatenate([old_ts, pool_ts])
                pool_seq = np.concatenate([old_seq, pool_seq])
                pool_q = np.concatenate([old_q, pool_q])
                pool_o = np.concatenate([old_o, pool_o])
            if pool_ts.size:
                # Released entries process in (timestamp, arrival seq)
                # order — identical to the scalar heap's pop order.
                order = np.lexsort((pool_seq, pool_ts))
                self._process_arrays(pool_ts[order], pool_q[order], pool_o[order])
        self._emit_ready(watermark)
        self._prune_dedup(watermark)

    def advance_watermark(self, timestamp: float) -> None:
        """Advance the watermark to *timestamp* without ingesting anything.

        Lets an external coordinator (e.g. the federation driver, which
        owns the global reorder front) close windows a global watermark
        has passed even when this collector's own feed went quiet.  The
        high water only moves forward; subsequent entries below the new
        watermark are late, exactly as if an event at *timestamp* had
        been ingested.
        """
        if timestamp > self._high_water:
            self._high_water = timestamp
        self._release(self._high_water - self.reorder_slack)

    # ------------------------------------------------------------------

    def _release(self, watermark: float) -> None:
        """Process buffered entries up to *watermark*, then emit windows."""
        while self._pending and self._pending[0][0] <= watermark:
            _ts, _seq, querier, originator = heapq.heappop(self._pending)
            self._process(_ts, querier, originator)
        self._emit_ready(watermark)
        # Periodically prune dedup state too old to suppress anything:
        # every future processed entry has timestamp >= watermark, so a
        # pair whose last kept query is a full dedup window behind the
        # watermark is inert.  The cadence is a high-water threshold —
        # "at least 1024 ingested since the last prune" — which fires
        # regardless of step size, unlike a modulo that chunk-sized
        # ``ingested`` jumps can hop over forever.
        if self.stats.ingested - self._pruned_at_ingested >= 1024:
            self._prune_dedup(watermark)

    def _emit_ready(self, watermark: float) -> None:
        for index in sorted(self._open):
            window = self._open[index]
            if window.end <= watermark:
                del self._open[index]
                self._emit(window)
            else:
                break

    def _prune_dedup(self, watermark: float) -> None:
        self._pruned_at_ingested = self.stats.ingested
        if self._last_kept:
            # Keep a pair only while it can still suppress: the smallest
            # timestamp any future processed entry can have is the
            # watermark, so the pair is live iff ``watermark - ts <
            # window`` — the scalar keep predicate's exact float
            # expression (subtraction, not a precomputed horizon, which
            # rounds differently near the boundary).
            window = self.dedup_window
            self._last_kept = {
                key: ts
                for key, ts in self._last_kept.items()
                if watermark - ts < window
            }

    def _enter_window(self, index: int) -> None:
        """Reset dedup scope on entering a new observation window."""
        # Time-ordered processing ⇒ indices never go back.
        self._dedup_index = index
        self._last_kept = {}
        if self._prestage_factory is not None:
            self._prestage = self._prestage_factory()

    def _process(self, timestamp: float, querier: int, originator: int) -> None:
        """Dedup + group one entry.  Entries arrive here in time order."""
        index = self._window_index(timestamp)
        if index != self._dedup_index:
            self._enter_window(index)
        if self._prestage is not None:
            self._process_sketched(timestamp, querier, originator, index)
            return
        key = (querier, originator)
        last = self._last_kept.get(key)
        if last is not None and timestamp - last < self.dedup_window:
            self.stats.deduplicated += 1
            return
        self._last_kept[key] = timestamp
        window = self._window_for(index)
        observation = window.observations.get(originator)
        if observation is None:
            observation = OriginatorObservation(originator=originator)
            window.observations[originator] = observation
        observation.add(timestamp, querier)

    def _process_arrays(
        self, ts: np.ndarray, qs: np.ndarray, os_: np.ndarray
    ) -> None:
        """Columnar core: dedup + group a time-ordered released pool.

        Splits the pool at observation-window boundaries (timestamps are
        sorted, so the window index column is non-decreasing), resets
        dedup scope per window exactly like the scalar path, and runs
        the vectorized dedup with ``_last_kept`` as carry state so a
        window fed across many chunks dedups identically to one pass.
        Sketch mode routes each window segment through the pre-stage's
        array-native :meth:`~repro.sketch.prestage.SketchPreStage.observe_arrays`
        (vectorized dedup + two-tier promotion resolver), whose verdict
        sequence is pinned identical to the scalar per-entry core.
        """
        if ts.size == 0:
            return
        indices = np.floor_divide(ts - self.origin, self.window_seconds).astype(
            np.int64
        )
        uniq, bounds = np.unique(indices, return_index=True)
        bounds = np.append(bounds, ts.size)
        for k in range(int(uniq.size)):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            index = int(uniq[k])
            if index != self._dedup_index:
                self._enter_window(index)
            if self._prestage is not None:
                self._process_sketched_arrays(
                    ts[lo:hi], qs[lo:hi], os_[lo:hi], index
                )
                continue
            w_ts = ts[lo:hi]
            w_qs = qs[lo:hi]
            w_os = os_[lo:hi]
            mask, updates = dedup_mask(
                w_ts, w_qs, w_os, self.dedup_window, carry=self._last_kept
            )
            kept = int(np.count_nonzero(mask))
            self.stats.deduplicated += (hi - lo) - kept
            if kept == 0:
                continue
            self._last_kept.update(updates)
            window = self._window_for(index)
            extend_window_arrays(window, w_ts[mask], w_qs[mask], w_os[mask])

    def _process_sketched(
        self, timestamp: float, querier: int, originator: int, index: int
    ) -> None:
        """Sketch mode: summarize first, materialize only KEEP verdicts.

        The pre-stage's bucketed Bloom filter takes over duplicate
        suppression, so the exact ``_last_kept`` dict never grows — the
        constant-memory property sketch mode exists for.
        """
        from repro.sketch.prestage import DEFER, DUPLICATE

        verdict = self._prestage.observe(timestamp, querier, originator)
        if verdict == DUPLICATE:
            self.stats.deduplicated += 1
            return
        window = self._window_for(index)
        if window.prestage is None:
            window.prestage = self._prestage
        if verdict == DEFER:
            return
        observation = window.observations.get(originator)
        if observation is None:
            observation = OriginatorObservation(originator=originator)
            window.observations[originator] = observation
        observation.add(timestamp, querier)

    def _process_sketched_arrays(
        self, ts: np.ndarray, qs: np.ndarray, os_: np.ndarray, index: int
    ) -> None:
        """Sketch mode, columnar: one window segment through the
        pre-stage's array-native verdict path.

        Produces the exact per-entry verdict sequence (pinned by the
        scalar-vs-vectorized property suite): DUPLICATEs accrue to
        ``stats.deduplicated`` per chunk, any non-duplicate opens the
        window and attaches the pre-stage (the first processed event of
        a fresh window can never be a duplicate — its Bloom filter is
        empty — so window-creation timing matches the scalar path), and
        KEEP events materialize in first-promotion order via
        :func:`~repro.sensor.collection.extend_window_arrays`.
        """
        from repro.sketch.prestage import DUPLICATE_CODE

        codes, kept = self._prestage.observe_arrays(ts, qs, os_)
        duplicates = int(np.count_nonzero(codes == DUPLICATE_CODE))
        self.stats.deduplicated += duplicates
        if duplicates == ts.size:
            return
        window = self._window_for(index)
        if window.prestage is None:
            window.prestage = self._prestage
        if kept.size:
            extend_window_arrays(window, ts[kept], qs[kept], os_[kept])

    def _emit(self, window: ObservationWindow) -> None:
        if window.prestage is not None and window.querier_roster is None:
            window.querier_roster = window.prestage.roster_array()
        self.stats.windows_emitted += 1
        self._emitted_through = max(self._emitted_through, window.end)
        self._ready.append(window)
        if self.on_window is not None:
            self.on_window(window)

    # ------------------------------------------------------------------

    def completed_windows(self) -> list[ObservationWindow]:
        """Windows finished so far (drains the internal queue)."""
        out = self._ready
        self._ready = []
        return out

    def flush(self) -> list[ObservationWindow]:
        """Close and return every still-open window (end of stream)."""
        self._release(float("inf"))
        remaining = [self._open[i] for i in sorted(self._open)]
        self._open.clear()
        for window in remaining:
            self._emit(window)
        return self.completed_windows()

    @property
    def pending_windows(self) -> int:
        return len(self._open)

    @property
    def pending_entries(self) -> int:
        """Entries buffered awaiting the watermark (reorder slack)."""
        return len(self._pending)

    @property
    def dedup_state_size(self) -> int:
        return len(self._last_kept)
