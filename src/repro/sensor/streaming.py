"""Streaming backscatter collection: rolling windows over a live feed.

The batch pipeline (:mod:`repro.sensor.collection`) assumes the whole log
is on disk.  A deployed sensor instead tails a query stream (dnstap
socket, SIE channel) and wants per-interval results as soon as each
interval closes.  :class:`StreamingCollector` ingests entries one at a
time, performs the same 30 s per-(querier, originator) dedup online with
bounded memory, and emits a finished
:class:`~repro.sensor.collection.ObservationWindow` whenever the clock
crosses a window boundary.

Guarantees:

* output equivalence — feeding a time-ordered log through the collector
  yields exactly the windows :func:`repro.sensor.collection.collect_window`
  would produce for the same boundaries (tested property);
* bounded state — dedup state older than the dedup window is pruned as
  time advances, so memory is O(active pairs), not O(log);
* tolerance for slightly out-of-order input within a configurable slack
  (network capture reorders packets by milliseconds), with strictly-late
  entries counted and dropped rather than corrupting closed windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.dnssim.message import QueryLogEntry
from repro.sensor.collection import (
    DEDUP_WINDOW_SECONDS,
    ObservationWindow,
    OriginatorObservation,
)

__all__ = ["StreamingStats", "StreamingCollector"]


@dataclass(slots=True)
class StreamingStats:
    """Ingest accounting."""

    ingested: int = 0
    deduplicated: int = 0
    late_dropped: int = 0
    windows_emitted: int = 0


class StreamingCollector:
    """Online windowing + dedup over a (nearly) time-ordered entry feed.

    Parameters
    ----------
    window_seconds:
        Observation interval length; windows are aligned to multiples of
        this from ``origin``.
    origin:
        Timestamp where window 0 begins.
    dedup_window:
        Per-(querier, originator) duplicate suppression horizon.
    reorder_slack:
        How far behind the newest-seen timestamp an entry may arrive and
        still be accepted.  Entries later than this are dropped (counted
        in ``stats.late_dropped``); windows are only emitted once the
        clock passes their end by this slack, so accepted reordering can
        never mutate an emitted window.
    on_window:
        Optional callback invoked with each completed window.
    """

    def __init__(
        self,
        window_seconds: float,
        origin: float = 0.0,
        dedup_window: float = DEDUP_WINDOW_SECONDS,
        reorder_slack: float = 2.0,
        on_window: Callable[[ObservationWindow], None] | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if dedup_window < 0 or reorder_slack < 0:
            raise ValueError("dedup_window and reorder_slack must be non-negative")
        self.window_seconds = window_seconds
        self.origin = origin
        self.dedup_window = dedup_window
        self.reorder_slack = reorder_slack
        self.on_window = on_window
        self.stats = StreamingStats()
        self._high_water = float("-inf")
        self._emitted_through = origin
        self._last_kept: dict[tuple[int, int], float] = {}
        self._open: dict[int, ObservationWindow] = {}
        self._ready: list[ObservationWindow] = []

    # ------------------------------------------------------------------

    def _window_index(self, timestamp: float) -> int:
        return int((timestamp - self.origin) // self.window_seconds)

    def _window_for(self, index: int) -> ObservationWindow:
        window = self._open.get(index)
        if window is None:
            window = ObservationWindow(
                start=self.origin + index * self.window_seconds,
                end=self.origin + (index + 1) * self.window_seconds,
            )
            self._open[index] = window
        return window

    def ingest(self, entry: QueryLogEntry) -> None:
        """Feed one entry; may close windows as the clock advances."""
        self.stats.ingested += 1
        if entry.timestamp < self.origin:
            self.stats.late_dropped += 1
            return
        if entry.timestamp < self._high_water - self.reorder_slack:
            self.stats.late_dropped += 1
            return
        if entry.timestamp > self._high_water:
            self._high_water = entry.timestamp
        key = (entry.querier, entry.originator)
        last = self._last_kept.get(key)
        if last is not None and 0 <= entry.timestamp - last < self.dedup_window:
            self.stats.deduplicated += 1
            return
        self._last_kept[key] = entry.timestamp
        window = self._window_for(self._window_index(entry.timestamp))
        observation = window.observations.get(entry.originator)
        if observation is None:
            observation = OriginatorObservation(originator=entry.originator)
            window.observations[entry.originator] = observation
        observation.add(entry.timestamp, entry.querier)
        self._advance()

    def ingest_many(self, entries: Iterable[QueryLogEntry]) -> None:
        for entry in entries:
            self.ingest(entry)

    def _advance(self) -> None:
        """Emit windows whose end is safely behind the high-water mark."""
        safe_through = self._high_water - self.reorder_slack
        for index in sorted(self._open):
            window = self._open[index]
            if window.end <= safe_through:
                del self._open[index]
                self._emit(window)
            else:
                break
        # Prune dedup state too old to suppress anything anymore.
        horizon = safe_through - self.dedup_window
        if self.stats.ingested % 1024 == 0 and horizon > 0:
            self._last_kept = {
                key: ts for key, ts in self._last_kept.items() if ts >= horizon
            }

    def _emit(self, window: ObservationWindow) -> None:
        self.stats.windows_emitted += 1
        self._emitted_through = max(self._emitted_through, window.end)
        self._ready.append(window)
        if self.on_window is not None:
            self.on_window(window)

    # ------------------------------------------------------------------

    def completed_windows(self) -> list[ObservationWindow]:
        """Windows finished so far (drains the internal queue)."""
        out = self._ready
        self._ready = []
        return out

    def flush(self) -> list[ObservationWindow]:
        """Close and return every still-open window (end of stream)."""
        remaining = [self._open[i] for i in sorted(self._open)]
        self._open.clear()
        for window in remaining:
            self._emit(window)
        return self.completed_windows()

    @property
    def pending_windows(self) -> int:
        return len(self._open)

    @property
    def dedup_state_size(self) -> int:
        return len(self._last_kept)
