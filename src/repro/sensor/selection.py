"""Interesting and analyzable originator selection (§ III-B).

The sensor classifies only originators that are *analyzable* (at least 20
unique queriers, enough signal to infer an application class) and
*interesting* (the N with the most unique queriers — network-wide
activity, not noise).
"""

from __future__ import annotations

from repro.sensor.collection import ObservationWindow, OriginatorObservation

__all__ = ["ANALYZABLE_THRESHOLD", "analyzable", "top_n", "rank_by_footprint"]

ANALYZABLE_THRESHOLD = 20


def analyzable(
    window: ObservationWindow, min_queriers: int = ANALYZABLE_THRESHOLD
) -> list[OriginatorObservation]:
    """Originators with at least *min_queriers* unique queriers."""
    if min_queriers < 1:
        raise ValueError("min_queriers must be positive")
    return [
        observation
        for observation in window.observations.values()
        if observation.footprint >= min_queriers
    ]


def rank_by_footprint(
    observations: list[OriginatorObservation],
) -> list[OriginatorObservation]:
    """Sort by unique-querier count, descending; originator IP breaks ties
    so the ranking is total and reproducible."""
    return sorted(observations, key=lambda o: (-o.footprint, o.originator))


def top_n(
    window: ObservationWindow,
    n: int,
    min_queriers: int = ANALYZABLE_THRESHOLD,
) -> list[OriginatorObservation]:
    """The N most interesting analyzable originators (paper's top-10000)."""
    if n < 1:
        raise ValueError("n must be positive")
    return rank_by_footprint(analyzable(window, min_queriers))[:n]
