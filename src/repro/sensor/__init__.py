"""The DNS backscatter sensor: the paper's core contribution (§ III).

Collection → selection → features → classification → training-over-time,
consuming only (originator, querier, timestamp) tuples plus querier
metadata, exactly as the published system does.
"""

from repro.sensor.collection import (
    DEDUP_WINDOW_SECONDS,
    ObservationWindow,
    OriginatorObservation,
    collect_window,
    dedup_entries,
)
from repro.sensor.curation import (
    MIN_EXAMPLES_PER_CLASS,
    MIN_TOTAL_EXAMPLES,
    LabeledExample,
    LabeledSet,
)
from repro.sensor.directory import (
    EnrichmentCache,
    QuerierDirectory,
    QuerierInfo,
    ResolvedQuerier,
    StaticDirectory,
    WorldDirectory,
    enrich_chunk,
)
from repro.sensor.engine import (
    STAGE_NAMES,
    SensedWindow,
    SensorConfig,
    SensorEngine,
    StageStats,
)
from repro.sensor.dynamic import (
    DYNAMIC_FEATURE_NAMES,
    PERIOD_SECONDS,
    WindowContext,
    dynamic_feature_dict,
    dynamic_features,
)
from repro.sensor.features import (
    FEATURE_NAMES,
    FeatureSet,
    extract_features,
    feature_vector,
    features_from_selected,
)
from repro.sensor.keywords import (
    CATEGORY_KEYWORDS,
    STATIC_CATEGORIES,
    SUFFIX_CATEGORIES,
    classify_name,
    classify_querier,
)
from repro.sensor.pipeline import (
    BackscatterPipeline,
    ClassifiedOriginator,
    default_forest_factory,
)
from repro.sensor.report import WindowReport, build_report, render_report
from repro.sensor.selection import (
    ANALYZABLE_THRESHOLD,
    analyzable,
    rank_by_footprint,
    top_n,
)
from repro.sensor.streaming import StreamingCollector, StreamingStats
from repro.sensor.static import (
    STATIC_FEATURE_NAMES,
    static_feature_dict,
    static_features,
)
from repro.sensor.training import (
    Strategy,
    TimeSeriesEvaluation,
    WindowScore,
    enough_to_train,
    evaluate_strategy,
    labeled_rows,
)

__all__ = [
    "DEDUP_WINDOW_SECONDS",
    "ObservationWindow",
    "OriginatorObservation",
    "collect_window",
    "dedup_entries",
    "MIN_EXAMPLES_PER_CLASS",
    "MIN_TOTAL_EXAMPLES",
    "LabeledExample",
    "LabeledSet",
    "EnrichmentCache",
    "QuerierDirectory",
    "QuerierInfo",
    "ResolvedQuerier",
    "StaticDirectory",
    "WorldDirectory",
    "enrich_chunk",
    "DYNAMIC_FEATURE_NAMES",
    "PERIOD_SECONDS",
    "WindowContext",
    "dynamic_feature_dict",
    "dynamic_features",
    "FEATURE_NAMES",
    "FeatureSet",
    "extract_features",
    "feature_vector",
    "features_from_selected",
    "CATEGORY_KEYWORDS",
    "STATIC_CATEGORIES",
    "SUFFIX_CATEGORIES",
    "classify_name",
    "classify_querier",
    "BackscatterPipeline",
    "ClassifiedOriginator",
    "default_forest_factory",
    "STAGE_NAMES",
    "SensedWindow",
    "SensorConfig",
    "SensorEngine",
    "StageStats",
    "WindowReport",
    "build_report",
    "render_report",
    "ANALYZABLE_THRESHOLD",
    "analyzable",
    "rank_by_footprint",
    "top_n",
    "StreamingCollector",
    "StreamingStats",
    "STATIC_FEATURE_NAMES",
    "static_feature_dict",
    "static_features",
    "Strategy",
    "TimeSeriesEvaluation",
    "WindowScore",
    "evaluate_strategy",
    "labeled_rows",
    "enough_to_train",
]
