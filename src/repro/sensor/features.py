"""Feature-vector assembly: static + dynamic per originator (§ III-C/D).

The full vector is the 14 static fractions followed by the 8 dynamic
features, identified by the originator's IP address, exactly the object
the paper hands to its ML algorithms.

This is the hot path of every experiment — every window of every dataset
runs through it — so batch assembly is vectorized: one
:class:`~repro.sensor.directory.EnrichmentCache` resolves each querier
exactly once per window (shared by the window context, the static
counts, and the dynamic features), and the per-originator math runs over
flat int arrays (``np.bincount`` over (row, code) keys) instead of
per-querier Python loops.  ``features_from_selected(..., workers=N)``
additionally fans the originator rows out over a ``ProcessPoolExecutor``
in contiguous chunks; because every row depends only on its own
observation plus the shared :class:`WindowContext`, the parallel result
is bit-identical to the serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.directory import EnrichmentCache, QuerierDirectory, enrich_chunk
from repro.sensor.dynamic import (
    DYNAMIC_FEATURE_NAMES,
    PERIOD_SECONDS,
    WindowContext,
    dynamic_features,
)
from repro.sensor.keywords import STATIC_CATEGORIES
from repro.sensor.selection import ANALYZABLE_THRESHOLD, analyzable
from repro.sensor.static import STATIC_FEATURE_NAMES, static_features
from repro.telemetry import get_registry, observe
from repro.telemetry import span as _tspan

__all__ = [
    "FEATURE_NAMES",
    "FeatureSet",
    "feature_vector",
    "extract_features",
    "features_from_selected",
]

FEATURE_NAMES: tuple[str, ...] = STATIC_FEATURE_NAMES + DYNAMIC_FEATURE_NAMES


@dataclass(slots=True)
class FeatureSet:
    """Feature vectors for all analyzable originators of one window."""

    originators: np.ndarray
    """Originator addresses, aligned with matrix rows."""
    matrix: np.ndarray
    """Shape (n_originators, len(FEATURE_NAMES))."""
    context: WindowContext
    footprints: np.ndarray
    """Unique-querier counts, aligned with rows (for top-N slicing)."""
    _row_index: dict[int, int] | None = None
    """Lazy originator → row lookup (built once, O(1) thereafter)."""

    def __len__(self) -> int:
        return len(self.originators)

    @property
    def row_index(self) -> dict[int, int]:
        """Originator → matrix-row mapping (one row per originator)."""
        if self._row_index is None:
            self._row_index = {
                int(originator): row for row, originator in enumerate(self.originators)
            }
        return self._row_index

    def row_of(self, originator: int) -> np.ndarray | None:
        """The feature vector for one originator, or None if absent."""
        row = self.row_index.get(int(originator))
        return self.matrix[row] if row is not None else None

    def subset(self, originators: set[int]) -> "FeatureSet":
        """Rows restricted to the given originator addresses.

        Rows come back in **matrix-row order** (the order they hold in
        this set), never in the iteration order of *originators* — so a
        subset of a subset, or a subset built from an unordered set, is
        reproducible across runs.
        """
        index = self.row_index
        rows = np.array(
            sorted(index[int(o)] for o in originators if int(o) in index),
            dtype=np.intp,
        )
        return FeatureSet(
            originators=self.originators[rows],
            matrix=self.matrix[rows],
            context=self.context,
            footprints=self.footprints[rows],
        )

    def top(self, n: int) -> "FeatureSet":
        """Rows for the n largest footprints.

        Footprint ties break by ascending originator address, so the
        selection (and therefore downstream classification output) is
        deterministic across runs regardless of row order.
        """
        order = np.lexsort((self.originators, -self.footprints))[:n]
        return FeatureSet(
            originators=self.originators[order],
            matrix=self.matrix[order],
            context=self.context,
            footprints=self.footprints[order],
        )


def feature_vector(
    observation: OriginatorObservation,
    directory: QuerierDirectory,
    context: WindowContext,
) -> np.ndarray:
    """One originator's full (static ‖ dynamic) vector.

    The scalar reference path: resolves queriers through *directory* per
    call (memoized only when handed an
    :class:`~repro.sensor.directory.EnrichmentCache`).  Batch extraction
    uses the vectorized :func:`features_from_selected` instead.
    """
    return np.concatenate(
        [
            static_features(observation, directory),
            dynamic_features(observation, directory, context),
        ]
    )


def _grouped_distinct(rows: np.ndarray, values: np.ndarray, n_rows: int) -> np.ndarray:
    """Distinct *values* per row id, via one unique over packed keys."""
    if len(rows) == 0:
        return np.zeros(n_rows, dtype=np.int64)
    span = np.int64(values.max()) - np.int64(values.min()) + 1
    keys = rows.astype(np.int64) * span + (values.astype(np.int64) - values.min())
    distinct = np.unique(keys)
    return np.bincount((distinct // span).astype(np.intp), minlength=n_rows)


def _grouped_entropy(
    rows: np.ndarray,
    values: np.ndarray,
    counts_per_row: np.ndarray,
    support: int | None = None,
) -> np.ndarray:
    """Per-row normalized Shannon entropy over grouped values.

    The vectorized counterpart of :func:`repro.sensor.dynamic._normalized_entropy`:
    for each row, the entropy of the empirical distribution of its
    values, scaled by ``log(min(n, support))`` and clipped to [0, 1].
    Uses the identity ``H = log(n) - (Σ c·log c) / n`` over the per-(row,
    value) multiplicities c, which needs only one sort of packed keys.
    """
    n_rows = len(counts_per_row)
    span = np.int64(values.max()) - np.int64(values.min()) + 1 if len(values) else 1
    offset = values.min() if len(values) else 0
    keys = rows.astype(np.int64) * span + (values.astype(np.int64) - offset)
    uniq, multiplicity = np.unique(keys, return_counts=True)
    urows = (uniq // span).astype(np.intp)
    c_log_c = np.bincount(
        urows, weights=multiplicity * np.log(multiplicity), minlength=n_rows
    )
    n = counts_per_row.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        entropy = np.log(n) - c_log_c / n
        ceiling = np.log(np.minimum(n, support) if support else n)
        scaled = np.minimum(1.0, entropy / ceiling)
    # n <= 1: a single sample has no spread to measure (ceiling is 0).
    return np.where(counts_per_row <= 1, 0.0, np.maximum(0.0, scaled))


def _feature_matrix(
    selected: list[OriginatorObservation],
    directory: QuerierDirectory,
    context: WindowContext,
) -> np.ndarray:
    """The (n_selected, 22) feature matrix, vectorized over all rows.

    Every observation must have at least one querier (callers filter
    empties).  Row r depends only on ``selected[r]`` and *context*, so
    chunking the list and concatenating the chunk matrices is
    bit-identical to one call — the property the parallel fan-out relies
    on.  Top-level so ``ProcessPoolExecutor`` can pickle it.
    """
    n_rows = len(selected)
    n_categories = len(STATIC_CATEGORIES)
    if n_rows == 0:
        return np.zeros((0, len(FEATURE_NAMES)))
    cache = EnrichmentCache.ensure(directory)

    # Flatten (row, querier) pairs; queriers sorted per row for determinism.
    footprints = np.array([o.footprint for o in selected], dtype=np.int64)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), footprints)
    addrs = np.fromiter(
        (a for o in selected for a in sorted(o.unique_queriers)),
        dtype=np.int64,
        count=int(footprints.sum()),
    )

    # Resolve each distinct querier exactly once; broadcast codes back.
    distinct, inverse = np.unique(addrs, return_inverse=True)
    categories, asns, country_codes = cache.codes(distinct)
    categories = categories[inverse]
    asns = asns[inverse]
    country_codes = country_codes[inverse]

    # Static: per-row category counts in one bincount, then fractions.
    static_counts = np.bincount(
        (rows * n_categories + categories).astype(np.intp),
        minlength=n_rows * n_categories,
    ).reshape(n_rows, n_categories)
    static = static_counts / footprints[:, None]

    # Dynamic, all rows at once.
    query_counts = np.array([o.query_count for o in selected], dtype=np.int64)
    queries_per_querier = query_counts / footprints

    ts_counts = np.array([len(o.timestamps) for o in selected], dtype=np.int64)
    ts_rows = np.repeat(np.arange(n_rows, dtype=np.int64), ts_counts)
    timestamps = np.fromiter(
        (t for o in selected for t in o.timestamps),
        dtype=np.float64,
        count=int(ts_counts.sum()),
    )
    period_index = np.minimum(
        ((timestamps - context.start) // PERIOD_SECONDS).astype(np.int64),
        context.periods - 1,
    )
    persistence = _grouped_distinct(ts_rows, period_index, n_rows) / context.periods

    local_entropy = _grouped_entropy(rows, addrs >> 8, footprints)
    global_entropy = _grouped_entropy(rows, addrs >> 24, footprints, support=256)

    known_as = asns >= 0
    n_ases = _grouped_distinct(rows[known_as], asns[known_as], n_rows)
    known_country = country_codes >= 0
    n_countries = _grouped_distinct(
        rows[known_country], country_codes[known_country], n_rows
    )
    unique_as = n_ases / context.total_ases
    unique_country = n_countries / context.total_countries
    queriers_per_country = (
        footprints / np.maximum(1, n_countries)
    ) / context.total_queriers
    queriers_per_as = (footprints / np.maximum(1, n_ases)) / context.total_queriers

    dynamic = np.column_stack(
        [
            queries_per_querier,
            persistence,
            local_entropy,
            global_entropy,
            unique_as,
            unique_country,
            queriers_per_country,
            queriers_per_as,
        ]
    )
    return np.hstack([static, dynamic])


#: Shared state pool workers inherit through fork.  Task payloads carry
#: only (lo, hi) index bounds into this state, so nothing heavy — no
#: directory, no observations — ever crosses the IPC pipe; fork
#: inheritance makes the hand-off zero-copy.  Set immediately before a
#: pool starts and cleared after, so each featurize call ships its
#: call-time state (directory mutations between windows included).
_POOL_DIRECTORY: QuerierDirectory | None = None
_POOL_ADDRS: np.ndarray | None = None
_POOL_SELECTED: list[OriginatorObservation] | None = None
_POOL_CONTEXT: WindowContext | None = None


def _fork_pool(workers: int) -> ProcessPoolExecutor | None:
    """A fork-context process pool, or None where fork is unavailable.

    The parallel featurize path relies on fork inheritance of
    ``_POOL_*`` state; on platforms without fork (Windows/macOS spawn)
    callers fall back to the serial vectorized path, which is already
    the fast one.
    """
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    return ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)


def _bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """At most *parts* contiguous, near-equal, non-empty [lo, hi) spans."""
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def _enrichment_task(
    bounds: tuple[int, int],
) -> tuple[float, tuple[np.ndarray, np.ndarray, np.ndarray, list[str]]]:
    """One enrichment chunk, with its worker-side wall time prepended."""
    lo, hi = bounds
    assert _POOL_DIRECTORY is not None and _POOL_ADDRS is not None
    started = time.perf_counter()
    chunk = enrich_chunk(_POOL_DIRECTORY, _POOL_ADDRS[lo:hi])
    return time.perf_counter() - started, chunk


def _feature_matrix_task(bounds: tuple[int, int]) -> tuple[float, np.ndarray]:
    """One matrix chunk, with its worker-side wall time prepended."""
    lo, hi = bounds
    assert _POOL_DIRECTORY is not None and _POOL_SELECTED is not None
    assert _POOL_CONTEXT is not None
    started = time.perf_counter()
    matrix = _feature_matrix(_POOL_SELECTED[lo:hi], _POOL_DIRECTORY, _POOL_CONTEXT)
    return time.perf_counter() - started, matrix


def _observe_chunk(kind: str, seconds: float) -> None:
    """Record one featurize chunk's wall time (no-op without a registry)."""
    if get_registry() is not None:
        observe("repro_featurize_chunk_seconds", seconds,
                help="Worker-side wall time per featurize chunk.", kind=kind)


def _prime_parallel(
    cache: EnrichmentCache,
    window: ObservationWindow,
    workers: int,
) -> None:
    """Resolve the window's queriers through a process pool, priming *cache*.

    Querier enrichment — one directory lookup plus keyword classification
    per distinct address — dominates featurize time, and is embarrassingly
    parallel: workers classify contiguous spans of the unresolved
    addresses against the (fork-inherited) raw directory, and the parent
    installs the results in its cache.  Enrichment is deterministic per
    address, so the cache ends up exactly as the serial path would leave
    it (modulo internal code numbering, which never reaches feature
    values).
    """
    global _POOL_DIRECTORY, _POOL_ADDRS
    queriers: set[int] = set()
    for observation in window.observations.values():
        queriers |= observation.unique_queriers
    unresolved = cache.missing(np.fromiter(queriers, np.int64, len(queriers)))
    pool = _fork_pool(workers) if len(unresolved) >= 4 * workers else None
    if pool is None:
        cache.codes(unresolved)
        return
    _POOL_DIRECTORY = cache.directory
    _POOL_ADDRS = unresolved
    try:
        with pool:
            spans = _bounds(len(unresolved), workers)
            for (lo, hi), (elapsed, chunk) in zip(
                spans, pool.map(_enrichment_task, spans)
            ):
                _observe_chunk("enrich", elapsed)
                cache.prime_arrays(unresolved[lo:hi], *chunk)
    finally:
        _POOL_DIRECTORY = None
        _POOL_ADDRS = None


def _parallel_feature_matrix(
    selected: list[OriginatorObservation],
    cache: EnrichmentCache,
    context: WindowContext,
    workers: int,
) -> np.ndarray:
    """Fan contiguous originator chunks out over a process pool.

    Called with an already-primed cache, which the workers inherit warm
    (fork happens after enrichment), so each chunk is pure array math.
    Every row depends only on its own observation plus the shared
    *context*, so concatenating the chunk matrices is bit-identical to
    one serial :func:`_feature_matrix` call.  Falls back to serial where
    fork is unavailable.
    """
    global _POOL_DIRECTORY, _POOL_SELECTED, _POOL_CONTEXT
    pool = _fork_pool(workers)
    if pool is None:
        return _feature_matrix(selected, cache, context)
    _POOL_DIRECTORY = cache
    _POOL_SELECTED = selected
    _POOL_CONTEXT = context
    try:
        with pool:
            timed = list(pool.map(_feature_matrix_task, _bounds(len(selected), workers)))
    finally:
        _POOL_DIRECTORY = None
        _POOL_SELECTED = None
        _POOL_CONTEXT = None
    for elapsed, _ in timed:
        _observe_chunk("matrix", elapsed)
    return np.concatenate([matrix for _, matrix in timed])


def features_from_selected(
    window: ObservationWindow,
    selected: list[OriginatorObservation],
    directory: QuerierDirectory,
    workers: int = 1,
    context: WindowContext | None = None,
) -> FeatureSet:
    """Feature vectors for an already-selected set of originators.

    The window context (rates, normalizers) is computed over the whole
    window; *selected* only controls which rows are materialized.  This
    is the featurize stage of :class:`repro.sensor.engine.SensorEngine`,
    which performs selection separately so it can account for drops.

    An explicit *context* overrides the window-derived one.  Federated
    shards use this: each shard holds only its partition of a window,
    but every row must normalize by the *merged* window's totals, which
    the federation driver computes and broadcasts (see
    :mod:`repro.federation`).  Because each row depends only on its own
    observation plus the context, rows computed under the merged context
    are bit-identical to a single engine's.

    Observations without any queriers (possible when every query
    deduplicated away or a serialized observation is degenerate) are
    skipped rather than raising; callers can detect skips by comparing
    ``len(selected)`` with the result length.

    With ``workers > 1`` the rows are computed in contiguous originator
    chunks on a ``ProcessPoolExecutor``; the result is bit-identical to
    the serial path because each row sees only its own observation plus
    the shared window context.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    cache = EnrichmentCache.ensure(directory)
    kept = [o for o in selected if o.footprint > 0]
    parallel = workers > 1 and len(kept) >= 2 * workers
    if parallel:
        with _tspan("featurize.enrich"):
            _prime_parallel(cache, window, workers)
    if context is None:
        context = WindowContext.from_window(window, cache)
    originators = np.array([o.originator for o in kept], dtype=np.int64)
    footprints = np.array([o.footprint for o in kept], dtype=np.int64)
    with _tspan("featurize.matrix") as sp:
        if parallel:
            matrix = _parallel_feature_matrix(kept, cache, context, workers)
        else:
            matrix = _feature_matrix(kept, cache, context)
    if not parallel:
        _observe_chunk("serial", sp.elapsed)
    return FeatureSet(
        originators=originators,
        matrix=matrix,
        context=context,
        footprints=footprints,
    )


def extract_features(
    window: ObservationWindow,
    directory: QuerierDirectory,
    min_queriers: int = ANALYZABLE_THRESHOLD,
    workers: int = 1,
) -> FeatureSet:
    """Feature vectors for every analyzable originator in the window."""
    return features_from_selected(
        window, analyzable(window, min_queriers), directory, workers=workers
    )
