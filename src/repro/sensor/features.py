"""Feature-vector assembly: static + dynamic per originator (§ III-C/D).

The full vector is the 14 static fractions followed by the 8 dynamic
features, identified by the originator's IP address, exactly the object
the paper hands to its ML algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.directory import QuerierDirectory
from repro.sensor.dynamic import (
    DYNAMIC_FEATURE_NAMES,
    WindowContext,
    dynamic_features,
)
from repro.sensor.selection import ANALYZABLE_THRESHOLD, analyzable
from repro.sensor.static import STATIC_FEATURE_NAMES, static_features

__all__ = [
    "FEATURE_NAMES",
    "FeatureSet",
    "feature_vector",
    "extract_features",
    "features_from_selected",
]

FEATURE_NAMES: tuple[str, ...] = STATIC_FEATURE_NAMES + DYNAMIC_FEATURE_NAMES


@dataclass(slots=True)
class FeatureSet:
    """Feature vectors for all analyzable originators of one window."""

    originators: np.ndarray
    """Originator addresses, aligned with matrix rows."""
    matrix: np.ndarray
    """Shape (n_originators, len(FEATURE_NAMES))."""
    context: WindowContext
    footprints: np.ndarray
    """Unique-querier counts, aligned with rows (for top-N slicing)."""
    _row_index: dict[int, int] | None = None
    """Lazy originator → row lookup (built once, O(1) thereafter)."""

    def __len__(self) -> int:
        return len(self.originators)

    @property
    def row_index(self) -> dict[int, int]:
        """Originator → matrix-row mapping (one row per originator)."""
        if self._row_index is None:
            self._row_index = {
                int(originator): row for row, originator in enumerate(self.originators)
            }
        return self._row_index

    def row_of(self, originator: int) -> np.ndarray | None:
        """The feature vector for one originator, or None if absent."""
        row = self.row_index.get(int(originator))
        return self.matrix[row] if row is not None else None

    def subset(self, originators: set[int]) -> "FeatureSet":
        """Rows restricted to the given originator addresses."""
        index = self.row_index
        rows = np.array(
            sorted(index[int(o)] for o in originators if int(o) in index),
            dtype=np.intp,
        )
        return FeatureSet(
            originators=self.originators[rows],
            matrix=self.matrix[rows],
            context=self.context,
            footprints=self.footprints[rows],
        )

    def top(self, n: int) -> "FeatureSet":
        """Rows for the n largest footprints."""
        order = np.lexsort((self.originators, -self.footprints))[:n]
        return FeatureSet(
            originators=self.originators[order],
            matrix=self.matrix[order],
            context=self.context,
            footprints=self.footprints[order],
        )


def feature_vector(
    observation: OriginatorObservation,
    directory: QuerierDirectory,
    context: WindowContext,
) -> np.ndarray:
    """One originator's full (static ‖ dynamic) vector."""
    return np.concatenate(
        [
            static_features(observation, directory),
            dynamic_features(observation, directory, context),
        ]
    )


def features_from_selected(
    window: ObservationWindow,
    selected: list[OriginatorObservation],
    directory: QuerierDirectory,
) -> FeatureSet:
    """Feature vectors for an already-selected set of originators.

    The window context (rates, normalizers) is computed over the whole
    window; *selected* only controls which rows are materialized.  This
    is the featurize stage of :class:`repro.sensor.engine.SensorEngine`,
    which performs selection separately so it can account for drops.
    """
    context = WindowContext.from_window(window, directory)
    originators = np.array([o.originator for o in selected], dtype=np.int64)
    footprints = np.array([o.footprint for o in selected], dtype=np.int64)
    if selected:
        matrix = np.stack([feature_vector(o, directory, context) for o in selected])
    else:
        matrix = np.zeros((0, len(FEATURE_NAMES)))
    return FeatureSet(
        originators=originators,
        matrix=matrix,
        context=context,
        footprints=footprints,
    )


def extract_features(
    window: ObservationWindow,
    directory: QuerierDirectory,
    min_queriers: int = ANALYZABLE_THRESHOLD,
) -> FeatureSet:
    """Feature vectors for every analyzable originator in the window."""
    return features_from_selected(window, analyzable(window, min_queriers), directory)
