"""Feature-vector assembly: static + dynamic per originator (§ III-C/D).

The full vector is the 14 static fractions followed by the 8 dynamic
features, identified by the originator's IP address, exactly the object
the paper hands to its ML algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensor.collection import ObservationWindow, OriginatorObservation
from repro.sensor.directory import QuerierDirectory
from repro.sensor.dynamic import (
    DYNAMIC_FEATURE_NAMES,
    WindowContext,
    dynamic_features,
)
from repro.sensor.selection import ANALYZABLE_THRESHOLD, analyzable
from repro.sensor.static import STATIC_FEATURE_NAMES, static_features

__all__ = ["FEATURE_NAMES", "FeatureSet", "feature_vector", "extract_features"]

FEATURE_NAMES: tuple[str, ...] = STATIC_FEATURE_NAMES + DYNAMIC_FEATURE_NAMES


@dataclass(slots=True)
class FeatureSet:
    """Feature vectors for all analyzable originators of one window."""

    originators: np.ndarray
    """Originator addresses, aligned with matrix rows."""
    matrix: np.ndarray
    """Shape (n_originators, len(FEATURE_NAMES))."""
    context: WindowContext
    footprints: np.ndarray
    """Unique-querier counts, aligned with rows (for top-N slicing)."""

    def __len__(self) -> int:
        return len(self.originators)

    def row_of(self, originator: int) -> np.ndarray | None:
        """The feature vector for one originator, or None if absent."""
        hits = np.nonzero(self.originators == originator)[0]
        return self.matrix[hits[0]] if len(hits) else None

    def subset(self, originators: set[int]) -> "FeatureSet":
        """Rows restricted to the given originator addresses."""
        mask = np.isin(self.originators, sorted(originators))
        return FeatureSet(
            originators=self.originators[mask],
            matrix=self.matrix[mask],
            context=self.context,
            footprints=self.footprints[mask],
        )

    def top(self, n: int) -> "FeatureSet":
        """Rows for the n largest footprints."""
        order = np.lexsort((self.originators, -self.footprints))[:n]
        return FeatureSet(
            originators=self.originators[order],
            matrix=self.matrix[order],
            context=self.context,
            footprints=self.footprints[order],
        )


def feature_vector(
    observation: OriginatorObservation,
    directory: QuerierDirectory,
    context: WindowContext,
) -> np.ndarray:
    """One originator's full (static ‖ dynamic) vector."""
    return np.concatenate(
        [
            static_features(observation, directory),
            dynamic_features(observation, directory, context),
        ]
    )


def extract_features(
    window: ObservationWindow,
    directory: QuerierDirectory,
    min_queriers: int = ANALYZABLE_THRESHOLD,
) -> FeatureSet:
    """Feature vectors for every analyzable originator in the window."""
    selected = analyzable(window, min_queriers)
    context = WindowContext.from_window(window, directory)
    originators = np.array([o.originator for o in selected], dtype=np.int64)
    footprints = np.array([o.footprint for o in selected], dtype=np.int64)
    if selected:
        matrix = np.stack([feature_vector(o, directory, context) for o in selected])
    else:
        matrix = np.zeros((0, len(FEATURE_NAMES)))
    return FeatureSet(
        originators=originators,
        matrix=matrix,
        context=context,
        footprints=footprints,
    )
