"""repro — DNS backscatter sensing, a reproduction of Fukuda, Heidemann &
Qadeer, *Detecting Malicious Activity with DNS Backscatter Over Time*
(IMC 2015 / IEEE-ToN 2017).

Quickstart::

    from repro import LabeledSet, SensorEngine, get_dataset

    dataset = get_dataset("JP-ditl", preset="tiny")
    engine = SensorEngine(dataset.directory())
    window = engine.collect(
        list(dataset.sensor.log), 0.0, dataset.duration_seconds
    )
    features = engine.featurize(window)
    truth = dataset.true_classes()
    labeled = LabeledSet.from_pairs(
        (int(o), truth[int(o)]) for o in features.originators if int(o) in truth
    )
    engine.fit(features, labeled)
    for verdict in engine.classify(features)[:10]:
        print(verdict)

To watch where volume and wall time go, pass a metrics registry and
export it afterwards::

    from repro import MetricsRegistry, write_metrics

    registry = MetricsRegistry()
    engine = SensorEngine(dataset.directory(), registry=registry)
    ...
    write_metrics(registry, "metrics.prom")

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.netmodel` — synthetic Internet (addresses, ASes, geography,
  reverse-name conventions, querier population);
* :mod:`repro.dnssim` — DNS substrate (caches, zones, resolvers,
  authorities-as-sensors);
* :mod:`repro.activity` — the 12 application-class workload models;
* :mod:`repro.sensor` — the paper's contribution: backscatter → features
  → classification → training over time;
* :mod:`repro.ml` — CART / random forest / kernel SVM from scratch;
* :mod:`repro.groundtruth` — darknets, DNSBLs, label curation;
* :mod:`repro.datasets` — Table I dataset specs and generation;
* :mod:`repro.analysis` — footprints, trends, teams, consistency, caching;
* :mod:`repro.experiments` — one runnable module per paper table/figure;
* :mod:`repro.telemetry` — dependency-free metrics + span tracing for
  the sensing pipeline.

The names exported here (and from :mod:`repro.sensor`) are the curated
public surface; ``tests/test_public_api.py`` keeps them in sync with
docs/API.md, so additions and removals must touch both.
"""

from repro.activity import APPLICATION_CLASSES, BENIGN_CLASSES, MALICIOUS_CLASSES
from repro.datasets import DATASET_SPECS, generate_dataset, get_dataset, spec_for
from repro.ml import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    SvmClassifier,
)
from repro.sensor import (
    ANALYZABLE_THRESHOLD,
    FEATURE_NAMES,
    BackscatterPipeline,
    ClassifiedOriginator,
    EnrichmentCache,
    LabeledExample,
    LabeledSet,
    SensedWindow,
    SensorConfig,
    SensorEngine,
    StageStats,
    WorldDirectory,
    classify_name,
    extract_features,
)
from repro.netmodel import World, WorldConfig
from repro.telemetry import (
    MetricsRegistry,
    install,
    span,
    use_registry,
    write_metrics,
)

__version__ = "1.0.0"

__all__ = [
    "APPLICATION_CLASSES",
    "BENIGN_CLASSES",
    "MALICIOUS_CLASSES",
    "DATASET_SPECS",
    "generate_dataset",
    "get_dataset",
    "spec_for",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "SvmClassifier",
    "ANALYZABLE_THRESHOLD",
    "FEATURE_NAMES",
    "BackscatterPipeline",
    "ClassifiedOriginator",
    "EnrichmentCache",
    "LabeledExample",
    "LabeledSet",
    "SensedWindow",
    "SensorConfig",
    "SensorEngine",
    "StageStats",
    "WorldDirectory",
    "classify_name",
    "extract_features",
    "World",
    "WorldConfig",
    "MetricsRegistry",
    "install",
    "span",
    "use_registry",
    "write_metrics",
    "__version__",
]
