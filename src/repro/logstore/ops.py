"""Array-native dedup for columnar query logs (§ III-A's 30 s rule).

:func:`dedup_mask` reproduces the greedy reference semantics of
:func:`repro.sensor.collection.dedup_entries` — keep the first query of
each (querier, originator) burst, drop a repeat that falls strictly
within ``window`` seconds of the last *kept* query for that pair — as
vectorized array math.

The trick: after a stable lexsort by (querier, originator), each pair's
queries form one contiguous run in time/arrival order.  Within a run,
any query at least ``window`` after its predecessor is a *certain* keep
regardless of which earlier queries survived (the last kept timestamp
can never exceed the predecessor's).  Only the "ambiguous" stretches
where consecutive gaps are below the window need the sequential greedy
rule, and those are resolved with a small searchsorted walk per
surviving query — O(kept) python-level steps, not O(n).

Cross-chunk streaming state is supported through ``carry``: a mapping of
``(querier, originator) -> last kept timestamp`` from earlier chunks of
the same dedup scope.  Pairs whose carried timestamp can still suppress
something in this chunk have their whole run re-resolved against it.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

__all__ = ["dedup_mask"]


def _greedy_run(
    ts: list[float],
    keep: np.ndarray,
    lo: int,
    hi: int,
    last_kept: float,
    window: float,
) -> None:
    """Resolve ``ts[lo:hi]`` (time-ordered, all initially dropped) against
    *last_kept* with the greedy first-of-burst rule, marking survivors.

    *ts* is a plain Python list — ambiguous stretches are typically a
    couple of elements, where per-call numpy dispatch costs more than
    the whole resolution; ``bisect`` over the list keeps long stretches
    logarithmic without that overhead.

    The keep predicate must be bit-identical to the scalar reference's
    ``t - last_kept >= window`` — which is *not* the same float test as
    ``t >= last_kept + window`` (e.g. ``2.3 - 1.3 < 1.0`` while
    ``1.3 + 1.0 == 2.3``).  bisect on the sum is only a guess, corrected
    by a couple of ulp-boundary steps with the exact subtraction
    predicate; corrected-over elements are skipped for good, so the walk
    stays amortized linear in the run length.
    """
    i = lo
    while i < hi:
        j = bisect_left(ts, last_kept + window, i, hi)
        while j > i and ts[j - 1] - last_kept >= window:
            j -= 1
        while j < hi and ts[j] - last_kept < window:
            j += 1
        if j >= hi:
            break
        keep[j] = True
        last_kept = ts[j]
        i = j + 1


def dedup_mask(
    timestamps: np.ndarray,
    queriers: np.ndarray,
    originators: np.ndarray,
    window: float,
    carry: dict[tuple[int, int], float] | None = None,
) -> tuple[np.ndarray, dict[tuple[int, int], float]]:
    """Boolean keep-mask for greedy per-pair dedup over a time-ordered chunk.

    Parameters
    ----------
    timestamps, queriers, originators:
        Parallel columns in non-decreasing timestamp order (callers
        validate; this function assumes it).
    window:
        Suppression horizon in seconds; a repeat strictly within
        ``window`` of the last kept query for its pair is dropped.
    carry:
        Last-kept timestamps from earlier chunks of the same dedup
        scope, or ``None`` for a self-contained chunk.  When a dict is
        given (even empty), the second return value holds the updated
        last-kept timestamp for every pair that kept at least one query
        in this chunk *and* can still suppress a later entry (pairs
        whose last keep is already a full window behind the chunk's
        final timestamp are inert and omitted, keeping caller state
        bounded by live pairs) — merge it into the caller's state with
        ``state.update(updates)``.

    Returns
    -------
    (mask, updates):
        ``mask`` is a boolean array in the chunk's original order;
        ``updates`` is the carry-state delta (empty when ``carry`` is
        ``None``).

    Equal timestamps are resolved in arrival order — the lexsort is
    stable, so within a pair the earlier array index wins, exactly like
    the sequential reference.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    n = int(timestamps.shape[0])
    updates: dict[tuple[int, int], float] = {}
    if n == 0:
        return np.ones(0, dtype=bool), updates

    order = np.lexsort((originators, queriers))
    tq = timestamps[order]
    qq = queriers[order]
    oq = originators[order]

    # Pair-run boundaries in the sorted layout.
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    if n > 1:
        np.logical_or(qq[1:] != qq[:-1], oq[1:] != oq[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)

    # Certain keeps: run starts, and any query >= window after its
    # predecessor (last_kept <= predecessor's timestamp, so the gap
    # guarantees survival no matter how the prefix resolved).
    keep = new_group.copy()
    if n > 1:
        keep[1:] |= (tq[1:] - tq[:-1]) >= window
    certain = keep.copy()

    n_groups = int(starts.size)
    bounds = np.append(starts, n)
    group_resolved = np.zeros(n_groups, dtype=bool)
    tq_list: list[float] | None = None  # lazy .tolist() for greedy walks

    # Carried state: re-resolve any run whose pair was kept recently
    # enough that the carry can still suppress this chunk's queries.
    if carry:
        # Input is time-ordered, so the chunk minimum is the first entry
        # (NOT tq[0], which is the lexsorted layout's first pair).  The
        # liveness test must use the scalar keep predicate's exact float
        # expression (t - last < window): subtraction and addition round
        # differently near the horizon.
        t_min = float(timestamps[0])
        live = [
            (pair, last)
            for pair, last in carry.items()
            if t_min - last < window
        ]
        if live:
            sq = qq[starts]
            so = oq[starts]
            tq_list = tq.tolist()
            for (pair_q, pair_o), last in live:
                lo = int(np.searchsorted(sq, pair_q, side="left"))
                hi = int(np.searchsorted(sq, pair_q, side="right"))
                if lo == hi:
                    continue
                g = lo + int(np.searchsorted(so[lo:hi], pair_o, side="left"))
                if g >= hi or int(so[g]) != pair_o:
                    continue
                s, e = int(bounds[g]), int(bounds[g + 1])
                keep[s:e] = False
                _greedy_run(tq_list, keep, s, e, last, window)
                group_resolved[g] = True

    # Ambiguous stretches (gap < window from predecessor) in not-yet-
    # resolved runs: replay the greedy rule from the preceding certain
    # keep.  A run of certainty guarantees the element before an
    # ambiguous stretch is kept with last_kept == its own timestamp.
    amb = ~certain
    if amb.any():
        idx = np.flatnonzero(amb)
        breaks = np.flatnonzero(np.diff(idx) > 1)
        run_lo = idx[np.concatenate(([0], breaks + 1))]
        run_hi = idx[np.concatenate((breaks, [idx.size - 1]))] + 1
        if tq_list is None:
            tq_list = tq.tolist()
        stretch_group = np.searchsorted(starts, run_lo, side="right") - 1
        ends = bounds[stretch_group + 1]
        for s, e, g, group_end in zip(
            run_lo.tolist(), run_hi.tolist(), stretch_group.tolist(), ends.tolist()
        ):
            if group_resolved[g]:
                continue
            # s > starts[g]: a run start is always certain, so the
            # ambiguous stretch has an in-group predecessor, which is a
            # certain keep (ambiguity is defined per-stretch).
            anchor = tq_list[s - 1]
            _greedy_run(tq_list, keep, s, min(e, group_end), anchor, window)
            # A stretch never spans groups (run starts are certain), so
            # the min() clamp is defensive only.

    # Carry-state delta: last kept timestamp per pair with >= 1 keep —
    # but only pairs still *live* past this chunk.  Any future entry of
    # the same dedup scope has timestamp >= this chunk's maximum (the
    # stream is time-ordered), so a pair whose last keep is already a
    # full window behind the chunk end can never suppress again; merging
    # it into the caller's state would retain one float per distinct
    # pair forever.  Liveness uses the scalar keep predicate's exact
    # float expression (t - last < window), so dropping an inert pair
    # cannot change any future mask bit.
    if carry is not None:
        kept_pos = np.flatnonzero(keep)
        if kept_pos.size:
            g = np.searchsorted(starts, kept_pos, side="right") - 1
            last_mask = np.empty(g.size, dtype=bool)
            last_mask[-1] = True
            if g.size > 1:
                last_mask[:-1] = g[1:] != g[:-1]
            last_pos = kept_pos[last_mask]
            t_max = float(timestamps[n - 1])
            updates = {
                (q, o): t
                for q, o, t in zip(
                    qq[last_pos].tolist(),
                    oq[last_pos].tolist(),
                    tq[last_pos].tolist(),
                )
                if t_max - t < window
            }

    mask = np.empty(n, dtype=bool)
    mask[order] = keep
    return mask, updates
