"""On-disk layouts for columnar query-log blocks.

Two formats, chosen by file suffix:

``.npz``
    Compressed-friendly archive of the three columns plus a small
    metadata record (format version, sorted-run flag).  The portable
    interchange format — what ``repro generate`` writes and
    ``repro classify`` reads.

``.npy``
    The raw structured array, written with :func:`numpy.save`.  This is
    the **mmap-able** layout: :func:`load_block` with ``mmap=True``
    memory-maps it read-only so larger-than-RAM logs replay through
    :func:`iter_blocks` in bounded memory — pages are faulted in per
    chunk and dropped by the OS behind the read cursor.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.logstore.block import DEFAULT_CHUNK_EVENTS, ENTRY_DTYPE, EntryBlock

__all__ = ["save_block", "load_block", "iter_blocks"]

FORMAT_VERSION = 1

_NPZ_KEYS = ("timestamp", "querier", "originator", "meta")


def _suffix(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix not in (".npz", ".npy"):
        raise ValueError(
            f"unsupported block format {suffix!r} (expected .npz or .npy)"
        )
    return suffix


def save_block(path: "str | Path", block: EntryBlock) -> None:
    """Write *block* to *path*; the suffix selects the layout."""
    path = Path(path)
    if _suffix(path) == ".npy":
        np.save(path, np.ascontiguousarray(block.data))
        return
    meta = np.array([FORMAT_VERSION, 1 if block.is_sorted else 0], dtype=np.int64)
    np.savez(
        path,
        timestamp=np.ascontiguousarray(block.timestamps),
        querier=np.ascontiguousarray(block.queriers),
        originator=np.ascontiguousarray(block.originators),
        meta=meta,
    )


def load_block(path: "str | Path", mmap: bool = False) -> EntryBlock:
    """Read a block from *path*.

    ``mmap=True`` memory-maps the ``.npy`` layout instead of reading it
    (columns become read-only views into the mapping).  The ``.npz``
    archive cannot be mapped; asking for it raises ``ValueError``.
    """
    path = Path(path)
    suffix = _suffix(path)
    if suffix == ".npy":
        data = np.load(path, mmap_mode="r" if mmap else None)
        if data.dtype != ENTRY_DTYPE or data.ndim != 1:
            raise ValueError(f"{path} is not an EntryBlock .npy file")
        return EntryBlock(data)
    if mmap:
        raise ValueError(".npz blocks cannot be memory-mapped; use the .npy layout")
    with np.load(path) as archive:
        missing = [key for key in _NPZ_KEYS if key not in archive]
        if missing:
            raise ValueError(f"{path} is not an EntryBlock .npz file (missing {missing})")
        meta = archive["meta"]
        version = int(meta[0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported block format version {version} in {path}")
        block = EntryBlock.from_arrays(
            archive["timestamp"], archive["querier"], archive["originator"]
        )
        if int(meta[1]):
            block._sorted = True
        return block


def iter_blocks(
    path: "str | Path", chunk_events: int = DEFAULT_CHUNK_EVENTS
):
    """Replay an on-disk block chunk by chunk.

    ``.npy`` files are memory-mapped, so peak memory is one chunk's
    worth of touched pages regardless of file size; ``.npz`` archives
    are loaded once and sliced.
    """
    path = Path(path)
    block = load_block(path, mmap=_suffix(path) == ".npy")
    yield from block.iter_chunks(chunk_events)
