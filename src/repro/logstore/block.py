"""Columnar query-log blocks: numpy structured arrays of (t, querier, originator).

The sensor's unit of exchange upstream of featurization.  A block holds
the same information as a ``list[QueryLogEntry]`` but as three flat
columns, so windowing, dedup, and the sketch pre-stage can run as array
math instead of per-object attribute access — and so shards can exchange
flat buffers instead of object graphs.

Blocks are cheap views wherever numpy allows it: slicing returns a view,
:meth:`EntryBlock.load` with ``mmap=True`` maps the on-disk ``.npy``
layout without reading it, and column accessors return the underlying
field views.  Sorted-run metadata (``is_sorted``) is computed lazily and
carried through operations that provably preserve it, so the common
append-ordered authority log never pays a re-check per stage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.dnssim.message import QueryLogEntry

if TYPE_CHECKING:
    from pathlib import Path

__all__ = ["ENTRY_DTYPE", "EntryBlock", "blocks_from_entries", "concat_blocks"]

ENTRY_DTYPE = np.dtype(
    [("timestamp", "f8"), ("querier", "i8"), ("originator", "i8")]
)
"""Structured dtype of one query-log record (24 bytes)."""

#: Default chunk size (events) for chunked construction and replay.
DEFAULT_CHUNK_EVENTS = 65_536


class EntryBlock:
    """A contiguous run of query-log records stored column-wise.

    Wraps a 1-D numpy structured array of :data:`ENTRY_DTYPE`.  The
    block does not own ordering guarantees — ``is_sorted`` reports (and
    caches) whether timestamps are non-decreasing, and consumers that
    need time order (the collectors) validate it upfront.
    """

    __slots__ = ("_data", "_sorted")

    def __init__(self, data: np.ndarray, *, assume_sorted: bool | None = None) -> None:
        if data.dtype != ENTRY_DTYPE:
            raise ValueError(
                f"EntryBlock requires dtype {ENTRY_DTYPE}, got {data.dtype}"
            )
        if data.ndim != 1:
            raise ValueError("EntryBlock requires a 1-D record array")
        self._data = data
        self._sorted = assume_sorted

    # -- construction ---------------------------------------------------

    @classmethod
    def empty(cls) -> "EntryBlock":
        return cls(np.empty(0, dtype=ENTRY_DTYPE), assume_sorted=True)

    @classmethod
    def from_entries(
        cls,
        entries: Iterable[QueryLogEntry],
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> "EntryBlock":
        """Materialize an iterable of entries, chunk by chunk.

        Consumes the iterable in ``chunk_events``-sized pieces so a
        generator over a larger-than-RAM source never forces an
        intermediate list of objects alongside the array.
        """
        chunks = [chunk.data for chunk in blocks_from_entries(entries, chunk_events)]
        if not chunks:
            return cls.empty()
        if len(chunks) == 1:
            return cls(chunks[0])
        return cls(np.concatenate(chunks))

    @classmethod
    def from_arrays(
        cls,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> "EntryBlock":
        """Build a block from three parallel column arrays (copied)."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        queriers = np.asarray(queriers, dtype=np.int64)
        originators = np.asarray(originators, dtype=np.int64)
        if not timestamps.shape == queriers.shape == originators.shape:
            raise ValueError("column arrays must have identical shapes")
        if timestamps.ndim != 1:
            raise ValueError("column arrays must be 1-D")
        data = np.empty(timestamps.size, dtype=ENTRY_DTYPE)
        data["timestamp"] = timestamps
        data["querier"] = queriers
        data["originator"] = originators
        return cls(data)

    # -- columns --------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying structured array (a view, not a copy)."""
        return self._data

    @property
    def timestamps(self) -> np.ndarray:
        return self._data["timestamp"]

    @property
    def queriers(self) -> np.ndarray:
        return self._data["querier"]

    @property
    def originators(self) -> np.ndarray:
        return self._data["originator"]

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def is_sorted(self) -> bool:
        """True when timestamps are non-decreasing (cached after first check)."""
        if self._sorted is None:
            ts = self._data["timestamp"]
            self._sorted = bool(ts.size < 2 or np.all(ts[1:] >= ts[:-1]))
        return self._sorted

    # -- sequence protocol ---------------------------------------------

    def __len__(self) -> int:
        return self._data.size

    def __bool__(self) -> bool:
        return self._data.size > 0

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            row = self._data[int(key)]
            return QueryLogEntry(
                timestamp=float(row["timestamp"]),
                querier=int(row["querier"]),
                originator=int(row["originator"]),
            )
        if isinstance(key, slice):
            forward = key.step is None or key.step > 0
            keep = self._sorted if (self._sorted and forward) else None
            return EntryBlock(self._data[key], assume_sorted=keep)
        key = np.asarray(key)
        if key.dtype == np.bool_:
            # A boolean mask preserves relative order, hence sortedness.
            keep = self._sorted if self._sorted else None
            return EntryBlock(self._data[key], assume_sorted=keep)
        return EntryBlock(self._data[key])

    def __iter__(self) -> Iterator[QueryLogEntry]:
        for t, q, o in zip(
            self._data["timestamp"].tolist(),
            self._data["querier"].tolist(),
            self._data["originator"].tolist(),
        ):
            yield QueryLogEntry(timestamp=t, querier=q, originator=o)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntryBlock):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.array_equal(self._data, other._data)
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"EntryBlock(n={len(self)}, sorted={self._sorted})"

    # -- ops ------------------------------------------------------------

    def to_entries(self) -> list[QueryLogEntry]:
        return list(self)

    def sort(self) -> "EntryBlock":
        """Stable sort by timestamp; ties keep arrival (array) order."""
        if self.is_sorted:
            return self
        order = np.argsort(self._data["timestamp"], kind="stable")
        return EntryBlock(self._data[order], assume_sorted=True)

    def slice_time(self, start: float, end: float) -> "EntryBlock":
        """Records with ``start <= t < end``.

        O(log n) searchsorted slicing on sorted blocks, boolean mask
        otherwise.
        """
        ts = self._data["timestamp"]
        if self.is_sorted:
            lo = int(np.searchsorted(ts, start, side="left"))
            hi = int(np.searchsorted(ts, end, side="left"))
            return EntryBlock(self._data[lo:hi], assume_sorted=True)
        mask = (ts >= start) & (ts < end)
        return EntryBlock(self._data[mask])

    def iter_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator["EntryBlock"]:
        """Yield consecutive sub-blocks of at most *chunk_events* records."""
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        for lo in range(0, self._data.size, chunk_events):
            yield self[lo : lo + chunk_events]

    # -- persistence (delegates to repro.logstore.diskio) ---------------

    def save(self, path: "str | Path") -> None:
        from repro.logstore.diskio import save_block

        save_block(path, self)

    @classmethod
    def load(cls, path: "str | Path", mmap: bool = False) -> "EntryBlock":
        from repro.logstore.diskio import load_block

        return load_block(path, mmap=mmap)


def blocks_from_entries(
    entries: Iterable[QueryLogEntry],
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Iterator[EntryBlock]:
    """Stream an entry iterable as a sequence of bounded-size blocks.

    The chunked construction primitive: at most *chunk_events* objects
    are converted per step, so feeding a streaming collector from a
    generator keeps memory bounded by the chunk, not the log.
    """
    if chunk_events <= 0:
        raise ValueError("chunk_events must be positive")
    it = iter(entries)
    while True:
        data = _take_chunk(it, chunk_events)
        if data is None:
            return
        yield EntryBlock(data)


def _take_chunk(it: Iterator[QueryLogEntry], chunk_events: int) -> np.ndarray | None:
    buf = np.empty(chunk_events, dtype=ENTRY_DTYPE)
    fill = 0
    for entry in it:
        buf[fill] = (entry.timestamp, entry.querier, entry.originator)
        fill += 1
        if fill == chunk_events:
            return buf
    if fill == 0:
        return None
    return buf[:fill].copy()


def concat_blocks(blocks: Sequence[EntryBlock]) -> EntryBlock:
    """Concatenate blocks into one; sortedness is carried when provable.

    The result is flagged sorted when every input is sorted and the
    blocks abut in non-decreasing time order (last record of each ≤
    first of the next) — the normal shape for chunked replay of an
    append-ordered log.
    """
    blocks = [b for b in blocks if len(b)]
    if not blocks:
        return EntryBlock.empty()
    if len(blocks) == 1:
        return blocks[0]
    data = np.concatenate([b.data for b in blocks])
    sorted_flag: bool | None = None
    if all(b.is_sorted for b in blocks):
        boundaries_ok = all(
            float(a.timestamps[-1]) <= float(b.timestamps[0])
            for a, b in zip(blocks, blocks[1:])
        )
        sorted_flag = True if boundaries_ok else None
    return EntryBlock(data, assume_sorted=sorted_flag)
