"""Columnar query-log store: the sensor's array-native ingest substrate.

Query logs move through the ingest plane as :class:`EntryBlock`\\ s —
numpy structured arrays of ``(timestamp: f8, querier: i8,
originator: i8)`` — instead of per-event ``QueryLogEntry`` objects.
Windowing and the § III-A 30 s dedup run as array math
(:func:`dedup_mask`), blocks persist to ``.npz`` archives or an
mmap-able ``.npy`` layout for larger-than-RAM replay
(:func:`save_block` / :func:`load_block` / :func:`iter_blocks`), and
chunked construction (:func:`blocks_from_entries`) bounds memory when
materializing object streams.

See docs/API.md for the supported surface and DESIGN.md for how the
columnar plane maps onto the paper's sensing pipeline.
"""

from repro.logstore.block import (
    ENTRY_DTYPE,
    EntryBlock,
    blocks_from_entries,
    concat_blocks,
)
from repro.logstore.diskio import iter_blocks, load_block, save_block
from repro.logstore.ops import dedup_mask

__all__ = [
    "ENTRY_DTYPE",
    "EntryBlock",
    "blocks_from_entries",
    "concat_blocks",
    "dedup_mask",
    "save_block",
    "load_block",
    "iter_blocks",
]
