"""Reverse-DNS zone data: PTR records and the delegation tree.

The ``in-addr.arpa`` namespace is delegated along octet boundaries:

* the *root* serves the top of the tree (``.``, ``in-addr.arpa`` and the
  per-/8 ``a.in-addr.arpa`` cuts — we merge these into one root-level cut
  keyed by the /8, as the paper does when it says "caching of the top of
  the tree (in-addr.arpa and 1.in-addr.arpa) filters many queries"),
* a *national / TLD-level* authority serves ``b.a.in-addr.arpa`` for the
  /8s delegated to its country (JP-DNS in the paper),
* the *final authority* — the originator's ISP or company — serves the PTR
  record itself.

:class:`ReverseZoneDb` holds the per-originator PTR facts the final
authority answers with: whether a name exists (else NXDOMAIN), the record
TTL (Table VII/VIII show real TTLs from 10 minutes to days, negative-cache
TTLs, and unreachable zones), and whether the final authority is reachable
at all (else SERVFAIL, the "F" rows of those tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnssim.message import PtrResponse, RCode
from repro.netmodel.addressing import ip_to_str, octets

__all__ = [
    "ROOT_DELEGATION_TTL",
    "NATIONAL_DELEGATION_TTL",
    "SERVFAIL_RETRY_TTL",
    "DEFAULT_NEGATIVE_TTL",
    "PtrRecordSpec",
    "ReverseZoneDb",
]

#: Effective lifetime of the top-of-tree cut (``in-addr.arpa`` / per-/8
#: zones) in resolver caches.  The records carry 2-day TTLs but capacity
#: eviction retires entries earlier; half a day reproduces the repeat-query
#: rates the paper measures at roots.
ROOT_DELEGATION_TTL: float = 12 * 3600.0

#: Effective lifetime of the /16 cut served by national-level
#: authorities.  Far below the nominal 1-2 day NS TTLs: these entries are
#: one-per-/16, so cache pressure evicts them within hours — which is why
#: JP-DNS sees several queries per querier per originator over 50 hours
#: (Table II's 1.7-4.7 queries/querier).
NATIONAL_DELEGATION_TTL: float = 2 * 3600.0

#: Resolvers do not cache SERVFAIL long; they retry after a short hold-down.
SERVFAIL_RETRY_TTL: float = 60.0

#: Effective cap on cached PTR answers.  PTR entries are one-per-address,
#: so they are the first victims of cache pressure; middleboxes are also
#: notorious for not honoring long TTLs.  Four hours reproduces the
#: several-queries-per-querier rates of Table II despite day-long record
#: TTLs.
PTR_CACHE_EVICTION_SECONDS: float = 4 * 3600.0

#: SOA-derived negative-cache TTL used when a spec does not override it.
DEFAULT_NEGATIVE_TTL: float = 15 * 60.0


@dataclass(frozen=True, slots=True)
class PtrRecordSpec:
    """The final authority's answer policy for one originator address."""

    has_name: bool = True
    ttl: float = 3600.0
    negative_ttl: float = DEFAULT_NEGATIVE_TTL
    reachable: bool = True
    name: str | None = None

    def response_for(self, addr: int) -> PtrResponse:
        """Materialize the PTR response the final authority would send."""
        if not self.reachable:
            return PtrResponse(rcode=RCode.SERVFAIL, name=None, ttl=SERVFAIL_RETRY_TTL)
        if not self.has_name:
            return PtrResponse(rcode=RCode.NXDOMAIN, name=None, ttl=self.negative_ttl)
        name = self.name or f"host-{ip_to_str(addr).replace('.', '-')}.example.net"
        return PtrResponse(rcode=RCode.NOERROR, name=name, ttl=self.ttl)


class ReverseZoneDb:
    """PTR record specs for all originators, with a default for strangers.

    Unregistered addresses resolve to NXDOMAIN with the default negative
    TTL — exactly what happens for the large unassigned swaths of real
    reverse space.
    """

    def __init__(self, default: PtrRecordSpec | None = None) -> None:
        self._records: dict[int, PtrRecordSpec] = {}
        self._default = default or PtrRecordSpec(
            has_name=False, ttl=0.0, negative_ttl=DEFAULT_NEGATIVE_TTL
        )

    def register(self, addr: int, spec: PtrRecordSpec) -> None:
        """Install the PTR policy for *addr* (overwrites any previous one)."""
        self._records[addr] = spec

    def spec_for(self, addr: int) -> PtrRecordSpec:
        return self._records.get(addr, self._default)

    def resolve(self, addr: int) -> PtrResponse:
        """What the final authority answers for *addr*."""
        return self.spec_for(addr).response_for(addr)

    def registered(self) -> list[int]:
        return sorted(self._records)

    def __contains__(self, addr: int) -> bool:
        return addr in self._records

    def __len__(self) -> int:
        return len(self._records)


def root_cut_key(addr: int) -> int:
    """Cache key for the root-level delegation covering *addr* (its /8)."""
    return octets(addr)[0]


def national_cut_key(addr: int) -> tuple[int, int]:
    """Cache key for the national-level /16 delegation covering *addr*."""
    a, b, _, _ = octets(addr)
    return (a, b)
