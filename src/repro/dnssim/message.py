"""DNS query/response value types.

The sensor consumes query *tuples*, not wire-format packets (§ III-A: logs
"result in an (originator, querier, authority) tuple"), so we model exactly
the fields the analyses need: QNAME/QTYPE/QCLASS for queries, an RCODE plus
answer name for responses, and timestamped log entries at authorities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netmodel.addressing import ip_to_reverse_name, reverse_name_to_ip

__all__ = ["QType", "RCode", "PtrQuery", "PtrResponse", "QueryLogEntry"]


class QType(enum.Enum):
    """Query types we model; the sensor retains only PTR."""

    PTR = 12
    A = 1


class RCode(enum.Enum):
    """Response codes relevant to backscatter analysis."""

    NOERROR = 0
    NXDOMAIN = 3
    SERVFAIL = 2


@dataclass(frozen=True, slots=True)
class PtrQuery:
    """A reverse query for one originator address (QCLASS is always IN)."""

    originator: int
    qtype: QType = QType.PTR

    @property
    def qname(self) -> str:
        return ip_to_reverse_name(self.originator)

    @classmethod
    def from_qname(cls, qname: str) -> "PtrQuery":
        return cls(originator=reverse_name_to_ip(qname))


@dataclass(frozen=True, slots=True)
class PtrResponse:
    """Answer to a PTR query: a name, NXDOMAIN, or SERVFAIL.

    ``ttl`` is the positive TTL for NOERROR and the negative-cache TTL
    (from the zone SOA) for NXDOMAIN; it is meaningless for SERVFAIL,
    which resolvers retry rather than cache long.
    """

    rcode: RCode
    name: str | None
    ttl: float

    @property
    def ok(self) -> bool:
        return self.rcode is RCode.NOERROR


@dataclass(frozen=True, slots=True)
class QueryLogEntry:
    """One line of an authority's query log.

    ``querier`` is the source address of the DNS packet (the recursive
    resolver or self-resolving middlebox); ``originator`` is decoded from
    the QNAME.  This is the tuple the whole sensor pipeline is built on.
    """

    timestamp: float
    querier: int
    originator: int

    @property
    def qname(self) -> str:
        return ip_to_reverse_name(self.originator)
