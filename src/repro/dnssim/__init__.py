"""DNS substrate: messages, TTL caches, reverse zones, resolvers, sensors.

Implements the resolution path of Figure 1 in the paper: querier →
recursive caches → (root | national | final) authorities, with the caching
attenuation that makes backscatter a sampled signal.
"""

from repro.dnssim.authority import Authority, AuthorityLevel, QueryLog
from repro.dnssim.cache import CacheStats, TtlCache
from repro.dnssim.hierarchy import (
    DEFAULT_ROOT_AFFINITY,
    DnsHierarchy,
    HierarchyStats,
    RootAffinity,
)
from repro.dnssim.message import PtrQuery, PtrResponse, QType, QueryLogEntry, RCode
from repro.dnssim.resolver import RecursiveResolver, ResolverConfig
from repro.dnssim.zone import (
    DEFAULT_NEGATIVE_TTL,
    NATIONAL_DELEGATION_TTL,
    ROOT_DELEGATION_TTL,
    SERVFAIL_RETRY_TTL,
    PtrRecordSpec,
    ReverseZoneDb,
)

__all__ = [
    "Authority",
    "AuthorityLevel",
    "QueryLog",
    "CacheStats",
    "TtlCache",
    "DEFAULT_ROOT_AFFINITY",
    "DnsHierarchy",
    "HierarchyStats",
    "RootAffinity",
    "PtrQuery",
    "PtrResponse",
    "QType",
    "QueryLogEntry",
    "RCode",
    "RecursiveResolver",
    "ResolverConfig",
    "DEFAULT_NEGATIVE_TTL",
    "NATIONAL_DELEGATION_TTL",
    "ROOT_DELEGATION_TTL",
    "SERVFAIL_RETRY_TTL",
    "PtrRecordSpec",
    "ReverseZoneDb",
]
