"""Wiring of the reverse-DNS hierarchy: resolution paths and sensors.

:class:`DnsHierarchy` is the simulator's data plane.  Activity models hand
it *touch-induced lookups* — "querier q resolves the PTR of originator o at
time t" — and it walks the resolver's caches, decides which authorities see
a packet, appends log entries at attached sensors, and returns the answer.

Root anycast/selection: real resolvers favor nearby root instances ("\
visibility is affected by selection algorithms that favor nearby DNS
servers", § II).  Each resolver picks a sticky preferred root letter from a
per-region affinity table; B-Root (single US site in 2014) is most popular
in North America, M-Root (7 sites across Asia/NA/Europe, operated by WIDE)
in Asia.  Roots other than the sensed letters (b, m) absorb the remaining
probability and are not observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnssim.authority import Authority, AuthorityLevel
from repro.dnssim.message import PtrResponse
from repro.dnssim.resolver import RecursiveResolver, ResolverConfig
from repro.dnssim.zone import PtrRecordSpec, ReverseZoneDb
from repro.netmodel.world import Querier, World

__all__ = ["RootAffinity", "HierarchyStats", "DnsHierarchy", "DEFAULT_ROOT_AFFINITY"]


#: Per-region probability that a resolver's preferred root is b or m; the
#: remainder goes to the 11 unobserved letters.
DEFAULT_ROOT_AFFINITY: dict[str, dict[str, float]] = {
    "na": {"b": 0.22, "m": 0.06},
    "asia": {"b": 0.04, "m": 0.26},
    "eu": {"b": 0.05, "m": 0.12},
    "sa": {"b": 0.12, "m": 0.04},
    "oc": {"b": 0.05, "m": 0.16},
    "africa": {"b": 0.07, "m": 0.09},
}

_OTHER_ROOT = "_other"


@dataclass(slots=True)
class RootAffinity:
    """Sticky root-letter selection from regional preference weights."""

    table: dict[str, dict[str, float]] = field(
        default_factory=lambda: {k: dict(v) for k, v in DEFAULT_ROOT_AFFINITY.items()}
    )

    def pick(self, region: str, rng: np.random.Generator) -> str:
        weights = self.table.get(region) or {"b": 1 / 13, "m": 1 / 13}
        roll = rng.random()
        accumulated = 0.0
        for letter, probability in weights.items():
            accumulated += probability
            if roll < accumulated:
                return letter
        return _OTHER_ROOT


@dataclass(slots=True)
class HierarchyStats:
    """Aggregate counters across all resolutions."""

    lookups: int = 0
    ptr_cache_hits: int = 0
    root_queries: int = 0
    national_queries: int = 0
    final_queries: int = 0


class DnsHierarchy:
    """Routes PTR lookups through caches to authorities.

    Parameters
    ----------
    world:
        The querier population (supplies regions and shared resolvers).
    zonedb:
        PTR record specs for all originators.
    seed:
        Dedicated RNG stream for cache warm-seeding and root selection, so
        identical activity inputs yield identical logs.
    resolver_config:
        Cache behaviour; see :class:`~repro.dnssim.resolver.ResolverConfig`.
    """

    def __init__(
        self,
        world: World,
        zonedb: ReverseZoneDb | None = None,
        seed: int = 715,
        resolver_config: ResolverConfig | None = None,
        affinity: RootAffinity | None = None,
    ) -> None:
        self.world = world
        self.zonedb = zonedb or ReverseZoneDb()
        self.resolver_config = resolver_config or ResolverConfig()
        self.affinity = affinity or RootAffinity()
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._resolvers: dict[int, RecursiveResolver] = {}
        self._regions: dict[str, str] = {
            c.code: c.region for c in world.geo.countries.values()
        }
        self.roots: dict[str, Authority] = {}
        self.nationals: list[Authority] = []
        self.finals: list[tuple[frozenset[int], Authority]] = []
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    # sensor attachment
    # ------------------------------------------------------------------

    def attach_root(self, authority: Authority) -> Authority:
        if authority.level is not AuthorityLevel.ROOT or not authority.root_letter:
            raise ValueError("root sensor needs level=ROOT and a root_letter")
        self.roots[authority.root_letter] = authority
        return authority

    def attach_national(self, authority: Authority) -> Authority:
        if authority.level is not AuthorityLevel.NATIONAL:
            raise ValueError("national sensor needs level=NATIONAL")
        if not authority.scope_slash8:
            raise ValueError("national sensor needs a /8 scope")
        self.nationals.append(authority)
        return authority

    def attach_final(self, addresses: frozenset[int], authority: Authority) -> Authority:
        """Attach a final-authority sensor for specific originator addresses."""
        if authority.level is not AuthorityLevel.FINAL:
            raise ValueError("final sensor needs level=FINAL")
        self.finals.append((addresses, authority))
        return authority

    def all_sensors(self) -> list[Authority]:
        return list(self.roots.values()) + self.nationals + [a for _, a in self.finals]

    def sensors_by_name(self) -> dict[str, Authority]:
        """Attached sensors keyed by authority name (names must be unique)."""
        sensors: dict[str, Authority] = {}
        for sensor in self.all_sensors():
            if sensor.name in sensors:
                raise ValueError(f"duplicate sensor name {sensor.name!r}")
            sensors[sensor.name] = sensor
        return sensors

    # ------------------------------------------------------------------
    # registration helpers
    # ------------------------------------------------------------------

    def register_originator(self, addr: int, spec: PtrRecordSpec) -> None:
        self.zonedb.register(addr, spec)

    # ------------------------------------------------------------------
    # the data plane
    # ------------------------------------------------------------------

    def resolver_for(self, querier: Querier) -> RecursiveResolver:
        """The resolver a querier uses — itself; shared machines are shared.

        Each resolver gets a private RNG stream derived from (hierarchy
        seed, address), so root selection and cache warm-seeding do not
        depend on the order in which resolvers are first touched — logs
        are invariant to engine chunking and to unrelated traffic.
        """
        resolver = self._resolvers.get(querier.addr)
        if resolver is None:
            region = self._regions.get(querier.country, "na")
            child = np.random.default_rng(
                np.random.SeedSequence(entropy=(self._seed, querier.addr))
            )
            resolver = RecursiveResolver(
                addr=querier.addr,
                shared=querier.shared,
                region=region,
                preferred_root=self.affinity.pick(region, child),
                config=self.resolver_config,
                rng=child,
            )
            self._resolvers[querier.addr] = resolver
        return resolver

    def observable(self, querier: Querier) -> bool:
        """Whether a lookup by *querier* can ever reach an attached sensor.

        With only root sensors attached, a resolver whose sticky preferred
        root is an unsensed letter can never produce a log entry, and its
        private cache state influences nothing observable — so callers may
        skip its lookups entirely.  This is an exact optimization, not an
        approximation: caches are per-resolver and the PTR answer itself
        has no side effects.
        """
        if self.nationals or self.finals:
            return True
        if not self.roots:
            return False
        return self.resolver_for(querier).preferred_root in self.roots

    def resolve_ptr(self, querier: Querier, originator: int, now: float) -> PtrResponse:
        """Resolve the originator's PTR on behalf of *querier* at time *now*.

        Side effects: cache fills in the querier's resolver and log entries
        at every attached sensor whose level the lookup actually reached.
        """
        self.stats.lookups += 1
        resolver = self.resolver_for(querier)
        cached = resolver.cached_answer(originator, now)
        if cached is not None:
            self.stats.ptr_cache_hits += 1
            return cached
        rng = resolver.rng
        if not resolver.root_cut_cached(originator, now, rng):
            self.stats.root_queries += 1
            sensor = self.roots.get(resolver.preferred_root)
            if sensor is not None:
                if resolver.minimizes:
                    sensor.observe_minimized(now)
                else:
                    sensor.observe(now, resolver.addr, originator)
            resolver.note_root_fetched(originator, now)
        if not resolver.national_cut_cached(originator, now, rng):
            self.stats.national_queries += 1
            for sensor in self.nationals:
                if sensor.covers(originator):
                    if resolver.minimizes:
                        sensor.observe_minimized(now)
                    else:
                        sensor.observe(now, resolver.addr, originator)
            resolver.note_national_fetched(originator, now)
        self.stats.final_queries += 1
        for addresses, sensor in self.finals:
            if originator in addresses:
                sensor.observe(now, resolver.addr, originator)
        response = self.zonedb.resolve(originator)
        resolver.store_answer(originator, response, now)
        return response

    # ------------------------------------------------------------------

    def reset_sensors(self) -> None:
        for sensor in self.all_sensors():
            sensor.reset()
