"""TTL caches as used by recursive resolvers.

Caching is the central obstacle the paper works around: it attenuates the
backscatter signal at every level of the hierarchy (§ II, § IV-D), and it
is why querier counts only *approximate* activity size.  We model it
faithfully: per-entry expiry, optional minimum-TTL clamping ("some
resolvers force a short minimum caching period", § IV-D), zero-TTL entries
never cached, and hit/miss accounting for the validation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["CacheStats", "TtlCache"]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/insert counters; ``hits + misses == lookups`` always."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(slots=True)
class TtlCache(Generic[K, V]):
    """A simulation-clock TTL cache.

    Time is an explicit float argument (simulation seconds), never wall
    clock.  Entries expire strictly: an entry stored at t with TTL T is
    served for lookups at times < t + T and is a miss at t + T exactly.

    ``min_ttl`` models resolvers that refuse to honor very small TTLs;
    a genuine TTL of 0 is still never cached (the controlled experiment in
    § IV-D relies on TTL=0 defeating caching at the final authority), but
    TTLs in (0, min_ttl) are raised to ``min_ttl``.
    """

    min_ttl: float = 0.0
    max_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: dict[K, tuple[V, float]] = field(default_factory=dict)

    def get(self, key: K, now: float) -> V | None:
        """The cached value, or ``None`` on miss/expiry (expired entries evicted)."""
        entry = self._entries.get(key)
        if entry is not None:
            value, expiry = entry
            if now < expiry:
                self.stats.hits += 1
                return value
            del self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: K, now: float) -> V | None:
        """Like :meth:`get` but without touching statistics or evicting."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, expiry = entry
        return value if now < expiry else None

    def put(self, key: K, value: V, ttl: float, now: float) -> bool:
        """Store *value* for *ttl* seconds; returns False when not cacheable."""
        if ttl <= 0:
            return False
        ttl = max(ttl, self.min_ttl)
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            if key not in self._entries:
                self._evict_one(now)
        self._entries[key] = (value, now + ttl)
        self.stats.inserts += 1
        return True

    def _evict_one(self, now: float) -> None:
        """Drop an expired entry if any, else the earliest-expiring one."""
        victim: K | None = None
        soonest = float("inf")
        for key, (_, expiry) in self._entries.items():
            if expiry <= now:
                victim = key
                break
            if expiry < soonest:
                soonest = expiry
                victim = key
        if victim is not None:
            del self._entries[victim]

    def flush(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def purge_expired(self, now: float) -> int:
        """Remove expired entries; returns how many were dropped."""
        dead = [k for k, (_, expiry) in self._entries.items() if expiry <= now]
        for key in dead:
            del self._entries[key]
        return len(dead)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries
