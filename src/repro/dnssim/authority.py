"""Authoritative-server sensors: query logging, sampling, anycast scope.

An :class:`Authority` is a *vantage point*: it appends a
:class:`~repro.dnssim.message.QueryLogEntry` for every reverse query that
reaches its level of the hierarchy and falls inside its scope.  Three
scopes exist, mirroring the paper's datasets:

* **root** — sees queries for any originator, but only from resolvers that
  selected this root letter (anycast/affinity, handled by the hierarchy)
  and whose top-of-tree caches were cold;
* **national** — sees queries only for originators inside the country's
  delegated /8 blocks (JP-DNS sees only JP space);
* **final** — the originator's own reverse server; sees every PTR cache
  miss for its addresses (used by the § IV-D controlled experiments).

``sampling`` reproduces M-sampled's deterministic 1-in-10 collection: the
authority still *answers* everything, but only every N-th arriving reverse
query is written to the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dnssim.message import QueryLogEntry
from repro.netmodel.addressing import slash8

__all__ = ["AuthorityLevel", "Authority", "QueryLog"]


class AuthorityLevel(enum.Enum):
    ROOT = "root"
    NATIONAL = "national"
    FINAL = "final"


@dataclass(slots=True)
class QueryLog:
    """Append-only log of reverse queries observed at one authority."""

    entries: list[QueryLogEntry] = field(default_factory=list)

    def append(self, entry: QueryLogEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def between(self, start: float, end: float) -> list[QueryLogEntry]:
        """Entries with ``start <= timestamp < end`` (log is time-ordered)."""
        return [e for e in self.entries if start <= e.timestamp < end]

    def block(self):
        """The log as a columnar :class:`~repro.logstore.EntryBlock` —
        the native replay form for the array ingest plane."""
        from repro.logstore import EntryBlock

        return EntryBlock.from_entries(self.entries)

    def clear(self) -> None:
        self.entries.clear()


@dataclass(slots=True)
class Authority:
    """One logging vantage point in the reverse-DNS hierarchy."""

    name: str
    level: AuthorityLevel
    root_letter: str | None = None
    """Which root instance this is (e.g. ``'b'``, ``'m'``); root level only."""
    country: str | None = None
    """Country whose delegated space this serves; national level only."""
    scope_slash8: frozenset[int] = frozenset()
    """First octets inside this authority's delegation (national/final)."""
    sampling: int = 1
    """Log every N-th arriving reverse query (1 = unsampled)."""
    sites: int = 1
    """Anycast site count, for documentation / Table I reporting."""
    log: QueryLog = field(default_factory=QueryLog)
    seen_reverse: int = 0
    """All arriving reverse queries, before sampling."""
    seen_minimized: int = 0
    """Reverse-tree queries from QNAME-minimizing resolvers: counted but
    unattributable — the QNAME carries only this level's labels, so the
    sensor cannot recover the originator from them."""

    def covers(self, originator: int) -> bool:
        """Whether a query for *originator* falls inside this authority's zone."""
        if self.level is AuthorityLevel.ROOT:
            return True
        return slash8(originator) in self.scope_slash8

    def observe(self, timestamp: float, querier: int, originator: int) -> None:
        """Record an arriving reverse query, honoring deterministic sampling."""
        self.seen_reverse += 1
        if self.sampling > 1 and (self.seen_reverse % self.sampling) != 0:
            return
        self.log.append(
            QueryLogEntry(timestamp=timestamp, querier=querier, originator=originator)
        )

    def observe_minimized(self, timestamp: float) -> None:
        """Record an arriving minimized query (nothing to attribute)."""
        del timestamp
        self.seen_minimized += 1

    def reset(self) -> None:
        """Drop the log and counters (between dataset generations)."""
        self.log.clear()
        self.seen_reverse = 0
        self.seen_minimized = 0
