"""Recursive resolvers with realistic cache state.

Every querier in the world resolves reverse names through a
:class:`RecursiveResolver` — either itself (a self-resolving firewall or
mail server) or its AS's shared resolver.  The resolver holds three caches
that produce the paper's attenuation (§ II, § IV-D):

* the **PTR cache** (positive, negative, and short servfail entries),
* the **top-of-tree delegation cache** (root-level cut, ~2-day TTL),
* the **national delegation cache** (/16 cut, ~1-day TTL).

A query is visible at the root only when the top cut is cold, at the
national authority only when the /16 cut is cold, and at the final
authority on every PTR cache miss.

Cold-start realism: a resolver that has been running for years does not
start our simulation with empty delegation caches.  On the first touch of
a delegation key we seed it as *warm* with a configurable probability and
a residual lifetime drawn uniformly in (0, TTL] — the stationary state of
a periodically refreshed cache entry.  Shared resolvers (busy, serving
many clients) are warmer than self-resolving middleboxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnssim.cache import TtlCache
from repro.dnssim.message import PtrResponse, RCode
from repro.dnssim.zone import (
    NATIONAL_DELEGATION_TTL,
    PTR_CACHE_EVICTION_SECONDS,
    ROOT_DELEGATION_TTL,
    SERVFAIL_RETRY_TTL,
    national_cut_key,
    root_cut_key,
)

__all__ = ["ResolverConfig", "RecursiveResolver"]


@dataclass(frozen=True, slots=True)
class ResolverConfig:
    """Cache behaviour knobs; defaults are calibrated against Fig 4."""

    min_ttl: float = 5.0
    """Smallest positive TTL the resolver honors ("some resolvers force a
    short minimum caching period", § IV-D); TTL=0 is still never cached."""
    root_warm_shared: float = 0.995
    root_warm_self: float = 0.985
    """Probability the top-of-tree cut is already cached at first touch."""
    national_warm_shared: float = 0.90
    national_warm_self: float = 0.70
    """Probability the /16 cut is already cached at first touch."""
    qname_minimization_fraction: float = 0.0
    """Fraction of resolvers deploying QNAME minimization (RFC 7816).
    A minimizing resolver sends only the labels each level needs, so
    root- and national-level sensors never learn the full originator —
    exactly the § VII caveat: "Use of query minimization at the queriers
    will constrain the signal to only the local authority"."""


class RecursiveResolver:
    """Cache state for one resolving machine."""

    __slots__ = (
        "addr",
        "shared",
        "region",
        "preferred_root",
        "config",
        "rng",
        "minimizes",
        "ptr_cache",
        "root_cache",
        "national_cache",
        "_seeded_root",
        "_seeded_national",
    )

    def __init__(
        self,
        addr: int,
        shared: bool,
        region: str,
        preferred_root: str,
        config: ResolverConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.addr = addr
        self.shared = shared
        self.region = region
        self.preferred_root = preferred_root
        self.config = config
        # Private stream for warm-seeding draws: derived from the address
        # by the hierarchy, so cache state is independent of the order in
        # which resolvers are created or first used.
        self.rng = rng if rng is not None else np.random.default_rng(addr)
        self.minimizes = bool(
            self.rng.random() < config.qname_minimization_fraction
        )
        self.ptr_cache: TtlCache[int, PtrResponse] = TtlCache(min_ttl=config.min_ttl)
        self.root_cache: TtlCache[int, bool] = TtlCache()
        self.national_cache: TtlCache[tuple[int, int], bool] = TtlCache()
        self._seeded_root: set[int] = set()
        self._seeded_national: set[tuple[int, int]] = set()

    # -- delegation cache checks (with stationary warm seeding) ----------

    def root_cut_cached(self, originator: int, now: float, rng: np.random.Generator) -> bool:
        """True when the top-of-tree cut for *originator* is warm."""
        key = root_cut_key(originator)
        if key not in self._seeded_root:
            self._seeded_root.add(key)
            warm = (
                self.config.root_warm_shared
                if self.shared
                else self.config.root_warm_self
            )
            if rng.random() < warm:
                residual = float(rng.uniform(0.0, ROOT_DELEGATION_TTL))
                # put() stores now + ttl, so residual is the remaining life.
                self.root_cache.put(key, True, residual, now)
        return self.root_cache.get(key, now) is not None

    def note_root_fetched(self, originator: int, now: float) -> None:
        self.root_cache.put(root_cut_key(originator), True, ROOT_DELEGATION_TTL, now)

    def national_cut_cached(
        self, originator: int, now: float, rng: np.random.Generator
    ) -> bool:
        """True when the /16 cut for *originator* is warm."""
        key = national_cut_key(originator)
        if key not in self._seeded_national:
            self._seeded_national.add(key)
            warm = (
                self.config.national_warm_shared
                if self.shared
                else self.config.national_warm_self
            )
            if rng.random() < warm:
                residual = float(rng.uniform(0.0, NATIONAL_DELEGATION_TTL))
                self.national_cache.put(key, True, residual, now)
        return self.national_cache.get(key, now) is not None

    def note_national_fetched(self, originator: int, now: float) -> None:
        self.national_cache.put(
            national_cut_key(originator), True, NATIONAL_DELEGATION_TTL, now
        )

    # -- PTR answer caching ----------------------------------------------

    def cached_answer(self, originator: int, now: float) -> PtrResponse | None:
        return self.ptr_cache.get(originator, now)

    def store_answer(self, originator: int, response: PtrResponse, now: float) -> None:
        if response.rcode is RCode.SERVFAIL:
            ttl = SERVFAIL_RETRY_TTL
        else:
            # Cache pressure evicts PTR answers long before day-long TTLs
            # expire; see zone.PTR_CACHE_EVICTION_SECONDS.
            ttl = min(response.ttl, PTR_CACHE_EVICTION_SECONDS)
        self.ptr_cache.put(originator, response, ttl, now)
