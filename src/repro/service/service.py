"""The always-on detection service: live feed in, verdicts + alerts out.

:class:`BackscatterService` is the operational deployment of the
paper's sensor (§ I frames it as an early-warning system): a
long-running asyncio process that

* accepts a live query-log feed — a line/``.rbsc`` socket listener, a
  tailed file, or the in-process :meth:`~BackscatterService.submit_block`
  API — decoded incrementally by :class:`~repro.service.FeedReader`;
* drives :class:`~repro.sensor.engine.SensorEngine` (or a sharded
  :class:`~repro.federation.FederatedSensor`) streaming ingest behind
  the global watermark, one block at a time, on a single pump task;
* at each window close emits verdicts, updates
  :class:`~repro.analysis.alerts.SurgeDetector` baselines, and feeds
  the :class:`~repro.service.ModelManager` retraining loop;
* serves ``GET /verdicts`` / ``/alerts`` / ``/healthz`` / ``/metrics``
  (the existing Prometheus text export) over a dependency-free
  HTTP layer.

The hot-swap guarantee: models are fitted off the pump task (thread
executor) and installed by :meth:`ModelManager.apply_pending` only
*between* blocks; since a window is classified exactly once, at close,
inside ``poll()``, every window's verdicts come from one complete model
and no event is dropped while models change.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter as TallyCounter
from collections import deque
from typing import TYPE_CHECKING

from repro.analysis.alerts import SurgeDetector
from repro.federation import FederatedSensor
from repro.netmodel.addressing import ip_to_str
from repro.sensor.engine import SECONDS_PER_DAY, SensorEngine
from repro.sensor.training import Strategy
from repro.service.config import ServiceConfig
from repro.service.feed import FeedReader
from repro.service.http import HttpServer, json_response
from repro.service.manager import ModelManager
from repro.telemetry import MetricsRegistry, count, set_gauge, use_registry

if TYPE_CHECKING:
    from repro.logstore import EntryBlock
    from repro.sensor.curation import LabeledSet
    from repro.sensor.directory import QuerierDirectory
    from repro.sensor.features import FeatureSet

__all__ = ["BackscatterService"]


class BackscatterService:
    """One running sensor deployment; see the module docstring.

    Lifecycle: construct → :meth:`fit` / :meth:`fit_from` (optional but
    required for verdicts) → ``await start()`` → feed it (socket, tail,
    or :meth:`submit_block`) → ``await stop()``.  All feed ingestion
    funnels through one internal queue consumed by a single pump task,
    so engine state never sees concurrent mutation.  Unless noted,
    methods must be called on the service's event loop.
    """

    def __init__(
        self,
        directory: "QuerierDirectory | None",
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        if self.config.shards > 1:
            self.engine: "SensorEngine | FederatedSensor" = FederatedSensor(
                directory,
                self.config.sensor,
                n_shards=self.config.shards,
                registry=self.registry,
                processes=self.config.shard_processes,
            )
        else:
            self.engine = SensorEngine(
                directory, self.config.sensor, registry=self.registry
            )
        self.manager: ModelManager | None = None
        self._unsubscribes = [self.engine.on_window(self._handle_window)]
        if self.config.on_window is not None:
            self._unsubscribes.append(self.engine.on_window(self.config.on_window))
        self._detectors = {
            app_class: SurgeDetector(
                app_class,
                window=self.config.alert_window,
                threshold=self.config.alert_threshold,
                min_relative=self.config.alert_min_relative,
            )
            for app_class in self.config.alert_classes
        }
        # The pump runs engine steps on an executor thread while HTTP
        # handlers read on the loop; this lock covers the shared records.
        self._state_lock = threading.Lock()
        self._windows: deque[dict] = deque(maxlen=self.config.verdict_history)
        self._alerts: list[dict] = []
        self.windows_total = 0
        self.events_total = 0
        self.verdicts_total = 0
        self.swap_outcomes: TallyCounter[str] = TallyCounter()
        self._newest_ts: float | None = None
        self._last_window_end: float | None = None
        self._queue: asyncio.Queue["EntryBlock"] | None = None
        self._pump_task: asyncio.Task | None = None
        self._tail_task: asyncio.Task | None = None
        self._http = HttpServer(
            {
                "/healthz": lambda: json_response(self.health()),
                "/verdicts": lambda: json_response({"windows": self.windows()}),
                "/alerts": lambda: json_response({"alerts": self.alerts()}),
                "/metrics": lambda: (
                    200,
                    "text/plain; version=0.0.4",
                    self.registry.to_prometheus().encode(),
                ),
            },
            observe=self._observe_http,
        )
        self._feed_server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        self._started = False

    # -- training -------------------------------------------------------

    def fit(
        self, features: "FeatureSet", labeled: "LabeledSet"
    ) -> "BackscatterService":
        """Train the initial model and arm the retraining loop."""
        self.engine.fit(features, labeled)
        self._arm_retraining(labeled)
        return self

    def fit_from(
        self, trainer: SensorEngine, labeled: "LabeledSet | None" = None
    ) -> "BackscatterService":
        """Adopt a model trained elsewhere (the CLI's batch trainer).

        *labeled* is required when the configured strategy retrains —
        retrain-daily refits from the curated set on fresh features, and
        auto-grow seeds from it.
        """
        self.engine.fit_from(trainer)
        self._arm_retraining(labeled)
        return self

    def _arm_retraining(self, labeled: "LabeledSet | None") -> None:
        strategy = self.config.retrain
        if strategy not in (Strategy.TRAIN_DAILY, Strategy.AUTO_GROW):
            return
        if labeled is None:
            raise ValueError(
                f"retrain strategy {strategy.value!r} needs the labeled set"
            )
        self.manager = ModelManager(
            labeled,
            strategy,
            factory=self.config.sensor.classifier_factory,
            min_per_class=self.config.retrain_min_per_class,
            min_total=self.config.retrain_min_total,
            seed=self.config.sensor.seed,
        )

    @property
    def model_version(self) -> int:
        """0 = the initially-fitted model; bumped per hot-swap."""
        return self.manager.version if self.manager is not None else 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "BackscatterService":
        """Bind HTTP (and the optional feed listener/tail), start the pump."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._queue = asyncio.Queue()
        self._pump_task = asyncio.create_task(self._pump(), name="service-pump")
        await self._http.start(self.config.host, self.config.port)
        if self.config.feed_port is not None:
            self._feed_server = await asyncio.start_server(
                self._handle_feed, self.config.host, self.config.feed_port
            )
        if self.config.feed_path is not None:
            self._tail_task = asyncio.create_task(
                self._tail(), name="service-tail"
            )
        return self

    @property
    def http_address(self) -> tuple[str, int] | None:
        """Actual (host, port) of the HTTP listener once started."""
        return self._http.address

    @property
    def feed_address(self) -> tuple[str, int] | None:
        """Actual (host, port) of the feed listener, if configured."""
        if self._feed_server is None or not self._feed_server.sockets:
            return None
        bound = self._feed_server.sockets[0].getsockname()
        return bound[0], bound[1]

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger; ``wait_shutdown`` wakes up."""
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        """Park until :meth:`request_shutdown` (SIGTERM handler) fires."""
        await self._shutdown.wait()

    async def drain(self) -> None:
        """Wait until every submitted block has been pumped through."""
        if self._queue is not None:
            await self._queue.join()

    async def stop(self) -> "BackscatterService":
        """Graceful shutdown: drain, final swap, flush windows, unbind."""
        if not self._started:
            return self
        if self._feed_server is not None:
            self._feed_server.close()
            await self._feed_server.wait_closed()
            self._feed_server = None
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except asyncio.CancelledError:
                pass
            self._tail_task = None
        await self.drain()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self.manager is not None:
            self.manager.wait_pending()
            self._record_swap(self.manager.apply_pending(self.engine))
        await asyncio.get_running_loop().run_in_executor(None, self.engine.finish)
        await self._http.stop()
        if self.manager is not None:
            self.manager.close()
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
        self._started = False
        return self

    # -- feed ingestion -------------------------------------------------

    def submit_block(self, block: "EntryBlock") -> None:
        """Queue one decoded block for the pump (in-process feed API)."""
        if self._queue is None:
            raise RuntimeError("service not started")
        self._queue.put_nowait(block)

    async def _pump(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            block = await self._queue.get()
            try:
                # Engine work is CPU-bound numpy; run it off the loop so
                # HTTP stays responsive under large blocks.
                await loop.run_in_executor(None, self._step, block)
            finally:
                self._queue.task_done()

    def _step(self, block: "EntryBlock") -> None:
        if self.manager is not None:
            self._record_swap(self.manager.apply_pending(self.engine))
        if len(block):
            self.engine.ingest_block(block)
            self.events_total += len(block)
            newest = float(block.timestamps.max())
            if self._newest_ts is None or newest > self._newest_ts:
                self._newest_ts = newest
            self._count("repro_service_events_total", len(block),
                        help="Feed events accepted by the service.")
        self.engine.poll()
        self._update_lag()

    def _record_swap(self, outcome: str) -> None:
        if outcome == "none":
            return
        self.swap_outcomes[outcome] += 1
        self._count("repro_service_swap_total", 1,
                    help="Model hot-swap attempts by outcome.", outcome=outcome)

    def _update_lag(self) -> None:
        if self._newest_ts is None:
            return
        closed = self._last_window_end
        origin = self.config.sensor.origin
        lag = self._newest_ts - (closed if closed is not None else origin or 0.0)
        with use_registry(self.registry):
            set_gauge("repro_service_feed_lag_seconds", max(0.0, lag),
                      help="Newest feed timestamp minus last closed window end.")

    # -- window close ---------------------------------------------------

    def _handle_window(self, sensed: object) -> None:
        bounds = getattr(sensed, "window", sensed)
        start, end = float(bounds.start), float(bounds.end)
        verdicts = list(getattr(sensed, "verdicts", []))
        self.windows_total += 1
        self.verdicts_total += len(verdicts)
        self._last_window_end = end
        record = {
            "start": start,
            "end": end,
            "model_version": self.model_version,
            "verdicts": [
                {
                    "originator": ip_to_str(int(v.originator)),
                    "app_class": v.app_class,
                    "footprint": int(v.footprint),
                }
                for v in verdicts
            ],
        }
        with self._state_lock:
            self._windows.append(record)
        self._count("repro_service_windows_total", 1,
                    help="Observation windows closed by the service.")
        if verdicts:
            # Untrained/empty windows carry no class signal; feeding
            # zeros would poison the surge baselines (same rule as
            # analysis.alerts.detect_surges).
            mid_day = (start + end) / 2.0 / SECONDS_PER_DAY
            tallies = TallyCounter(v.app_class for v in verdicts)
            for app_class, detector in self._detectors.items():
                alert = detector.update(mid_day, tallies.get(app_class, 0))
                if alert is not None:
                    with self._state_lock:
                        self._alerts.append(
                            {
                                "day": alert.day,
                                "app_class": alert.app_class,
                                "observed": alert.observed,
                                "baseline": alert.baseline,
                                "score": alert.score,
                            }
                        )
                    self._count("repro_service_alerts_total", 1,
                                help="Surge alerts raised.", app_class=app_class)
        if self.manager is not None:
            self.manager.observe_window(sensed)

    # -- feed transports ------------------------------------------------

    async def _handle_feed(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("repro_service_feed_connections_total", 1,
                    help="Feed socket connections accepted.")
        decoder = FeedReader(self.config.feed_format)
        try:
            while True:
                data = await reader.read(self.config.feed_chunk)
                if not data:
                    break
                block = decoder.feed(data)
                if len(block):
                    self.submit_block(block)
            tail = decoder.close()
            if len(tail):
                self.submit_block(tail)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _tail(self) -> None:
        decoder = FeedReader(self.config.feed_format)
        with open(self.config.feed_path, "rb") as handle:
            while True:
                data = handle.read(self.config.feed_chunk)
                if not data:
                    await asyncio.sleep(self.config.feed_poll_seconds)
                    continue
                block = decoder.feed(data)
                if len(block):
                    self.submit_block(block)

    # -- observability --------------------------------------------------

    def windows(self) -> list[dict]:
        """Retained window records, oldest first (the ``/verdicts`` body)."""
        with self._state_lock:
            return list(self._windows)

    def alerts(self) -> list[dict]:
        """Every surge alert raised so far (the ``/alerts`` body)."""
        with self._state_lock:
            return list(self._alerts)

    def health(self) -> dict:
        """The ``/healthz`` document."""
        lag = 0.0
        if self._newest_ts is not None and self._last_window_end is not None:
            lag = max(0.0, self._newest_ts - self._last_window_end)
        return {
            "status": "ok",
            "windows": self.windows_total,
            "events": self.events_total,
            "verdicts": self.verdicts_total,
            "alerts": len(self._alerts),
            "model_version": self.model_version,
            "retrain": self.config.retrain.value if self.config.retrain else None,
            "swaps": dict(self.swap_outcomes),
            "feed_lag_seconds": lag,
            "shards": self.config.shards,
        }

    def _observe_http(self, path: str, status: int) -> None:
        self._count("repro_service_http_requests_total", 1,
                    help="HTTP requests served.", endpoint=path, status=status)

    def _count(self, name: str, amount: float, help: str = "", **labels) -> None:
        with use_registry(self.registry):
            count(name, amount, help=help, **labels)
