"""Incremental feed decoding: bytes in, :class:`EntryBlock` out.

A live feed arrives in arbitrary chunks — a socket read can end mid
text line or mid ``.rbsc`` frame.  :class:`FeedReader` buffers the
partial tail and decodes everything complete, so callers can push
whatever the transport hands them and submit the returned blocks
straight into the engine.  Both wire formats the offline readers
understand are supported, plus auto-sniffing on the ``RBSC`` magic:

* **text** — ``timestamp querier-ip reverse-qname`` lines, ``#``
  comments and blank lines ignored (the :mod:`repro.datasets.io`
  format);
* **rbsc** — the framed binary format of :mod:`repro.datasets.dnstap`:
  6-byte header, then fixed 18-byte length-prefixed frames, decoded
  with one ``np.frombuffer`` per chunk.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.datasets.dnstap import MAGIC, VERSION
from repro.logstore import ENTRY_DTYPE, EntryBlock
from repro.netmodel.addressing import reverse_name_to_ip, str_to_ip

__all__ = ["FeedReader"]

_HEADER = struct.Struct(">4sH")
_RECORD_SIZE = 18  # 2-byte length prefix + 16-byte (>dII) body
_FRAME_SIZE = 16
_RECORD_DTYPE = np.dtype(
    [("length", ">u2"), ("timestamp", ">f8"), ("querier", ">u4"), ("originator", ">u4")]
)


class FeedReader:
    """Stateful chunk decoder for one feed connection.

    ``feed(data)`` consumes a chunk and returns the entries completed by
    it (possibly empty); ``close()`` flushes the final unterminated text
    line and raises on a truncated binary frame.  A reader constructed
    with ``format="auto"`` resolves to ``rbsc`` iff the stream opens
    with the ``RBSC`` magic (decided once at least 4 bytes arrive).
    """

    def __init__(self, format: str = "auto") -> None:
        if format not in ("auto", "text", "rbsc"):
            raise ValueError(f"unknown feed format {format!r}")
        self._format = format
        self._buffer = bytearray()
        self._header_seen = False
        self._closed = False
        self.entries_decoded = 0

    @property
    def format(self) -> str:
        """Resolved wire format; ``auto`` until enough bytes to sniff."""
        return self._format

    def feed(self, data: bytes) -> EntryBlock:
        """Consume one chunk; returns the entries it completed."""
        if self._closed:
            raise ValueError("feed() after close()")
        self._buffer.extend(data)
        if self._format == "auto":
            if len(self._buffer) < len(MAGIC):
                return EntryBlock.empty()
            self._format = (
                "rbsc" if bytes(self._buffer[: len(MAGIC)]) == MAGIC else "text"
            )
        if self._format == "rbsc":
            return self._decode_rbsc()
        return self._decode_text(final=False)

    def close(self) -> EntryBlock:
        """Flush the tail; raises ``ValueError`` on binary truncation."""
        if self._closed:
            return EntryBlock.empty()
        self._closed = True
        if self._format == "rbsc":
            if self._buffer:
                raise ValueError(
                    f"feed truncated: {len(self._buffer)} bytes of partial frame"
                )
            return EntryBlock.empty()
        # Auto that never saw 4 bytes is a (possibly empty) text tail.
        self._format = "text"
        return self._decode_text(final=True)

    # -- text -----------------------------------------------------------

    def _decode_text(self, final: bool) -> EntryBlock:
        raw = self._buffer
        cut = len(raw) if final else raw.rfind(b"\n") + 1
        if cut <= 0:
            return EntryBlock.empty()
        complete = bytes(raw[:cut])
        del raw[:cut]
        rows: list[tuple[float, int, int]] = []
        for line in complete.decode("ascii").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise ValueError(
                    f"feed: expected 'timestamp querier qname', got {line!r}"
                )
            timestamp, querier, qname = fields
            rows.append(
                (float(timestamp), str_to_ip(querier), reverse_name_to_ip(qname))
            )
        if not rows:
            return EntryBlock.empty()
        self.entries_decoded += len(rows)
        return EntryBlock(np.array(rows, dtype=ENTRY_DTYPE))

    # -- rbsc -----------------------------------------------------------

    def _decode_rbsc(self) -> EntryBlock:
        if not self._header_seen:
            if len(self._buffer) < _HEADER.size:
                return EntryBlock.empty()
            magic, version = _HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ValueError(f"feed: bad magic {magic!r} (expected {MAGIC!r})")
            if version != VERSION:
                raise ValueError(
                    f"feed: unsupported version {version} (expected {VERSION})"
                )
            del self._buffer[: _HEADER.size]
            self._header_seen = True
        n = len(self._buffer) // _RECORD_SIZE
        if n == 0:
            return EntryBlock.empty()
        complete = bytes(self._buffer[: n * _RECORD_SIZE])
        del self._buffer[: n * _RECORD_SIZE]
        records = np.frombuffer(complete, dtype=_RECORD_DTYPE, count=n)
        bad = np.flatnonzero(records["length"] != _FRAME_SIZE)
        if bad.size:
            raise ValueError(
                f"feed: invalid frame length {int(records['length'][bad[0]])} "
                f"(expected {_FRAME_SIZE})"
            )
        self.entries_decoded += n
        return EntryBlock.from_arrays(
            records["timestamp"].astype(np.float64),
            records["querier"].astype(np.int64),
            records["originator"].astype(np.int64),
        )
