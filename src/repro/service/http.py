"""Minimal HTTP/1.1 on ``asyncio.start_server`` — no web framework.

Just enough protocol for the service's four read-only endpoints:
request line + headers parsed, query strings stripped, ``GET``/``HEAD``
honored, everything else ``405``.  Responses are one-shot
(``Connection: close``); the handler table maps a path to a callable
returning ``(status, content_type, body)``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

__all__ = ["HttpServer", "json_response"]

Handler = Callable[[], tuple[int, str, bytes]]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

_MAX_HEADER_BYTES = 16384


def json_response(payload: object, status: int = 200) -> tuple[int, str, bytes]:
    """A handler return value carrying a JSON document."""
    body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
    return status, "application/json", body


class HttpServer:
    """Routes ``GET``s to handler callables over ``asyncio.start_server``."""

    def __init__(
        self,
        routes: dict[str, Handler],
        observe: Callable[[str, int], None] | None = None,
    ) -> None:
        self.routes = dict(routes)
        self._observe = observe
        self._server: asyncio.Server | None = None

    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and serve; returns the actual (host, port) bound."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    @property
    def address(self) -> tuple[str, int] | None:
        if self._server is None or not self._server.sockets:
            return None
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                raw = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            if len(raw) > _MAX_HEADER_BYTES:
                await self._respond(writer, "?", 400, "text/plain", b"headers too large\n")
                return
            request_line = raw.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split()
            if len(parts) != 3:
                await self._respond(writer, "?", 400, "text/plain", b"bad request\n")
                return
            method, target, _version = parts
            path = target.split("?", 1)[0]
            if method not in ("GET", "HEAD"):
                await self._respond(
                    writer, path, 405, "text/plain", b"method not allowed\n"
                )
                return
            handler = self.routes.get(path)
            if handler is None:
                status, ctype, body = json_response(
                    {"error": "not found", "endpoints": sorted(self.routes)}, 404
                )
            else:
                try:
                    status, ctype, body = handler()
                except Exception as error:  # surface, don't kill the server
                    status, ctype, body = json_response({"error": str(error)}, 500)
            await self._respond(
                writer, path, status, ctype, b"" if method == "HEAD" else body,
                content_length=len(body),
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        path: str,
        status: int,
        content_type: str,
        body: bytes,
        content_length: int | None = None,
    ) -> None:
        length = len(body) if content_length is None else content_length
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {length}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        if self._observe is not None:
            self._observe(path, status)
