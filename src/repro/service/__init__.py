"""repro.service — the always-on backscatter detection service.

The paper frames the sensor as an operational early-warning system
(§ I); this package is that deployment shape: a dependency-free asyncio
service that ingests a live query-log feed, closes observation windows
behind the streaming watermark, and serves verdicts, surge alerts,
health, and Prometheus metrics over a small HTTP/JSON API — with the
§ V retraining strategies running *online*, fitted off the hot path and
hot-swapped between windows.

The curated surface is four names:

* :class:`BackscatterService` — the service itself: feed transports
  (socket, tailed file, in-process ``submit_block``), the single-pump
  ingest loop, window/alert records, and the HTTP endpoints;
* :class:`ServiceConfig` — one frozen, eagerly-validated configuration
  object for every service knob;
* :class:`ModelManager` — the online retraining loop (fit off-thread,
  validate, atomically hand over between windows);
* :class:`FeedReader` — incremental text/``.rbsc`` chunk decoding.

Quickstart::

    from repro.service import BackscatterService, ServiceConfig

    config = ServiceConfig(port=8053, feed_port=8054, retrain="daily")
    service = BackscatterService(directory, config)
    service.fit(features, labeled)
    await service.start()
    await service.wait_shutdown()   # SIGTERM → request_shutdown()
    await service.stop()

or from the command line: ``repro serve -l log.npz -d directory.tsv -t
labels.tsv --retrain daily``.
"""

from repro.service.config import ServiceConfig
from repro.service.feed import FeedReader
from repro.service.manager import ModelManager
from repro.service.service import BackscatterService

__all__ = ["BackscatterService", "ServiceConfig", "ModelManager", "FeedReader"]
