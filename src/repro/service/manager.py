"""Online model lifecycle: fit off the hot path, hot-swap at boundaries.

§ V's offline conclusion — retrain-daily tracks drift, auto-grow
compounds label error — becomes an operational loop here.  After each
closed window the :class:`ModelManager` assembles a candidate training
set per its :class:`~repro.sensor.training.Strategy`, fits and
smoke-validates the classifier on a single-thread executor (the event
loop and ingest path never block on training), and the service then
calls :meth:`apply_pending` *between* windows: the swap is a plain
attribute install via ``engine.adopt_training`` while no window is in
flight, so every event is classified by exactly one complete model —
never a half-trained one — and none is dropped while models change.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml.validation import Classifier, LabelEncoder
from repro.sensor.curation import LabeledSet
from repro.sensor.engine import default_forest_factory
from repro.sensor.training import Strategy, enough_to_train, labeled_rows

__all__ = ["ModelManager", "TrainedModel"]

#: ``apply_pending`` outcomes, in telemetry label order.
SWAP_OUTCOMES = ("none", "swapped", "rejected", "failed", "skipped")


@dataclass(frozen=True, slots=True)
class TrainedModel:
    """A validated candidate ready to install: the classify-stage triple."""

    X: np.ndarray
    y: np.ndarray
    encoder: LabelEncoder
    version: int
    source_end: float
    """End timestamp of the window whose features trained this model."""


class ModelManager:
    """Builds, validates, and hands over classifier models between windows.

    Parameters
    ----------
    labeled:
        The curated labeled set.  Fixed ground truth for
        ``TRAIN_DAILY``; the seed (and only trusted) labels for
        ``AUTO_GROW``, whose subsequent labels are the engine's own
        verdicts (the paper's cautionary strategy — supported because
        § V evaluates it, not because it is wise).
    strategy:
        ``None`` or ``TRAIN_ONCE`` disables retraining entirely.
    """

    def __init__(
        self,
        labeled: LabeledSet,
        strategy: Strategy | None,
        factory: Callable[[int], Classifier] = default_forest_factory,
        min_per_class: int = 3,
        min_total: int = 12,
        seed: int = 0,
    ) -> None:
        self.labeled = labeled
        self.strategy = strategy
        self.factory = factory
        self.min_per_class = min_per_class
        self.min_total = min_total
        self.seed = seed
        self.version = 0
        self.fits_started = 0
        self.fits_skipped = 0
        self._pending: Future[TrainedModel | None] | None = None
        self._executor: ThreadPoolExecutor | None = None

    @property
    def active(self) -> bool:
        """Whether this strategy retrains at all."""
        return self.strategy in (Strategy.TRAIN_DAILY, Strategy.AUTO_GROW)

    # -- candidate production -------------------------------------------

    def observe_window(self, sensed: object) -> str:
        """Feed one closed window; maybe start a background fit.

        Returns ``"scheduled"``, ``"skipped"`` (a fit is still running —
        training slower than the window cadence), or ``"none"`` (inactive
        strategy or an unusable window).
        """
        if not self.active:
            return "none"
        features = getattr(sensed, "features", None)
        if features is None or len(features.originators) == 0:
            return "none"
        if self.strategy is Strategy.AUTO_GROW:
            verdicts = getattr(sensed, "verdicts", [])
            if not verdicts:
                return "none"
            labels = LabeledSet.from_pairs(
                (int(v.originator), v.app_class) for v in verdicts
            )
        else:
            labels = self.labeled
        if self._pending is not None and not self._pending.done():
            self.fits_skipped += 1
            return "skipped"
        end = float(getattr(getattr(sensed, "window", sensed), "end", 0.0))
        version = self.version + 1
        self.fits_started += 1
        self._pending = self._ensure_executor().submit(
            self._build, features, labels, version, end
        )
        return "scheduled"

    def _build(
        self, features: object, labels: LabeledSet, version: int, end: float
    ) -> TrainedModel | None:
        encoder = LabelEncoder()
        X, y, _ = labeled_rows(features, labels, encoder)
        if not enough_to_train(y, self.min_per_class, self.min_total):
            return None
        # Validation fit: the candidate must train and predict cleanly
        # before it is allowed anywhere near the serving engine.
        classifier = self.factory(self.seed + version)
        classifier.fit(X, y)
        classifier.predict(X[:1])
        return TrainedModel(X=X, y=y, encoder=encoder, version=version, source_end=end)

    # -- hand-over ------------------------------------------------------

    def apply_pending(self, engine: object) -> str:
        """Install a finished candidate, if any; called between windows.

        Returns one of :data:`SWAP_OUTCOMES` minus ``"skipped"``:
        ``"none"`` (nothing finished), ``"rejected"`` (candidate failed
        the § V-B training gate), ``"failed"`` (fit raised), or
        ``"swapped"`` (the engine now classifies with the new model).
        """
        if self._pending is None or not self._pending.done():
            return "none"
        future, self._pending = self._pending, None
        try:
            model = future.result()
        except Exception:
            return "failed"
        if model is None:
            return "rejected"
        engine.adopt_training(model.X, model.y, model.encoder)
        self.version = model.version
        return "swapped"

    def wait_pending(self, timeout: float | None = None) -> None:
        """Block until any in-flight fit finishes (tests, shutdown)."""
        if self._pending is not None:
            try:
                self._pending.result(timeout=timeout)
            except Exception:
                pass

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="model-fit"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ModelManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
