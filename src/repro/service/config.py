"""Frozen configuration for the long-running detection service.

One :class:`ServiceConfig` gathers every service knob — bind address,
feed source and format, shard fan-out, retraining strategy, alerting
thresholds, window callback — validated eagerly in ``__post_init__``
exactly like :class:`~repro.sensor.engine.SensorConfig`, so a service
never starts half-configured.  The sensor itself is configured through
the embedded ``sensor`` field; the service adds only what a live
deployment needs on top of the engine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.sensor.engine import SensorConfig
from repro.sensor.training import Strategy

__all__ = ["FEED_FORMATS", "ServiceConfig"]

#: Accepted ``feed_format`` values; ``auto`` sniffs the ``RBSC`` magic.
FEED_FORMATS = ("auto", "text", "rbsc")

_STRATEGY_NAMES = {
    "once": Strategy.TRAIN_ONCE,
    "daily": Strategy.TRAIN_DAILY,
    "grow": Strategy.AUTO_GROW,
}


def _coerce_strategy(value: "Strategy | str | None") -> Strategy | None:
    if value is None or isinstance(value, Strategy):
        return value
    if isinstance(value, str):
        if value in _STRATEGY_NAMES:
            return _STRATEGY_NAMES[value]
        try:
            return Strategy(value)
        except ValueError:
            pass
    accepted = sorted(_STRATEGY_NAMES) + [s.value for s in Strategy]
    raise ValueError(f"unknown retrain strategy {value!r} (accepted: {accepted})")


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.BackscatterService` needs.

    Validated eagerly: a bad port, feed format, or retrain strategy
    raises at construction, not at bind time.  Frozen so a running
    service cannot be reconfigured underneath its feed tasks; build a
    variant with :meth:`replaced`.
    """

    sensor: SensorConfig = field(default_factory=SensorConfig)
    """Engine configuration (windowing, dedup, selection, classifier)."""

    host: str = "127.0.0.1"
    """HTTP bind address."""

    port: int = 8053
    """HTTP port; ``0`` binds an ephemeral port (see ``http_address``)."""

    feed_port: int | None = None
    """Optional raw-feed socket port (``0`` = ephemeral, ``None`` = off)."""

    feed_path: str | Path | None = None
    """Optional log file to tail as a feed source."""

    feed_format: str = "auto"
    """Wire format of socket/tailed feeds: one of :data:`FEED_FORMATS`."""

    feed_chunk: int = 65536
    """Bytes per read from feed sockets and tailed files."""

    feed_poll_seconds: float = 0.05
    """Tail-polling interval for ``feed_path``."""

    shards: int = 1
    """Engine fan-out: 1 = single :class:`SensorEngine`, >1 = federated."""

    shard_processes: bool = True
    """Process-pool (vs thread) workers for the federated engine."""

    retrain: Strategy | str | None = None
    """Online retraining strategy between windows; ``None`` = train once
    up front and never swap.  Accepts a :class:`Strategy`, its value
    (``"train-daily"``), or the CLI short names ``once``/``daily``/``grow``."""

    retrain_min_per_class: int = 3
    """Candidate-model gate: examples required per class (§ V-B)."""

    retrain_min_total: int = 12
    """Candidate-model gate: total labeled examples required."""

    verdict_history: int = 64
    """Closed windows retained for ``GET /verdicts``."""

    alert_classes: tuple[str, ...] = ("scan",)
    """Application classes watched by the surge detectors."""

    alert_window: int = 6
    """Trailing windows forming each detector's robust baseline."""

    alert_threshold: float = 3.0
    """Robust z-score at which a window alerts."""

    alert_min_relative: float = 0.2
    """Relative-increase floor for alerting (see ``SurgeDetector``)."""

    on_window: Callable[[object], None] | None = None
    """Optional extra window-close callback (after the service's own)."""

    def __post_init__(self) -> None:
        if not isinstance(self.sensor, SensorConfig):
            raise ValueError("sensor must be a SensorConfig")
        for name, value in (("port", self.port), ("feed_port", self.feed_port)):
            if value is None:
                continue
            if not (0 <= value <= 65535):
                raise ValueError(f"{name} must be in [0, 65535], got {value}")
        if self.feed_format not in FEED_FORMATS:
            raise ValueError(
                f"feed_format must be one of {FEED_FORMATS}, got {self.feed_format!r}"
            )
        if self.feed_chunk < 1:
            raise ValueError("feed_chunk must be at least 1 byte")
        if self.feed_poll_seconds <= 0:
            raise ValueError("feed_poll_seconds must be positive")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        object.__setattr__(self, "retrain", _coerce_strategy(self.retrain))
        if self.retrain_min_per_class < 1:
            raise ValueError("retrain_min_per_class must be at least 1")
        if self.retrain_min_total < 1:
            raise ValueError("retrain_min_total must be at least 1")
        if self.verdict_history < 1:
            raise ValueError("verdict_history must be at least 1")
        if self.alert_window < 2:
            raise ValueError("alert_window must be at least 2")
        if self.alert_threshold <= 0:
            raise ValueError("alert_threshold must be positive")
        if self.alert_min_relative < 0:
            raise ValueError("alert_min_relative must be non-negative")
        object.__setattr__(self, "alert_classes", tuple(self.alert_classes))
        if self.on_window is not None and not callable(self.on_window):
            raise ValueError("on_window must be callable")

    def replaced(self, **overrides: object) -> "ServiceConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **overrides)
