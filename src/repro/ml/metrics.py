"""Classification metrics exactly as defined in § IV-C.

The paper computes accuracy ((tp+tn)/all), precision (tp/(tp+fp)), recall
(tp/(tp+fn)), and F1 (2tp/(2tp+fp+fn)) over a multiclass problem; we
compute these per class from the confusion matrix (one-vs-rest tp/tn/fp/fn)
and macro-average over classes that appear in the ground truth, which is
the convention that matches the reported 0.7–0.8 range for 12 classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "ClassMetrics",
    "ClassificationReport",
    "evaluate",
]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """``matrix[i, j]`` counts samples with true class i predicted as j."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("length mismatch")
    if len(y_true) and (y_true.max() >= n_classes or y_pred.max() >= n_classes):
        raise ValueError("label outside [0, n_classes)")
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


@dataclass(frozen=True, slots=True)
class ClassMetrics:
    """One-vs-rest counts and rates for a single class."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def f1(self) -> float:
        denominator = 2 * self.tp + self.fp + self.fn
        return 2 * self.tp / denominator if denominator else 0.0

    @property
    def support(self) -> int:
        return self.tp + self.fn


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """Macro-averaged metrics plus the per-class breakdown."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    per_class: tuple[ClassMetrics, ...]
    matrix: np.ndarray

    def as_row(self) -> dict[str, float]:
        """The four headline numbers, in Table III's column order."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def evaluate(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> ClassificationReport:
    """Score predictions against ground truth (macro over supported classes)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    total = matrix.sum()
    per_class: list[ClassMetrics] = []
    for c in range(n_classes):
        tp = int(matrix[c, c])
        fp = int(matrix[:, c].sum() - tp)
        fn = int(matrix[c, :].sum() - tp)
        tn = int(total - tp - fp - fn)
        per_class.append(ClassMetrics(tp=tp, fp=fp, fn=fn, tn=tn))
    supported = [m for m in per_class if m.support > 0]
    if not supported:
        raise ValueError("no samples to evaluate")
    accuracy = float(np.trace(matrix) / total) if total else 0.0
    return ClassificationReport(
        accuracy=accuracy,
        precision=float(np.mean([m.precision for m in supported])),
        recall=float(np.mean([m.recall for m in supported])),
        f1=float(np.mean([m.f1 for m in supported])),
        per_class=tuple(per_class),
        matrix=matrix,
    )
