"""Kernel support-vector machine, the paper's third classifier.

Binary soft-margin SVMs trained with a simplified SMO solver (Platt 1998),
combined one-vs-one with majority voting for the 12 application classes.
Features are standardized internally (zero mean, unit variance on the
training set) because the sensor mixes [0,1] fractions with unbounded
rates; the RBF kernel is the default, as in the paper's "kernel SVM".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

__all__ = ["SvmConfig", "BinarySvm", "SvmClassifier"]


@dataclass(frozen=True, slots=True)
class SvmConfig:
    """Soft-margin and kernel hyperparameters."""

    C: float = 1.0
    kernel: str = "rbf"
    gamma: float | str = "scale"
    """RBF width; ``"scale"`` means 1 / (n_features * Var(X))."""
    tol: float = 1e-3
    max_passes: int = 8
    max_iter: int = 3000


def _rbf(X: np.ndarray, Z: np.ndarray, gamma: float) -> np.ndarray:
    xx = (X * X).sum(axis=1)[:, None]
    zz = (Z * Z).sum(axis=1)[None, :]
    sq = xx + zz - 2.0 * X @ Z.T
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq)


def _linear(X: np.ndarray, Z: np.ndarray, _gamma: float) -> np.ndarray:
    return X @ Z.T


_KERNELS = {"rbf": _rbf, "linear": _linear}


class BinarySvm:
    """One soft-margin SVM over labels in {-1, +1}, trained by SMO."""

    def __init__(self, config: SvmConfig, seed: int = 0) -> None:
        if config.kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {config.kernel!r}")
        self.config = config
        self._seed = seed
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._b: float = 0.0
        self._gamma: float = 1.0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.config.gamma == "scale":
            variance = X.var()
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        return float(self.config.gamma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarySvm":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("binary SVM labels must be -1/+1")
        n = len(X)
        self._gamma = self._resolve_gamma(X)
        K = _KERNELS[self.config.kernel](X, X, self._gamma)
        C, tol = self.config.C, self.config.tol
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self._seed)
        passes = 0
        iterations = 0
        while passes < self.config.max_passes and iterations < self.config.max_iter:
            changed = 0
            for i in range(n):
                Ei = float((alpha * y) @ K[:, i]) + b - y[i]
                if (y[i] * Ei < -tol and alpha[i] < C) or (y[i] * Ei > tol and alpha[i] > 0):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    Ej = float((alpha * y) @ K[:, j]) + b - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(C, C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - C)
                        high = min(C, ai_old + aj_old)
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (Ei - Ej) / eta
                    aj = min(high, max(low, aj))
                    if abs(aj - aj_old) < 1e-6:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    b1 = b - Ei - y[i] * (ai - ai_old) * K[i, i] - y[j] * (aj - aj_old) * K[i, j]
                    b2 = b - Ej - y[i] * (ai - ai_old) * K[i, j] - y[j] * (aj - aj_old) * K[j, j]
                    if 0 < ai < C:
                        b = b1
                    elif 0 < aj < C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iterations += 1
        support = alpha > 1e-8
        self._X = X[support]
        self._y = y[support]
        self._alpha = alpha[support]
        self._b = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("SVM is not fitted")
        X = np.asarray(X, dtype=float)
        if len(self._X) == 0:
            return np.full(len(X), self._b)
        K = _KERNELS[self.config.kernel](X, self._X, self._gamma)
        return K @ (self._alpha * self._y) + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    @property
    def n_support(self) -> int:
        if self._alpha is None:
            raise RuntimeError("SVM is not fitted")
        return len(self._alpha)


class SvmClassifier:
    """One-vs-one multiclass kernel SVM with internal standardization.

    Matches the interface of the tree/forest classifiers: integer labels
    in, integer labels out, with ``predict_proba`` as normalized pairwise
    votes so majority voting across repeated runs works uniformly.
    """

    def __init__(self, config: SvmConfig | None = None, seed: int = 0) -> None:
        self.config = config or SvmConfig()
        self._seed = seed
        self.n_classes_: int = 0
        self._machines: dict[tuple[int, int], BinarySvm] = {}
        self._present: list[int] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SvmClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_classes_ = int(y.max()) + 1
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        Xs = self._standardize(X)
        self._machines = {}
        present = [c for c in range(self.n_classes_) if np.any(y == c)]
        self._present = present
        rng = np.random.default_rng(self._seed)
        for a, b in combinations(present, 2):
            mask = (y == a) | (y == b)
            labels = np.where(y[mask] == a, 1.0, -1.0)
            machine = BinarySvm(self.config, seed=int(rng.integers(2**63)))
            machine.fit(Xs[mask], labels)
            self._machines[(a, b)] = machine
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._present:
            raise RuntimeError("classifier is not fitted")
        if not self._machines:
            # Degenerate single-class training data: predict that class.
            X = np.asarray(X, dtype=float)
            proba = np.zeros((len(X), self.n_classes_))
            proba[:, self._present[0]] = 1.0
            return proba
        X = self._standardize(np.asarray(X, dtype=float))
        votes = np.zeros((len(X), self.n_classes_))
        for (a, b), machine in self._machines.items():
            side = machine.predict(X)
            votes[side > 0, a] += 1.0
            votes[side < 0, b] += 1.0
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)
