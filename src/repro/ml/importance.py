"""Permutation feature importance (model-agnostic).

Table IV ranks features by the random forest's internal Gini decrease.
Gini importances are known to favor high-cardinality features, so we
also provide the standard model-agnostic check: permute one feature's
column in held-out data and measure the accuracy drop.  Agreement
between the two rankings (verified in the Table IV bench) shows the
paper's feature story is not an artifact of the importance metric.
"""

from __future__ import annotations

import numpy as np

from repro.ml.validation import Classifier

__all__ = ["permutation_importance"]


def permutation_importance(
    model: Classifier,
    X: np.ndarray,
    y: np.ndarray,
    repeats: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Mean accuracy drop per feature when its column is shuffled.

    *model* must already be fitted; (X, y) should be held-out data.
    Returns one value per feature; larger means more important, and
    values can be slightly negative for useless features (noise).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 2 or len(X) != len(y):
        raise ValueError("X must be 2-D and aligned with y")
    if len(X) == 0:
        raise ValueError("cannot score importance on empty data")
    rng = np.random.default_rng(seed)
    baseline = float((model.predict(X) == y).mean())
    drops = np.zeros(X.shape[1])
    for feature in range(X.shape[1]):
        accumulated = 0.0
        for _ in range(repeats):
            shuffled = X.copy()
            shuffled[:, feature] = shuffled[
                rng.permutation(len(shuffled)), feature
            ]
            accumulated += baseline - float((model.predict(shuffled) == y).mean())
        drops[feature] = accumulated / repeats
    return drops
