"""Cross-validation protocol from § IV-C and label handling.

The paper's protocol: pick a random 60% of the labeled ground truth for
training, test on the remaining 40%, repeat 50 times, and report the mean
and standard deviation of each metric per algorithm.  Non-deterministic
algorithms (RF, SVM) are additionally run 10 times per originator with
majority-vote classification (§ III-D).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.ml.metrics import ClassificationReport, evaluate
from repro.telemetry import span

__all__ = [
    "Classifier",
    "LabelEncoder",
    "train_test_split",
    "HoldoutSummary",
    "repeated_holdout",
    "majority_vote_predict",
]


class Classifier(Protocol):
    """The minimal interface all three algorithms implement."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


class LabelEncoder:
    """Bidirectional mapping between class names and integer labels."""

    def __init__(self, classes: Sequence[str] | None = None) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        if classes:
            for name in classes:
                self.add(name)

    def add(self, name: str) -> int:
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)
        return self._index[name]

    def encode(self, names: Sequence[str]) -> np.ndarray:
        try:
            return np.array([self._index[n] for n in names], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unknown class {exc.args[0]!r}") from exc

    def decode(self, labels: Sequence[int]) -> list[str]:
        return [self._names[int(label)] for label in labels]

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index


def train_test_split(
    n: int,
    train_fraction: float,
    rng: np.random.Generator,
    stratify: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Index split; stratified per class when labels are given.

    Stratification keeps at least one training example per class whenever
    the class has any samples — without it, tiny classes like ``update``
    (6 labeled examples in JP-ditl) regularly vanish from training.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if stratify is None:
        order = rng.permutation(n)
        cut = max(1, int(round(n * train_fraction)))
        return np.sort(order[:cut]), np.sort(order[cut:])
    stratify = np.asarray(stratify)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for value in np.unique(stratify):
        members = np.nonzero(stratify == value)[0]
        members = members[rng.permutation(len(members))]
        cut = max(1, int(round(len(members) * train_fraction)))
        if cut == len(members) and len(members) > 1:
            cut -= 1
        train_parts.append(members[:cut])
        test_parts.append(members[cut:])
    return (
        np.sort(np.concatenate(train_parts)),
        np.sort(np.concatenate(test_parts)) if test_parts else np.array([], dtype=int),
    )


@dataclass(frozen=True, slots=True)
class HoldoutSummary:
    """Mean/std of each Table III metric over the repeated holdouts."""

    accuracy_mean: float
    accuracy_std: float
    precision_mean: float
    precision_std: float
    recall_mean: float
    recall_std: float
    f1_mean: float
    f1_std: float
    repeats: int

    @classmethod
    def from_reports(cls, reports: Sequence[ClassificationReport]) -> "HoldoutSummary":
        rows = np.array(
            [[r.accuracy, r.precision, r.recall, r.f1] for r in reports], dtype=float
        )
        mean = rows.mean(axis=0)
        std = rows.std(axis=0)
        return cls(
            accuracy_mean=float(mean[0]),
            accuracy_std=float(std[0]),
            precision_mean=float(mean[1]),
            precision_std=float(std[1]),
            recall_mean=float(mean[2]),
            recall_std=float(std[2]),
            f1_mean=float(mean[3]),
            f1_std=float(std[3]),
            repeats=len(reports),
        )


def repeated_holdout(
    factory: Callable[[int], Classifier],
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    repeats: int = 50,
    train_fraction: float = 0.6,
    seed: int = 0,
) -> HoldoutSummary:
    """The § IV-C protocol: 60/40 stratified splits, *repeats* times.

    ``factory`` builds a fresh classifier from a seed, so stochastic
    algorithms vary across repeats exactly as the paper's do.
    """
    rng = np.random.default_rng(seed)
    reports: list[ClassificationReport] = []
    for repeat in range(repeats):
        train, test = train_test_split(len(y), train_fraction, rng, stratify=y)
        if len(test) == 0:
            raise ValueError("holdout produced an empty test set")
        model = factory(int(rng.integers(2**63)))
        with span("classifier.fit"):
            model.fit(X[train], y[train])
        with span("classifier.predict"):
            predictions = model.predict(X[test])
        reports.append(evaluate(y[test], predictions, n_classes))
    return HoldoutSummary.from_reports(reports)


def majority_vote_predict(
    factory: Callable[[int], Classifier],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    runs: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """§ III-D: run a stochastic classifier *runs* times, majority label wins.

    Ties break toward the label that reached the winning count first,
    which keeps the procedure deterministic for a fixed seed.
    """
    rng = np.random.default_rng(seed)
    all_runs = []
    for _ in range(runs):
        model = factory(int(rng.integers(2**63)))
        with span("classifier.fit"):
            model.fit(X_train, y_train)
        with span("classifier.predict"):
            all_runs.append(model.predict(X_test))
    stacked = np.stack(all_runs, axis=0)
    out = np.empty(stacked.shape[1], dtype=int)
    for column in range(stacked.shape[1]):
        votes = Counter(stacked[:, column].tolist())
        out[column] = max(votes, key=lambda label: (votes[label], -label))
    return out
