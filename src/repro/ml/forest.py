"""Random forest (Breiman 2001), the paper's best-performing classifier.

Bootstrap-resampled CART trees with per-node random feature subsampling
and majority voting.  ``feature_importances_`` averages the trees' Gini
decreases — exactly the statistic behind Table IV ("top discriminative
features ... as determined by Gini coefficient").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.cart import CartConfig, DecisionTreeClassifier

__all__ = ["ForestConfig", "RandomForestClassifier"]


@dataclass(frozen=True, slots=True)
class ForestConfig:
    """Ensemble size and per-tree growth rules."""

    n_trees: int = 60
    max_depth: int = 14
    min_samples_split: int = 4
    min_samples_leaf: int = 1
    max_features: int | str = "sqrt"
    """Features per node: an int, or ``"sqrt"`` for ceil(sqrt(n_features))."""
    bootstrap: bool = True


class RandomForestClassifier:
    """Voting ensemble of randomized CART trees."""

    def __init__(
        self,
        config: ForestConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or ForestConfig()
        self._seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        raw = self.config.max_features
        if raw == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        if isinstance(raw, int) and raw > 0:
            return min(raw, n_features)
        raise ValueError(f"bad max_features: {raw!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self._seed)
        tree_config = CartConfig(
            max_depth=self.config.max_depth,
            min_samples_split=self.config.min_samples_split,
            min_samples_leaf=self.config.min_samples_leaf,
            max_features=self._resolve_max_features(self.n_features_),
        )
        self.trees_ = []
        importances = np.zeros(self.n_features_)
        n = len(X)
        for _ in range(self.config.n_trees):
            if self.config.bootstrap:
                sample = rng.integers(0, n, size=n)
                Xb, yb = X[sample], y[sample]
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                tree_config, rng=np.random.default_rng(rng.integers(2**63))
            )
            # A bootstrap sample can miss the largest label; pin the class
            # count so every tree's probability vectors align.
            tree.fit_with_classes(Xb, yb, self.n_classes_)
            self.trees_.append(tree)
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            votes[np.arange(len(X)), tree.predict(X)] += 1.0
        return votes / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)
