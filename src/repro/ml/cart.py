"""CART decision tree (Breiman et al. 1984), one of the paper's classifiers.

Implemented from scratch on numpy: binary splits on feature thresholds
chosen to maximize Gini impurity decrease, depth/size stopping rules, and
per-feature accumulated impurity decrease (the "Gini coefficient" the paper
uses to rank discriminative features in Table IV).

The tree also supports per-node random feature subsampling so it can serve
as the base learner of the random forest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CartConfig", "DecisionTreeClassifier"]


@dataclass(frozen=True, slots=True)
class CartConfig:
    """Stopping rules and split behaviour for one tree."""

    max_depth: int = 12
    min_samples_split: int = 4
    min_samples_leaf: int = 2
    max_features: int | None = None
    """Features considered per node; ``None`` means all (plain CART)."""


@dataclass(slots=True)
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    # Class-probability vector at this node; used directly at leaves.
    proba: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.dot(p, p))


class DecisionTreeClassifier:
    """A CART classifier over dense float feature matrices.

    ``fit(X, y)`` expects ``y`` as integer labels in [0, n_classes); use
    :class:`repro.ml.validation.LabelEncoder` to map class names.  After
    fitting, ``feature_importances_`` holds the total Gini decrease per
    feature, normalized to sum to 1 (0 when no split was made).
    """

    def __init__(
        self,
        config: CartConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or CartConfig()
        self._rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self._raw_importance: np.ndarray | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y, dtype=int)
        if len(y) == 0:
            raise ValueError("cannot fit on empty data")
        return self.fit_with_classes(X, y, int(y.max()) + 1)

    def fit_with_classes(
        self, X: np.ndarray, y: np.ndarray, n_classes: int
    ) -> "DecisionTreeClassifier":
        """Fit with an explicit class count.

        Needed by the random forest: a bootstrap sample may omit the
        highest label, but every tree's probability vectors must span the
        ensemble's full class set.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        if n_classes <= int(y.max()):
            raise ValueError("n_classes smaller than max label")
        self.n_classes_ = n_classes
        self.n_features_ = X.shape[1]
        self._raw_importance = np.zeros(self.n_features_)
        self._root = self._build(X, y, depth=0)
        total = self._raw_importance.sum()
        self.feature_importances_ = (
            self._raw_importance / total if total > 0 else self._raw_importance.copy()
        )
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        node = _Node(proba=counts / counts.sum())
        if (
            depth >= self.config.max_depth
            or len(y) < self.config.min_samples_split
            or counts.max() == counts.sum()  # pure node
        ):
            return node
        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        self._raw_importance[feature] += gain * len(y)
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        if (
            self.config.max_features is None
            or self.config.max_features >= self.n_features_
        ):
            return np.arange(self.n_features_)
        return self._rng.choice(
            self.n_features_, size=self.config.max_features, replace=False
        )

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float, float] | None:
        """The (feature, threshold, gini_gain) with maximal gain, or None."""
        parent_gini = _gini(counts)
        n = len(y)
        min_leaf = self.config.min_samples_leaf
        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0
        for feature in self._candidate_features():
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            if values[0] == values[-1]:
                continue
            # Prefix class counts after each potential split position i
            # (left side = first i+1 samples in sorted order).
            prefix = np.cumsum(onehot[order], axis=0)
            left_n = np.arange(1, n + 1)
            # Valid split positions: value changes and both sides big enough.
            boundary = values[:-1] < values[1:]
            position = np.nonzero(boundary)[0]
            if len(position) == 0:
                continue
            position = position[
                (left_n[position] >= min_leaf) & (n - left_n[position] >= min_leaf)
            ]
            if len(position) == 0:
                continue
            left_counts = prefix[position]
            right_counts = counts[None, :] - left_counts
            ln = left_n[position][:, None]
            rn = n - left_n[position][:, None]
            left_gini = 1.0 - ((left_counts / ln) ** 2).sum(axis=1)
            right_gini = 1.0 - ((right_counts / rn) ** 2).sum(axis=1)
            weighted = (ln[:, 0] * left_gini + rn[:, 0] * right_gini) / n
            gains = parent_gini - weighted
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                best_gain = float(gains[arg])
                index = position[arg]
                # Split on the left value itself (predicate: x <= threshold).
                # A midpoint can round up to the right value for adjacent
                # floats, which would send every sample left and create an
                # empty child.
                threshold = float(values[index])
                best = (int(feature), threshold, best_gain)
        return best

    # ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("feature count mismatch")
        out = np.empty((len(X), self.n_classes_))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a stump/leaf-only tree)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return walk(self._root)

    @property
    def node_count(self) -> int:
        def count(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return count(self._root)
