"""From-scratch machine learning: CART, random forest, kernel SVM, metrics.

These are the three algorithms the paper compares in Table III, plus the
evaluation protocol of § IV-C.  No external ML dependency is used.
"""

from repro.ml.cart import CartConfig, DecisionTreeClassifier
from repro.ml.forest import ForestConfig, RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.metrics import (
    ClassificationReport,
    ClassMetrics,
    confusion_matrix,
    evaluate,
)
from repro.ml.svm import BinarySvm, SvmClassifier, SvmConfig
from repro.ml.validation import (
    HoldoutSummary,
    LabelEncoder,
    majority_vote_predict,
    repeated_holdout,
    train_test_split,
)

__all__ = [
    "CartConfig",
    "DecisionTreeClassifier",
    "ForestConfig",
    "RandomForestClassifier",
    "permutation_importance",
    "ClassificationReport",
    "ClassMetrics",
    "confusion_matrix",
    "evaluate",
    "BinarySvm",
    "SvmClassifier",
    "SvmConfig",
    "HoldoutSummary",
    "LabelEncoder",
    "majority_vote_predict",
    "repeated_holdout",
    "train_test_split",
]
