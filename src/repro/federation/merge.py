"""The merge stage: fuse shard partials into single-engine-identical output.

Two merges happen per window:

* **Context** — the dynamic-feature normalizers are window-*global*
  (total ASes / countries / unique queriers over the whole window), so
  they cannot be computed shard-locally.  :func:`merged_context` unions
  the shards' querier rosters, known-AS sets, and country-name sets;
  because enrichment is deterministic per address and originator
  partitioning never splits an address's enrichment, the union equals
  what a single engine computes over the unpartitioned window.
* **Rows** — each shard's feature matrix covers only its originators.
  :func:`merge_rows` interleaves them by the driver-recorded
  first-appearance rank, reproducing the single engine's row order
  (observation-dict insertion order; see
  :mod:`repro.federation.partition`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.federation.shard import ShardRows, WindowSummary
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FEATURE_NAMES, FeatureSet

__all__ = ["merged_context", "merge_rows", "empty_feature_set"]


def merged_context(
    start: float, end: float, summaries: Sequence[WindowSummary]
) -> WindowContext:
    """The merged window's normalizers, from per-shard partials."""
    addr_parts = [s.addrs for s in summaries if s.addrs.size]
    asn_parts = [s.asns for s in summaries if s.asns.size]
    total_queriers = (
        int(np.unique(np.concatenate(addr_parts)).size) if addr_parts else 0
    )
    total_ases = int(np.unique(np.concatenate(asn_parts)).size) if asn_parts else 0
    countries: set[str] = set()
    for summary in summaries:
        countries.update(summary.countries)
    return WindowContext(
        start=start,
        end=end,
        total_ases=max(1, total_ases),
        total_countries=max(1, len(countries)),
        total_queriers=max(1, total_queriers),
    )


def empty_feature_set(context: WindowContext) -> FeatureSet:
    """A zero-row feature set (gap windows, fully-gated windows)."""
    return FeatureSet(
        originators=np.empty(0, dtype=np.int64),
        matrix=np.zeros((0, len(FEATURE_NAMES))),
        context=context,
        footprints=np.empty(0, dtype=np.int64),
    )


def merge_rows(
    context: WindowContext,
    ranks: dict[int, int],
    shard_rows: Iterable[ShardRows],
) -> FeatureSet:
    """Concatenate shard feature rows in canonical (first-appearance) order.

    *ranks* maps originator → first-appearance rank over the released
    stream; rows missing from it (possible only for streaming-sketch
    promotions the driver never saw appear, i.e. never in practice) sort
    after ranked rows by originator address, deterministically.
    """
    parts = [rows for rows in shard_rows if rows.rows]
    if not parts:
        return empty_feature_set(context)
    originators = np.concatenate([rows.originators for rows in parts])
    matrix = np.concatenate([rows.matrix for rows in parts])
    footprints = np.concatenate([rows.footprints for rows in parts])
    keys = [
        (0, ranks[o]) if o in ranks else (1, o)
        for o in (int(v) for v in originators)
    ]
    order = np.array(sorted(range(len(keys)), key=keys.__getitem__), dtype=np.intp)
    return FeatureSet(
        originators=originators[order],
        matrix=matrix[order],
        context=context,
        footprints=footprints[order],
    )
