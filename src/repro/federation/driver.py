"""The federation driver: N shard engines behaving as one sensor.

:class:`FederatedSensor` hash-partitions incoming events by originator
across N :class:`~repro.federation.shard.ShardWorker`\\ s (each a full
window/dedup/sketch/featurize pipeline on its own process), then merges
the partial windows back into feature rows, verdicts, and stage stats
that are **bit-identical** to a single
:class:`~repro.sensor.engine.SensorEngine` over the unpartitioned input
(property-tested; the one documented exception is streaming sketch mode,
where the single engine's row *order* follows promotion order while the
federation's canonical order is first appearance — row contents and
per-originator verdicts still match).

Both engine paths are supported and mirror the single-engine surface:

* **batch** — :meth:`process` slices ``[start, end)`` into config-width
  windows exactly like ``SensorEngine.process``;
* **streaming** — :meth:`ingest_block` / :meth:`poll` / :meth:`finish`,
  with the driver-owned :class:`~repro.federation.partition.ReorderFront`
  resolving lateness/reordering once and shard collectors running in
  lockstep behind the global watermark (via
  ``StreamingCollector.advance_watermark``).

Each merged window follows a two-phase protocol: shards return their
context partials (querier roster, AS set, country names) when a window
closes, the driver fuses them into the merged
:class:`~repro.sensor.dynamic.WindowContext` and broadcasts it back, and
shards featurize under that shared context — so the dynamic-feature
normalizers are window-global exactly as in a single engine.

Classification runs once, at the driver, over the merged rows — the
classify stage is not partition-friendly (majority voting is seeded over
the whole row set), and running it centrally keeps it exactly the single
engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.dnssim.message import QueryLogEntry
from repro.federation.merge import merge_rows, merged_context
from repro.federation.partition import ReorderFront, note_first_appearance, shard_of
from repro.federation.shard import ShardPool, ShardRows, ShardWorker, WindowSummary
from repro.logstore import EntryBlock
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierDirectory
from repro.sensor.engine import (
    STAGE_NAMES,
    ClassifiedOriginator,
    SensorConfig,
    SensorEngine,
    StageStats,
)
from repro.sensor.features import FeatureSet
from repro.telemetry import (
    MetricsRegistry,
    count,
    get_registry,
    observe,
    span,
    use_registry,
)

__all__ = ["FederatedWindow", "FederatedSensor"]


@dataclass(slots=True)
class FederatedWindow:
    """One merged observation interval after every federated stage."""

    index: int
    start: float
    end: float
    originators: int
    """Distinct originators materialized across all shards."""
    features: FeatureSet
    verdicts: list[ClassifiedOriginator] = field(default_factory=list)
    shard_rows: dict[int, int] = field(default_factory=dict)
    """Feature rows contributed per shard id."""

    @property
    def classification(self) -> dict[int, str]:
        return {v.originator: v.app_class for v in self.verdicts}


class FederatedSensor:
    """N-shard federated deployment of the staged sensing pipeline.

    Parameters
    ----------
    directory:
        Querier metadata provider, shared by every shard (inherited
        through fork in process mode) and by the driver's classify
        stage.
    config:
        The deployment's :class:`~repro.sensor.engine.SensorConfig`.
        Shards run it with ``featurize_workers=1`` and
        ``reorder_slack=0`` (the driver owns both fan-out and reorder).
    n_shards:
        Shard worker count (1 is allowed and useful for testing).
    registry:
        Optional metrics registry; the driver emits the per-shard
        ``repro_federation_*`` instruments and the standard stage
        counters into it.
    processes:
        With True (default) each shard runs on its own fork-context
        process; False — or a platform without fork — runs shards
        inline, bit-identically.
    partition_seed:
        Seed for the originator → shard hash.
    """

    def __init__(
        self,
        directory: QuerierDirectory,
        config: SensorConfig | None = None,
        n_shards: int = 2,
        registry: MetricsRegistry | None = None,
        processes: bool = True,
        partition_seed: int = 0,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if directory is None:
            raise ValueError("federation needs a querier directory")
        self.config = config or SensorConfig()
        self.directory = directory
        self.n_shards = n_shards
        self.registry = registry
        self.partition_seed = partition_seed
        self.stats: dict[str, StageStats] = {
            name: StageStats(name) for name in STAGE_NAMES
        }
        # The merge engine holds the trained classify stage and runs it
        # over merged rows; its classify StageStats are the federation's.
        self._merge_engine = SensorEngine(directory, self.config, registry=registry)
        workers = [ShardWorker(k, directory, self.config) for k in range(n_shards)]
        self._pool = ShardPool(workers, processes=processes)
        self._front = ReorderFront(
            origin=self.config.origin, reorder_slack=self.config.reorder_slack
        )
        self._ranks: dict[int, dict[int, int]] = {}
        self._closed: dict[int, list[tuple[int, WindowSummary]]] = {}
        self._shard_dedup = [0] * n_shards
        self._stream_windows = 0
        self._absorbed = {"ingested": 0, "late": 0, "windows": 0, "dedup": 0}
        self._window_callbacks: list[Callable[[FederatedWindow], None]] = []

    # -- window-close hooks ---------------------------------------------

    def on_window(
        self, callback: Callable[[FederatedWindow], None]
    ) -> Callable[[], None]:
        """Register a hook invoked with each merged streaming window.

        Mirrors :meth:`repro.sensor.engine.SensorEngine.on_window`: the
        callback fires once per :class:`FederatedWindow`, in emission
        order, from inside :meth:`poll` / :meth:`finish` after the
        two-phase merge and (when fitted) classification.  Returns an
        unsubscribe callable.
        """
        self._window_callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                self._window_callbacks.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the shard processes down (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "FederatedSensor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- telemetry ------------------------------------------------------

    def _scope(self):
        return use_registry(self.registry)

    def _record_stage(
        self,
        name: str,
        items_in: int = 0,
        items_out: int = 0,
        dropped: int = 0,
        seconds: float = 0.0,
    ) -> None:
        stage = self.stats[name]
        stage.items_in += items_in
        stage.items_out += items_out
        stage.dropped += dropped
        stage.seconds += seconds
        if get_registry() is None:
            return
        help_items = "Items through each sensing stage, by direction."
        count("repro_stage_items_total", items_in,
              help=help_items, stage=name, direction="in")
        count("repro_stage_items_total", items_out,
              help=help_items, stage=name, direction="out")
        count("repro_stage_items_total", dropped,
              help=help_items, stage=name, direction="dropped")
        if seconds > 0.0:
            observe("repro_stage_seconds", seconds,
                    help="Wall time per unit of stage work.", stage=name)

    def _observe_shard(
        self, shard: int, op: str, seconds: float, events: int = 0
    ) -> None:
        if get_registry() is None:
            return
        if seconds > 0.0:
            observe("repro_federation_shard_seconds", seconds,
                    help="Worker-side wall time per shard task.",
                    shard=str(shard), op=op)
        if events:
            count("repro_federation_events_total", events,
                  help="Events partitioned to each shard.", shard=str(shard))

    # -- batch ----------------------------------------------------------

    def process(
        self,
        entries: Sequence[QueryLogEntry] | Iterable[QueryLogEntry] | EntryBlock,
        start: float,
        end: float,
        classify: bool | None = None,
    ) -> list[FederatedWindow]:
        """Run a whole time-ordered log through every stage, sharded.

        The federated counterpart of ``SensorEngine.process``: slices
        ``[start, end)`` into config-width windows (gap-filling quiet
        intervals), fans the in-range events out by originator, and
        merges each window back.  Merged rows, verdicts, and stage
        counts are bit-identical to the single engine's.
        """
        if end <= start:
            raise ValueError("end must be after start")
        width = self.config.window_seconds
        block = (
            entries
            if isinstance(entries, EntryBlock)
            else EntryBlock.from_entries(entries)
        )
        with self._scope(), span("engine.run"):
            with span("stage.ingest") as ingest_span:
                ingested = len(block)
                sub = block.slice_time(start, end)
                if not sub.is_sorted:
                    raise ValueError("entries are not time-ordered")
                accepted = len(sub)
                if get_registry() is not None:
                    count("repro_federation_blocks_total", 1,
                          help="Blocks fed to the federation driver.",
                          path="batch")
            self._record_stage(
                "ingest",
                items_in=ingested,
                items_out=accepted,
                dropped=ingested - accepted,
                seconds=ingest_span.elapsed,
            )
            bounds: list[tuple[float, float]] = []
            window_start = start
            while window_start < end:
                bounds.append((window_start, min(window_start + width, end)))
                window_start = window_start + width
            ranks_by_index: dict[int, dict[int, int]] = {}
            note_first_appearance(
                sub.timestamps, sub.originators, start, width, ranks_by_index
            )
            with span("stage.window") as window_span:
                assignments = shard_of(
                    sub.originators, self.n_shards, self.partition_seed
                )
                futures = []
                for shard in range(self.n_shards):
                    mask = assignments == shard
                    args = (
                        sub.timestamps[mask],
                        sub.queriers[mask],
                        sub.originators[mask],
                        start,
                        end,
                        width,
                    )
                    self._observe_shard(
                        shard, "feed", 0.0, events=int(np.count_nonzero(mask))
                    )
                    futures.append(self._pool.submit(shard, "run_batch", args))
                grouped: dict[int, list[tuple[int, WindowSummary]]] = {}
                dedup_dropped = 0
                for shard, future in enumerate(futures):
                    summaries, dropped_delta, elapsed = future.result()
                    dedup_dropped += dropped_delta
                    self._observe_shard(shard, "window", elapsed)
                    for summary in summaries:
                        grouped.setdefault(summary.index, []).append(
                            (shard, summary)
                        )
            self._record_stage(
                "window",
                items_in=accepted,
                items_out=len(bounds),
                dropped=dedup_dropped,
                seconds=window_span.elapsed,
            )
            return [
                self._merge_and_sense(
                    index,
                    grouped.get(index, []),
                    ranks_by_index.get(index, {}),
                    classify,
                    fallback_span=span_bounds,
                )
                for index, span_bounds in enumerate(bounds)
            ]

    # -- streaming ------------------------------------------------------

    def ingest_block(self, block: EntryBlock) -> None:
        """Feed one columnar block of live entries (streaming path)."""
        with self._scope():
            if get_registry() is not None:
                count("repro_federation_blocks_total", 1,
                      help="Blocks fed to the federation driver.",
                      path="stream")
            self.ingest_arrays(block.timestamps, block.queriers, block.originators)

    def ingest_arrays(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> None:
        """Feed parallel event columns (streaming path)."""
        with self._scope():
            with span("stage.ingest") as ingest_span:
                released = self._front.push(timestamps, queriers, originators)
                watermark = self._front.watermark
                self._dispatch(
                    released, watermark if watermark > float("-inf") else None
                )
            self.stats["ingest"].seconds += ingest_span.elapsed

    def poll(self, classify: bool | None = None) -> list[FederatedWindow]:
        """Merged windows the global watermark has closed since last poll."""
        with self._scope():
            return self._sense_closed(classify)

    def finish(self, classify: bool | None = None) -> list[FederatedWindow]:
        """End of stream: flush the front and every shard, then merge."""
        with self._scope():
            with span("stage.ingest") as ingest_span:
                released = self._front.flush()
                self._dispatch(released, None)
            self.stats["ingest"].seconds += ingest_span.elapsed
            with span("stage.window") as window_span:
                futures = [
                    (shard, self._pool.submit(shard, "finish", ()))
                    for shard in range(self.n_shards)
                ]
                for shard, future in futures:
                    summaries, dedup_total, elapsed = future.result()
                    self._shard_dedup[shard] = dedup_total
                    self._observe_shard(shard, "finish", elapsed)
                    self._buffer(shard, summaries)
            self.stats["window"].seconds += window_span.elapsed
            return self._sense_closed(classify)

    def _dispatch(
        self,
        released: tuple[np.ndarray, np.ndarray, np.ndarray],
        watermark: float | None,
    ) -> None:
        """Partition released events to shards; advance shard watermarks."""
        ts, qs, os_ = released
        if ts.size:
            note_first_appearance(
                ts, os_, self.config.origin, self.config.window_seconds, self._ranks
            )
        assignments = (
            shard_of(os_, self.n_shards, self.partition_seed) if ts.size else None
        )
        futures = []
        for shard in range(self.n_shards):
            if assignments is not None:
                mask = assignments == shard
                args = (ts[mask], qs[mask], os_[mask], watermark)
                events = int(np.count_nonzero(mask))
            else:
                args = (None, None, None, watermark)
                events = 0
            futures.append(
                (shard, events, self._pool.submit(shard, "feed_and_advance", args))
            )
        for shard, events, future in futures:
            summaries, dedup_total, elapsed = future.result()
            self._shard_dedup[shard] = dedup_total
            self._observe_shard(shard, "feed", elapsed, events=events)
            self._buffer(shard, summaries)

    def _buffer(self, shard: int, summaries: list[WindowSummary]) -> None:
        for summary in summaries:
            self._closed.setdefault(summary.index, []).append((shard, summary))

    def _sense_closed(self, classify: bool | None) -> list[FederatedWindow]:
        out = []
        for index in sorted(self._closed):
            pairs = self._closed.pop(index)
            out.append(
                self._merge_and_sense(
                    index, pairs, self._ranks.pop(index, {}), classify
                )
            )
        self._stream_windows += len(out)
        for merged in out:
            for callback in list(self._window_callbacks):
                callback(merged)
        return out

    # -- the merge stage ------------------------------------------------

    def _merge_and_sense(
        self,
        index: int,
        pairs: list[tuple[int, WindowSummary]],
        ranks: dict[int, int],
        classify: bool | None,
        fallback_span: tuple[float, float] | None = None,
    ) -> FederatedWindow:
        """Phase B+C for one window: merge context, featurize, merge rows."""
        summaries = [summary for _, summary in pairs]
        if summaries:
            start, end = summaries[0].start, summaries[0].end
        else:
            assert fallback_span is not None
            start, end = fallback_span
        with span("stage.window") as merge_span:
            context = merged_context(start, end, summaries)
        self.stats["window"].seconds += merge_span.elapsed
        context_fields = (
            context.start,
            context.end,
            context.total_ases,
            context.total_countries,
            context.total_queriers,
        )
        futures = [
            self._pool.submit(shard, "featurize_window", (index, context_fields))
            for shard, _ in pairs
        ]
        shard_rows: list[ShardRows] = []
        for future in futures:
            rows = future.result()
            shard_rows.append(rows)
            self._record_stage(
                "select",
                items_in=rows.select_in,
                items_out=rows.select_out,
                dropped=rows.select_in - rows.select_out,
            )
            self._record_stage(
                "featurize",
                items_in=rows.select_out,
                items_out=rows.rows,
                dropped=rows.select_out - rows.rows,
                seconds=rows.seconds,
            )
            if get_registry() is not None:
                count("repro_federation_rows_total", rows.rows,
                      help="Merged feature rows contributed per shard.",
                      shard=str(rows.shard))
                self._observe_shard(rows.shard, "featurize", rows.seconds)
        features = merge_rows(context, ranks, shard_rows)
        run_classify = self.is_fitted if classify is None else classify
        verdicts: list[ClassifiedOriginator] = []
        if run_classify:
            verdicts = self._merge_engine.classify(features)
        if get_registry() is not None:
            count("repro_federation_windows_total", 1,
                  help="Observation windows merged across shards.")
        return FederatedWindow(
            index=index,
            start=start,
            end=end,
            originators=sum(s.originators for s in summaries),
            features=features,
            verdicts=verdicts,
            shard_rows={rows.shard: rows.rows for rows in shard_rows},
        )

    # -- classify + training -------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._merge_engine.is_fitted

    def fit(self, features: FeatureSet, labeled: LabeledSet) -> "FederatedSensor":
        """Train the driver's classify stage (shared by every window)."""
        self._merge_engine.fit(features, labeled)
        return self

    def fit_from(self, other: SensorEngine) -> "FederatedSensor":
        """Adopt a span-trained single engine's classify stage."""
        self._merge_engine.fit_from(other)
        return self

    def adopt_training(self, X, y, encoder) -> "FederatedSensor":
        """Hot-swap the driver's classify-stage model (see the engine's
        :meth:`~repro.sensor.engine.SensorEngine.adopt_training`)."""
        self._merge_engine.adopt_training(X, y, encoder)
        return self

    def classify(self, features: FeatureSet) -> list[ClassifiedOriginator]:
        return self._merge_engine.classify(features)

    def classify_map(self, features: FeatureSet) -> dict[int, str]:
        return self._merge_engine.classify_map(features)

    # -- accounting -----------------------------------------------------

    def _absorb_front(self) -> None:
        """Fold streaming front/shard counters into ingest/window stats."""
        current = {
            "ingested": self._front.ingested,
            "late": self._front.late_dropped,
            "windows": self._stream_windows,
            "dedup": sum(self._shard_dedup),
        }
        delta = {key: current[key] - self._absorbed[key] for key in current}
        self._absorbed = current
        accepted = delta["ingested"] - delta["late"]
        self._record_stage(
            "ingest",
            items_in=delta["ingested"],
            items_out=accepted,
            dropped=delta["late"],
        )
        self._record_stage(
            "window",
            items_in=accepted,
            items_out=delta["windows"],
            dropped=delta["dedup"],
        )

    def accounting(self) -> list[StageStats]:
        """Per-stage stats for everything this federation has processed.

        Composition mirrors the single engine's: ingest/window from the
        driver's front plus the shard collectors' counters,
        select/featurize summed over shards (originator partitioning
        makes the sums equal the single engine's counts), classify from
        the merge engine.
        """
        with self._scope():
            self._absorb_front()
        stats = [self.stats[name] for name in STAGE_NAMES]
        stats[STAGE_NAMES.index("classify")] = self._merge_engine.stats["classify"]
        return stats

    def format_accounting(self) -> str:
        """The per-run accounting report, as an aligned text table."""
        rows = self.accounting()
        headers = ("stage", "in", "out", "dropped", "seconds")
        table = [headers] + [
            (s.name, f"{s.items_in:,}", f"{s.items_out:,}", f"{s.dropped:,}",
             f"{s.seconds:.3f}")
            for s in rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
        lines = []
        for index, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
