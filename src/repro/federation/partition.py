"""Originator partitioning and the driver-owned reorder front.

The federation's correctness argument starts here:

* **Partitioning is by originator** (seeded ``mix64``), so every event
  of one ``(querier, originator)`` pair — and therefore every dedup
  decision, HLL register, and observation — lands on exactly one shard.
  A shard's windows are the single engine's windows restricted to its
  originators.
* **Reordering is resolved once, at the driver.**  :class:`ReorderFront`
  replicates :meth:`repro.sensor.streaming.StreamingCollector.ingest_arrays`'s
  accept/release semantics exactly (same late mask, same running-max
  high water, same ``(timestamp, arrival seq)`` release order), so the
  stream each shard receives is globally time-ordered and shard
  collectors can run with ``reorder_slack=0``.  Lateness and reorder
  accounting therefore happen exactly once, with the same counts a
  single collector would produce.
* **Row order is tracked at the driver.**  The single engine's feature
  rows follow first-kept-appearance order of its observation dict; the
  first event of an originator in a window is always kept (a fresh pair
  in a fresh window-scoped dedup), so first-*appearance* order over the
  released stream reproduces it.  :func:`note_first_appearance` records
  that rank so the merge stage can interleave shard rows canonically.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sketch.hashing import mix64_array

__all__ = ["shard_of", "partition_arrays", "note_first_appearance", "ReorderFront"]


def shard_of(originators: np.ndarray, n_shards: int, seed: int = 0) -> np.ndarray:
    """Shard index per originator: seeded ``mix64(originator) % n_shards``.

    Deterministic in ``(originator, n_shards, seed)`` — re-running a
    federation with the same shard count reproduces the same placement.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    values = np.ascontiguousarray(originators, dtype=np.int64)
    return (mix64_array(values, seed) % np.uint64(n_shards)).astype(np.int64)


def partition_arrays(
    timestamps: np.ndarray,
    queriers: np.ndarray,
    originators: np.ndarray,
    n_shards: int,
    seed: int = 0,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Split parallel event columns into per-shard columns, order-preserving."""
    assignments = shard_of(originators, n_shards, seed)
    out = []
    for shard in range(n_shards):
        mask = assignments == shard
        out.append((timestamps[mask], queriers[mask], originators[mask]))
    return out


def note_first_appearance(
    timestamps: np.ndarray,
    originators: np.ndarray,
    origin: float,
    width: float,
    by_index: dict[int, dict[int, int]],
) -> None:
    """Record each originator's first-appearance rank per window.

    *timestamps* must be the released (time-ordered) stream; ranks are
    assigned in encounter order and preserved across calls, matching the
    insertion order of a single collector's observation dict.
    """
    if timestamps.size == 0:
        return
    indices = np.floor_divide(timestamps - origin, width).astype(np.int64)
    uniq, bounds = np.unique(indices, return_index=True)
    bounds = np.append(bounds, timestamps.size)
    for k in range(int(uniq.size)):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        ranks = by_index.setdefault(int(uniq[k]), {})
        segment = originators[lo:hi]
        seen, first = np.unique(segment, return_index=True)
        for originator in seen[np.argsort(first)].tolist():
            if originator not in ranks:
                ranks[originator] = len(ranks)


class ReorderFront:
    """Global accept/release front over incoming event arrays.

    Mirrors the streaming collector's ingest semantics: entries below
    ``origin`` or more than ``reorder_slack`` behind the newest-seen
    timestamp are dropped (counted), in-slack disorder is buffered in a
    ``(timestamp, arrival seq)`` heap, and :meth:`push` returns the
    entries the watermark has passed, in the exact order a single
    collector would process them.
    """

    def __init__(self, origin: float = 0.0, reorder_slack: float = 2.0) -> None:
        if reorder_slack < 0:
            raise ValueError("reorder_slack must be non-negative")
        self.origin = origin
        self.reorder_slack = reorder_slack
        self.ingested = 0
        self.late_dropped = 0
        self.reordered = 0
        self._high_water = float("-inf")
        self._pending: list[tuple[float, int, int, int]] = []
        self._seq = 0

    @property
    def high_water(self) -> float:
        return self._high_water

    @property
    def watermark(self) -> float:
        return self._high_water - self.reorder_slack

    @property
    def pending_entries(self) -> int:
        return len(self._pending)

    def push(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Accept a chunk; return everything now releasable, time-ordered."""
        ts = np.ascontiguousarray(timestamps, dtype=np.float64)
        qs = np.ascontiguousarray(queriers, dtype=np.int64)
        os_ = np.ascontiguousarray(originators, dtype=np.int64)
        n = int(ts.size)
        self.ingested += n
        if n == 0:
            return self._drain(self.watermark)
        prev_high = self._high_water
        running = np.maximum.accumulate(ts)
        high_before = np.empty(n, dtype=np.float64)
        high_before[0] = prev_high
        if n > 1:
            np.maximum(running[:-1], prev_high, out=high_before[1:])
        late = ts < self.origin
        late |= ts < high_before - self.reorder_slack
        n_late = int(np.count_nonzero(late))
        if n_late:
            self.late_dropped += n_late
            if n_late == n:
                return self._drain(self.watermark)
            accepted = ~late
            ts = ts[accepted]
            qs = qs[accepted]
            os_ = os_[accepted]
            high_before = high_before[accepted]
        self.reordered += int(np.count_nonzero(ts < high_before))
        self._high_water = max(prev_high, float(running[-1]))
        watermark = self.watermark
        if self.reorder_slack == 0 and not self._pending:
            # Acceptance with zero slack implies non-decreasing order.
            return ts, qs, os_
        seqs = np.arange(self._seq, self._seq + ts.size, dtype=np.int64)
        self._seq += int(ts.size)
        releasable = ts <= watermark
        for i in np.flatnonzero(~releasable).tolist():
            heapq.heappush(
                self._pending,
                (float(ts[i]), int(seqs[i]), int(qs[i]), int(os_[i])),
            )
        pool_ts = ts[releasable]
        pool_seq = seqs[releasable]
        pool_q = qs[releasable]
        pool_o = os_[releasable]
        if self._pending and self._pending[0][0] <= watermark:
            drained = self._pop_through(watermark)
            pool_ts = np.concatenate([drained[0], pool_ts])
            pool_seq = np.concatenate([drained[1], pool_seq])
            pool_q = np.concatenate([drained[2], pool_q])
            pool_o = np.concatenate([drained[3], pool_o])
        if pool_ts.size == 0:
            return pool_ts, pool_q, pool_o
        order = np.lexsort((pool_seq, pool_ts))
        return pool_ts[order], pool_q[order], pool_o[order]

    def flush(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Release everything still buffered (end of stream)."""
        return self._drain(float("inf"))

    def _pop_through(
        self, watermark: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        drained = []
        while self._pending and self._pending[0][0] <= watermark:
            drained.append(heapq.heappop(self._pending))
        return (
            np.array([d[0] for d in drained], dtype=np.float64),
            np.array([d[1] for d in drained], dtype=np.int64),
            np.array([d[2] for d in drained], dtype=np.int64),
            np.array([d[3] for d in drained], dtype=np.int64),
        )

    def _drain(self, watermark: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self._pending or self._pending[0][0] > watermark:
            empty_f = np.empty(0, dtype=np.float64)
            empty_i = np.empty(0, dtype=np.int64)
            return empty_f, empty_i, empty_i.copy()
        ts, seq, qs, os_ = self._pop_through(watermark)
        order = np.lexsort((seq, ts))
        return ts[order], qs[order], os_[order]
