"""Cross-vantage fusion: one originator seen from several authorities.

The paper measures each authority — the JP ccTLD, B-Root, M-Root —
*separately* and observes that the same originator class shows up with
different sensitivity at different points in the hierarchy (§ V:
nearly-complete caching above the recursive means a root sees a given
querier/originator pair far less often than a national authority does).
A federated deployment can go one step further: when the same originator
appears at multiple vantages, fuse the per-vantage verdicts into one
judgement keyed on ``(originator, vantage)``.

:func:`fuse_verdicts` implements the fusion rule used here:

* the fused **class** is the footprint-weighted majority over vantages —
  the vantage that saw more unique queriers had more evidence behind its
  verdict (ties break lexicographically, so fusion is deterministic);
* the fused **footprint** is the max over vantages, a lower bound on the
  size of the union of querier populations (vantage populations overlap
  arbitrarily, so summing would overcount).

Input verdicts come from any classify-capable run: a
:class:`~repro.federation.driver.FederatedSensor` window, a single
``SensorEngine`` window, or the CLI's ``--vantage`` batch runs over
:func:`~repro.datasets.generate.generate_multi_vantage` logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.sensor.engine import ClassifiedOriginator

__all__ = ["FusedOriginator", "fuse_verdicts"]


@dataclass(frozen=True, slots=True)
class FusedOriginator:
    """One originator's fused judgement across every vantage that saw it."""

    originator: int
    app_class: str
    """Footprint-weighted majority class (lexicographic tie-break)."""
    footprint: int
    """Max per-vantage footprint: a lower bound on the union population."""
    vantages: tuple[str, ...]
    """Vantage names that classified this originator, sorted."""
    verdicts: Mapping[str, str]
    """Per-vantage class, keyed by vantage name."""
    footprints: Mapping[str, int]
    """Per-vantage unique-querier footprint, keyed by vantage name."""

    @property
    def agreement(self) -> bool:
        """True when every vantage assigned the same class."""
        return len(set(self.verdicts.values())) == 1


def fuse_verdicts(
    per_vantage: Mapping[str, Iterable[ClassifiedOriginator]],
) -> list[FusedOriginator]:
    """Fuse per-vantage classify verdicts on ``(originator, vantage)``.

    *per_vantage* maps vantage name → that vantage's verdicts for one
    observation interval.  Returns one :class:`FusedOriginator` per
    distinct originator, sorted by descending fused footprint then
    ascending originator — the same ordering the CLI report uses.
    """
    by_originator: dict[int, dict[str, ClassifiedOriginator]] = {}
    for vantage, verdicts in per_vantage.items():
        for verdict in verdicts:
            by_originator.setdefault(verdict.originator, {})[vantage] = verdict
    fused = []
    for originator, seen in by_originator.items():
        weights: dict[str, int] = {}
        for verdict in seen.values():
            weights[verdict.app_class] = (
                weights.get(verdict.app_class, 0) + max(1, verdict.footprint)
            )
        app_class = min(weights, key=lambda name: (-weights[name], name))
        fused.append(
            FusedOriginator(
                originator=originator,
                app_class=app_class,
                footprint=max(v.footprint for v in seen.values()),
                vantages=tuple(sorted(seen)),
                verdicts={name: v.app_class for name, v in sorted(seen.items())},
                footprints={name: v.footprint for name, v in sorted(seen.items())},
            )
        )
    fused.sort(key=lambda f: (-f.footprint, f.originator))
    return fused
