"""Sharded multi-vantage federation of the sensing pipeline.

The paper senses each authority separately; this package scales one
authority's pipeline across N originator-partitioned shards — each a
full window/dedup/sketch/featurize :class:`~repro.sensor.engine.SensorEngine`
on its own process — and fuses the partials back into output
bit-identical to a single engine (see :mod:`repro.federation.driver` for
the equivalence argument and its one documented exception).  On top of
that, :mod:`repro.federation.fusion` combines verdicts for the same
originator seen at *different* vantages (a ccTLD and a root, say) into
one judgement.

Entry points:

* :class:`FederatedSensor` — the driver; ``process`` (batch) or
  ``ingest_block``/``poll``/``finish`` (streaming), ``--shards N`` on the
  CLI.
* :func:`fuse_verdicts` / :class:`FusedOriginator` — cross-vantage
  verdict fusion.
* :func:`shard_of` / :func:`partition_arrays` — the deterministic
  originator → shard hash partition.
* :class:`ReorderFront` — the driver-owned accept/release front that
  resolves stream disorder once, globally.
* :class:`ShardWorker` / :class:`ShardPool` — the per-shard pipeline and
  its process fan-out (building blocks; most callers want
  :class:`FederatedSensor`).
"""

from repro.federation.driver import FederatedSensor, FederatedWindow
from repro.federation.fusion import FusedOriginator, fuse_verdicts
from repro.federation.merge import merge_rows, merged_context
from repro.federation.partition import (
    ReorderFront,
    note_first_appearance,
    partition_arrays,
    shard_of,
)
from repro.federation.shard import ShardPool, ShardRows, ShardWorker, WindowSummary

__all__ = [
    "FederatedSensor",
    "FederatedWindow",
    "FusedOriginator",
    "fuse_verdicts",
    "merge_rows",
    "merged_context",
    "ReorderFront",
    "note_first_appearance",
    "partition_arrays",
    "shard_of",
    "ShardPool",
    "ShardRows",
    "ShardWorker",
    "WindowSummary",
]
