"""Shard-side worker: one originator partition's full sensing pipeline.

A :class:`ShardWorker` owns a :class:`~repro.sensor.engine.SensorEngine`
configured with ``reorder_slack=0`` (the driver's
:class:`~repro.federation.partition.ReorderFront` resolves reordering
globally) and ``featurize_workers=1`` (the federation's parallelism *is*
the shard fan-out).  It exposes exactly the calls the driver's two-phase
window protocol needs:

1. **feed/close** — ingest released arrays, advance to the global
   watermark, and return a :class:`WindowSummary` per newly closed
   window: the shard's querier roster, AS set, and country-name set,
   which the driver unions into the merged
   :class:`~repro.sensor.dynamic.WindowContext`.  (Country *names* are
   exchanged, not the enrichment cache's interned codes — codes are
   cache-local and mean nothing across processes.)
2. **featurize** — select + featurize the stored partial window under
   the merged context the driver broadcasts back, returning the rows as
   :class:`ShardRows`.  Because every feature row depends only on its
   own observation plus the shared context, shard rows are bit-identical
   to the rows a single engine computes for the same originators.

Process fan-out mirrors the featurize-workers pattern: one single-worker
fork-context executor per shard, the worker object inherited through
fork (never pickled), tasks shipping only flat arrays and index/context
tuples.  :class:`ShardPool` falls back to inline (same-process) workers
where fork is unavailable; results are identical either way.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.logstore import EntryBlock
from repro.sensor.collection import ObservationWindow
from repro.sensor.directory import EnrichmentCache, QuerierDirectory
from repro.sensor.dynamic import WindowContext
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.features import features_from_selected
from repro.sensor.selection import analyzable

__all__ = ["WindowSummary", "ShardRows", "ShardWorker", "ShardPool"]


@dataclass(slots=True)
class WindowSummary:
    """One shard's context contribution for one closed window."""

    index: int
    start: float
    end: float
    originators: int
    """Distinct originators materialized by this shard (partition-local)."""
    addrs: np.ndarray
    """Sorted distinct querier addresses this shard saw in the window."""
    asns: np.ndarray
    """Sorted distinct known ASNs over those addresses."""
    countries: list[str] = field(default_factory=list)
    """Sorted distinct country names over those addresses."""
    sketch_seen: int = 0
    """``prestage.originators_seen`` (0 when running exact)."""


@dataclass(slots=True)
class ShardRows:
    """One shard's featurize output for one window."""

    shard: int
    index: int
    originators: np.ndarray
    matrix: np.ndarray
    footprints: np.ndarray
    select_in: int
    select_out: int
    rows: int
    seconds: float
    sketch: dict | None = None


class ShardWorker:
    """The per-shard pipeline: window/dedup/sketch + context partials + rows."""

    def __init__(
        self,
        shard_id: int,
        directory: QuerierDirectory,
        config: SensorConfig,
    ) -> None:
        self.shard_id = shard_id
        self.config = config.replaced(featurize_workers=1, reorder_slack=0.0)
        # One persistent enrichment cache per shard: context partials and
        # featurize share lookups, exactly like a single engine's
        # per-window cache (enrichment is deterministic per address, so
        # cache locality never changes feature values).
        self.directory = EnrichmentCache.ensure(directory)
        self.engine = SensorEngine(self.directory, self.config)
        self._windows: dict[int, ObservationWindow] = {}

    # -- batch ----------------------------------------------------------

    def run_batch(
        self,
        timestamps: np.ndarray,
        queriers: np.ndarray,
        originators: np.ndarray,
        start: float,
        end: float,
        width: float,
    ) -> tuple[list[WindowSummary], int, float]:
        """Window this shard's slice of a batch span.

        Returns the summaries of traffic-bearing windows, the
        window-stage drop delta (dedup + sketch-gated events), and the
        worker-side wall time.
        """
        started = time.perf_counter()
        block = EntryBlock.from_arrays(timestamps, queriers, originators)
        dropped_before = self.engine.stats["window"].dropped
        windows = self.engine.windows(block, start, end, window_seconds=width)
        dropped_delta = self.engine.stats["window"].dropped - dropped_before
        summaries = []
        for index, window in enumerate(windows):
            summary = self._store(index, window)
            if summary is not None:
                summaries.append(summary)
        return summaries, dropped_delta, time.perf_counter() - started

    # -- streaming ------------------------------------------------------

    def feed_and_advance(
        self,
        timestamps: np.ndarray | None,
        queriers: np.ndarray | None,
        originators: np.ndarray | None,
        watermark: float | None,
    ) -> tuple[list[WindowSummary], int, float]:
        """Ingest released arrays, then close windows at the global watermark.

        Returns newly closed window summaries, the shard collector's
        cumulative dedup count, and the worker-side wall time.
        """
        started = time.perf_counter()
        collector = self.engine.collector
        if timestamps is not None and len(timestamps):
            collector.ingest_arrays(timestamps, queriers, originators)
        if watermark is not None:
            collector.advance_watermark(watermark)
        summaries = self._store_completed(collector.completed_windows())
        return summaries, collector.stats.deduplicated, time.perf_counter() - started

    def finish(self) -> tuple[list[WindowSummary], int, float]:
        """End of stream: flush still-open windows."""
        started = time.perf_counter()
        collector = self.engine.collector
        summaries = self._store_completed(collector.flush())
        return summaries, collector.stats.deduplicated, time.perf_counter() - started

    # -- featurize ------------------------------------------------------

    def featurize_window(
        self, index: int, context_fields: tuple[float, float, int, int, int]
    ) -> ShardRows:
        """Select + featurize a stored window under the merged context."""
        started = time.perf_counter()
        window = self._windows.pop(index)
        context = WindowContext(*context_fields)
        selected = analyzable(window, self.config.min_queriers)
        prestage = window.prestage
        items_in = len(window) if prestage is None else prestage.originators_seen
        features = features_from_selected(
            window, selected, self.directory, workers=1, context=context
        )
        sketch = None
        if prestage is not None:
            sketch = {
                "originators_seen": prestage.originators_seen,
                "gate_kept": prestage.gate_kept,
                "gate_dropped": prestage.gate_dropped,
                "events_unique": prestage.events_unique,
                "events_duplicate": prestage.events_duplicate,
                "events_deferred": prestage.events_deferred,
                "resolver_wholesale": prestage.resolver_wholesale,
                "resolver_replayed": prestage.resolver_replayed,
            }
        return ShardRows(
            shard=self.shard_id,
            index=index,
            originators=features.originators,
            matrix=features.matrix,
            footprints=features.footprints,
            select_in=items_in,
            select_out=len(selected),
            rows=len(features),
            seconds=time.perf_counter() - started,
            sketch=sketch,
        )

    # -- internals ------------------------------------------------------

    def _store_completed(
        self, completed: list[ObservationWindow]
    ) -> list[WindowSummary]:
        origin = self.config.origin
        width = self.config.window_seconds
        summaries = []
        for window in completed:
            index = int(round((window.start - origin) / width))
            summary = self._store(index, window)
            if summary is not None:
                summaries.append(summary)
        return summaries

    def _store(self, index: int, window: ObservationWindow) -> WindowSummary | None:
        """Keep a window for the featurize phase; summarize its context.

        Windows with neither observations nor a pre-stage contribute
        nothing to any stage and are skipped (the driver gap-fills).
        """
        if len(window) == 0 and window.prestage is None:
            return None
        self._windows[index] = window
        addrs, asns, countries = self._context_partial(window)
        return WindowSummary(
            index=index,
            start=window.start,
            end=window.end,
            originators=len(window),
            addrs=addrs,
            asns=asns,
            countries=countries,
            sketch_seen=(
                window.prestage.originators_seen if window.prestage is not None else 0
            ),
        )

    def _context_partial(
        self, window: ObservationWindow
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        if window.querier_roster is not None:
            addrs = np.asarray(window.querier_roster, dtype=np.int64)
        else:
            queriers: set[int] = set()
            for observation in window.observations.values():
                queriers |= observation.unique_queriers
            addrs = np.fromiter(queriers, np.int64, len(queriers))
            addrs.sort()
        if addrs.size == 0:
            return addrs, np.empty(0, dtype=np.int64), []
        _, asns, country_codes = self.directory.codes(addrs)
        known_asns = np.unique(asns[asns >= 0])
        names = sorted(
            set(self.directory.country_names(country_codes[country_codes >= 0]))
        )
        return addrs, known_asns, names


# -- process fan-out ------------------------------------------------------

#: The worker a forked shard process operates on, installed by the pool
#: initializer.  With the fork start method the worker object is
#: inherited copy-on-write — nothing heavy crosses the IPC pipe; task
#: payloads are flat arrays and small tuples.
_SHARD: ShardWorker | None = None


def _init_shard(worker: ShardWorker) -> None:
    global _SHARD
    _SHARD = worker


def _task_run_batch(args: tuple) -> tuple:
    assert _SHARD is not None
    return _SHARD.run_batch(*args)


def _task_feed_and_advance(args: tuple) -> tuple:
    assert _SHARD is not None
    return _SHARD.feed_and_advance(*args)


def _task_finish(args: tuple) -> tuple:
    assert _SHARD is not None
    del args
    return _SHARD.finish()


def _task_featurize(args: tuple) -> ShardRows:
    assert _SHARD is not None
    return _SHARD.featurize_window(*args)


_TASKS = {
    "run_batch": _task_run_batch,
    "feed_and_advance": _task_feed_and_advance,
    "finish": _task_finish,
    "featurize_window": _task_featurize,
}


class _Immediate:
    """Future-alike wrapping an already-computed inline result."""

    __slots__ = ("_value",)

    def __init__(self, value: object) -> None:
        self._value = value

    def result(self) -> object:
        return self._value


class ShardPool:
    """One single-worker process per shard, or inline workers without fork.

    Each shard gets its *own* executor so its worker state (collector,
    stored windows, enrichment cache) persists across tasks, and tasks
    for different shards run concurrently.  Submission order per shard
    is execution order (one worker per executor), which the driver's
    feed → close → featurize sequencing relies on.
    """

    def __init__(self, workers: Sequence[ShardWorker], processes: bool = True) -> None:
        self.workers = list(workers)
        self._executors: list[ProcessPoolExecutor] | None = None
        if processes:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:
                mp_context = None
            if mp_context is not None:
                self._executors = [
                    ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=mp_context,
                        initializer=_init_shard,
                        initargs=(worker,),
                    )
                    for worker in self.workers
                ]

    @property
    def inline(self) -> bool:
        """True when running shards in-process (no fork available/wanted)."""
        return self._executors is None

    def submit(self, shard: int, method: str, args: tuple) -> "Future | _Immediate":
        if self._executors is None:
            return _Immediate(getattr(self.workers[shard], method)(*args))
        return self._executors[shard].submit(_TASKS[method], args)

    def close(self) -> None:
        if self._executors is not None:
            for executor in self._executors:
                executor.shutdown()
            self._executors = None
