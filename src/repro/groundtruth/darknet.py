"""Darknet observer: the paper's scanner-confirmation source.

The authors confirm scanners with two darknets in Japan (a /17 and a /18):
"A confirmed scanner sends TCP (SYN only), UDP, or ICMP packets to more
than 1024 addresses in at least one darknet" (Appendix A).

Substitution: our simulator does not emit per-packet scan traffic, so the
darknet observes *campaigns* analytically.  A random sweep that induces an
audience of A queriers out of the world's Q queriers has touched roughly
the fraction A/Q of the (scaled) Internet, and therefore hits about
A/Q × |darknet| darknet addresses.  Targeted scans (curated target lists)
hit darknets essentially never — exactly the blind spot backscatter
covers (§ VII: "our use of DNS backscatter will see targeted scans that
miss their darknet").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.base import Campaign
from repro.netmodel.addressing import Prefix
from repro.netmodel.world import World

__all__ = ["CONFIRMATION_THRESHOLD", "Darknet"]

#: Addresses an originator must hit in one darknet to be a confirmed
#: scanner (Appendix A's 1024), scaled by the world-to-Internet ratio
#: inside :meth:`Darknet.observe`.
CONFIRMATION_THRESHOLD = 1024

#: Classes whose campaigns emit unsolicited packets that darknets can see.
_DARK_VISIBLE = frozenset({"scan", "p2p"})


@dataclass(slots=True)
class Darknet:
    """One or more monitored unoccupied prefixes.

    ``hits`` accumulates unique darknet addresses touched per originator;
    populate it by calling :meth:`observe` over all campaigns.
    """

    world: World
    prefixes: tuple[Prefix, ...] = (
        Prefix.parse("203.128.0.0/17"),
        Prefix.parse("203.192.0.0/18"),
    )
    seed: int = 404
    hits: dict[int, int] = field(default_factory=dict)
    variants: dict[int, set[str]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return sum(p.size for p in self.prefixes)

    def observe(self, campaigns: list[Campaign]) -> None:
        """Accumulate darknet hits induced by the given campaigns."""
        rng = np.random.default_rng(self.seed)
        world_queriers = max(1, len(self.world.queriers))
        for campaign in campaigns:
            if campaign.app_class not in _DARK_VISIBLE:
                continue
            if campaign.targeted:
                continue
            # p2p address misconfiguration sprays far less of the space
            # than a deliberate sweep.
            breadth = campaign.footprint / world_queriers
            if campaign.app_class == "p2p":
                breadth *= 0.15
            expected = breadth * self.size
            observed = int(rng.poisson(expected)) if expected > 0 else 0
            if observed == 0:
                continue
            self.hits[campaign.originator] = self.hits.get(campaign.originator, 0) + observed
            if campaign.variant:
                self.variants.setdefault(campaign.originator, set()).add(campaign.variant)

    def dark_addresses(self, originator: int) -> int:
        """Unique darknet addresses this originator touched (the DarkIP
        column of Tables VII/VIII)."""
        return self.hits.get(originator, 0)

    def confirmed_scanners(self, threshold: int = CONFIRMATION_THRESHOLD) -> set[int]:
        """Originators exceeding the confirmation threshold (Appendix A).

        With the default /17 + /18 darknet, a sweep covering a few percent
        of the (scaled) world clears 1024 addresses comfortably, while
        small or targeted scans stay invisible — the same blind spot the
        real darknets have.
        """
        return {o for o, n in self.hits.items() if n >= threshold}
