"""External evidence sources: darknets, DNS blacklists, label curation.

These substitute for the paper's Appendix A validation apparatus; they
only ever see what the activity simulation actually did, so labels are
grounded in behaviour, not in the sensor's own output.
"""

from repro.groundtruth.blacklist import (
    DEFAULT_PROVIDERS,
    BlacklistProvider,
    BlacklistRegistry,
)
from repro.groundtruth.darknet import CONFIRMATION_THRESHOLD, Darknet
from repro.groundtruth.labeling import (
    EXTERNAL_COVERAGE,
    GroundTruthSources,
    build_labeled_set,
)

__all__ = [
    "DEFAULT_PROVIDERS",
    "BlacklistProvider",
    "BlacklistRegistry",
    "CONFIRMATION_THRESHOLD",
    "Darknet",
    "EXTERNAL_COVERAGE",
    "GroundTruthSources",
    "build_labeled_set",
]
