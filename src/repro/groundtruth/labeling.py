"""Building the labeled ground truth (§ IV-B and Appendix A).

The paper's recipe: from external sources, build candidate IP lists per
application class; intersect with the top-10000 originators by unique
queriers; verify each intersection manually.  Accuracy is favored over
quantity — mislabeled examples mis-train the classifier.

Our sources substitute as follows:

* **spam** — DNSBL listings (:mod:`repro.groundtruth.blacklist`);
* **scan** — darknet confirmation (:mod:`repro.groundtruth.darknet`) or
  a known research scanner;
* **benign classes** — a "service registry" of externally knowable
  services (crawled ad networks, CDN whois, mailing-list subscriptions,
  NTP pool membership, …): each benign actor is independently known to
  the expert with a per-class coverage probability, reflecting how
  discoverable that class is (one can subscribe to 100 mailing lists, but
  enumerating every push gateway is hard).

Manual verification is modeled as exact: the expert never mislabels an
originator they have external evidence for, matching the paper's
accuracy-over-quantity stance.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.activity.scenario import Actor
from repro.groundtruth.blacklist import BlacklistRegistry
from repro.groundtruth.darknet import Darknet
from repro.sensor.curation import LabeledExample, LabeledSet

__all__ = ["EXTERNAL_COVERAGE", "GroundTruthSources", "build_labeled_set"]

#: Probability an actor of each benign class is discoverable from
#: external sources (Appendix A's crawls, registrations, and logs).
EXTERNAL_COVERAGE: dict[str, float] = {
    "ad-tracker": 0.75,
    "cdn": 0.80,
    "cloud": 0.70,
    "crawler": 0.75,
    "dns": 0.85,
    "mail": 0.65,
    "ntp": 0.80,
    "p2p": 0.50,
    "push": 0.55,
    "update": 0.70,
}


@dataclass(slots=True)
class GroundTruthSources:
    """Everything the expert consults when curating labels."""

    darknet: Darknet
    blacklists: BlacklistRegistry
    actors_by_ip: dict[int, Actor]
    research_scanners: set[int] = field(default_factory=set)
    seed: int = 7001

    def candidates_for(self, app_class: str, rng: np.random.Generator) -> set[int]:
        """External candidate IPs for one class, before intersection."""
        if app_class == "spam":
            return self.blacklists.listed_spammers()
        if app_class == "scan":
            return self.darknet.confirmed_scanners() | set(self.research_scanners)
        coverage = EXTERNAL_COVERAGE.get(app_class, 0.5)
        found: set[int] = set()
        for addr, actor in self.actors_by_ip.items():
            if actor.app_class == app_class and rng.random() < coverage:
                found.add(addr)
        return found

    def true_class(self, originator: int) -> str | None:
        actor = self.actors_by_ip.get(originator)
        return actor.app_class if actor else None


def build_labeled_set(
    sources: GroundTruthSources,
    top_originators: list[int],
    per_class_cap: int = 140,
    curated_day: float = 0.0,
    classes: tuple[str, ...] | None = None,
) -> LabeledSet:
    """§ IV-B: candidates ∩ top originators, manually verified, capped.

    ``top_originators`` must already be ranked by unique queriers (the
    paper intersects with the top-10000); the cap keeps classes from
    swamping each other, taking the highest-ranked examples first.
    Verification discards candidates whose true class disagrees with the
    source that proposed them (e.g. a blacklisted host that is actually
    a mail server stays out of the spam examples).
    """
    rng = np.random.default_rng(sources.seed)
    rank = {originator: i for i, originator in enumerate(top_originators)}
    labeled = LabeledSet()
    counts: Counter[str] = Counter()
    wanted = classes if classes is not None else tuple(sorted(EXTERNAL_COVERAGE) + ["scan", "spam"])
    for app_class in wanted:
        candidates = sources.candidates_for(app_class, rng)
        in_top = sorted(
            (c for c in candidates if c in rank), key=lambda c: rank[c]
        )
        for originator in in_top:
            if counts[app_class] >= per_class_cap:
                break
            if sources.true_class(originator) != app_class:
                continue  # manual verification rejects the candidate
            if originator in labeled:
                continue
            labeled.add(LabeledExample(originator, app_class, curated_day))
            counts[app_class] += 1
    return labeled
