"""DNS blacklists (DNSBL): the paper's spam-confirmation source.

Appendix A lists nine DNSBL operators (badips, barracuda, dnsbl.sorbs,
inps.de, junkemail, openbl, spamhaus, spamrats, spam.dnsbl.sorbs) and
Tables VII/VIII report per-originator listing counts split into BLS
("blacklist spam") and BLO ("blacklist other": scanning, ssh attacks,
phishing…).  We model each provider as an imperfect detector: a spam
campaign gets listed by a spam-focused provider with that provider's
detection probability; scanners and brute-forcers show up on the
"other" portions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.base import Campaign

__all__ = ["BlacklistProvider", "DEFAULT_PROVIDERS", "BlacklistRegistry"]


@dataclass(frozen=True, slots=True)
class BlacklistProvider:
    """One DNSBL operator and its per-campaign detection probability."""

    name: str
    spam_detection: float
    other_detection: float


#: Nine providers mirroring Appendix A's list; spam-focused lists detect
#: spam well, the mixed lists also flag scanners/brute-forcers.
DEFAULT_PROVIDERS: tuple[BlacklistProvider, ...] = (
    BlacklistProvider("badips", 0.25, 0.30),
    BlacklistProvider("barracuda", 0.55, 0.05),
    BlacklistProvider("dnsbl.sorbs", 0.45, 0.10),
    BlacklistProvider("inps.de", 0.20, 0.10),
    BlacklistProvider("junkemail", 0.35, 0.02),
    BlacklistProvider("openbl", 0.15, 0.35),
    BlacklistProvider("spamhaus", 0.70, 0.05),
    BlacklistProvider("spamrats", 0.40, 0.02),
    BlacklistProvider("spam.dnsbl.sorbs", 0.40, 0.02),
)

#: Which classes each list portion can catch.
_SPAM_LISTABLE = frozenset({"spam"})
_OTHER_LISTABLE = frozenset({"scan", "p2p"})


@dataclass(slots=True)
class BlacklistRegistry:
    """Accumulated listings across all providers."""

    providers: tuple[BlacklistProvider, ...] = DEFAULT_PROVIDERS
    seed: int = 909
    _spam: dict[int, set[str]] = field(default_factory=dict)
    _other: dict[int, set[str]] = field(default_factory=dict)

    def observe(self, campaigns: list[Campaign]) -> None:
        """Run every provider's detector over the campaigns."""
        rng = np.random.default_rng(self.seed)
        for campaign in campaigns:
            # Bigger activities are likelier to trip a detector; saturate
            # around a few hundred queriers.
            visibility = min(1.0, campaign.footprint / 300.0)
            for provider in self.providers:
                if campaign.app_class in _SPAM_LISTABLE:
                    if rng.random() < provider.spam_detection * visibility:
                        self._spam.setdefault(campaign.originator, set()).add(provider.name)
                if campaign.app_class in _OTHER_LISTABLE:
                    if rng.random() < provider.other_detection * visibility:
                        self._other.setdefault(campaign.originator, set()).add(provider.name)

    def spam_listings(self, originator: int) -> int:
        """BLS: how many providers list this originator as a spammer."""
        return len(self._spam.get(originator, ()))

    def other_listings(self, originator: int) -> int:
        """BLO: how many providers list it for other malicious activity."""
        return len(self._other.get(originator, ()))

    def listed_spammers(self, min_listings: int = 1) -> set[int]:
        return {o for o, names in self._spam.items() if len(names) >= min_listings}

    def listed_other(self, min_listings: int = 1) -> set[int]:
        return {o for o, names in self._other.items() if len(names) >= min_listings}

    def is_clean(self, originator: int) -> bool:
        """No provider lists this originator at all (Table VII's "clean")."""
        return self.spam_listings(originator) == 0 and self.other_listings(originator) == 0
