"""Long-horizon activity scenarios: actors, churn, teams, world events.

§ V and § VI study how network-wide activity evolves over months: benign
originators persist (≈10% decay per month), malicious ones churn fast
(≈50% per month), a stable core of scanners probes continuously, /24
"team" blocks host many coordinated scanners, and security events like
the Heartbleed announcement (2014-04-07) trigger bursts of tcp443
scanning (Fig 11, Fig 13).

An :class:`Actor` is one originator IP with a birth time and a lifetime;
while alive it emits campaigns — one long campaign for continuous service
classes, a recurring series for episodic classes (mail sendouts, spam
runs, scan sweeps).  Scenario time is seconds from the observation start;
day 0 is the first observed day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.base import (
    Campaign,
    _sample_ptr_spec,
    allocate_routed_originator,
    build_campaign,
)
from repro.activity.classes import (
    APPLICATION_CLASSES,
    MALICIOUS_CLASSES,
    PROFILES,
    SCAN_VARIANTS,
    TemporalMode,
)
from repro.activity.diurnal import SECONDS_PER_DAY
from repro.dnssim.zone import PtrRecordSpec
from repro.netmodel.addressing import Prefix
from repro.netmodel.world import World

__all__ = [
    "LIFETIME_DAYS_MEAN",
    "Actor",
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
]

#: Mean actor lifetime per class, in days.  Exponential lifetimes with
#: these means reproduce Fig 5/6: exp(-30/300) ≈ 10% monthly decay for
#: benign classes, exp(-30/43) ≈ 50% for malicious ones.
LIFETIME_DAYS_MEAN: dict[str, float] = {
    "ad-tracker": 400.0,
    "cdn": 200.0,
    "cloud": 500.0,
    "crawler": 300.0,
    "dns": 600.0,
    "mail": 270.0,
    "ntp": 600.0,
    "p2p": 90.0,
    "push": 500.0,
    "update": 600.0,
    "scan": 45.0,
    "spam": 38.0,
}

#: Mean gap between campaigns for episodic classes (days); continuous
#: classes run a single campaign for their whole lifetime.
_EPISODIC_GAP_DAYS: dict[str, float] = {
    "mail": 6.0,
    "spam": 2.0,
    "scan": 2.0,
    "p2p": 3.0,
}

#: Fraction of scan actors that are slow-and-steady core scanners — the
#: always-present background § VI-C identifies.
_PERSISTENT_SCANNER_FRACTION = 0.3
_PERSISTENT_SCAN_VARIANTS = ("tcp22", "multi")


@dataclass(slots=True)
class Actor:
    """One originator IP carrying out one class of activity over its life."""

    originator: int
    app_class: str
    born_day: float
    lifetime_days: float
    home_country: str | None
    ptr_spec: PtrRecordSpec
    audience_size: int
    variant: str | None = None
    team_block: Prefix | None = None
    persistent: bool = False

    @property
    def dies_day(self) -> float:
        return self.born_day + self.lifetime_days

    def alive_on(self, day: float) -> bool:
        return self.born_day <= day < self.dies_day


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Population sizes and events for one long observation."""

    seed: int = 2014
    duration_days: float = 63.0
    initial_actors: dict[str, int] = field(
        default_factory=lambda: {
            "ad-tracker": 6,
            "cdn": 14,
            "cloud": 8,
            "crawler": 8,
            "dns": 8,
            "mail": 16,
            "ntp": 4,
            "p2p": 8,
            "push": 6,
            "scan": 24,
            "spam": 30,
            "update": 3,
        }
    )
    weekly_arrivals: dict[str, float] = field(
        default_factory=lambda: {
            "ad-tracker": 0.3,
            "cdn": 1.5,
            "cloud": 0.3,
            "crawler": 0.5,
            "dns": 0.3,
            "mail": 2.0,
            "ntp": 0.1,
            "p2p": 1.5,
            "push": 0.3,
            "scan": 7.0,
            "spam": 10.0,
            "update": 0.05,
        }
    )
    audience_scale: float = 1.0
    """Multiplies every actor's audience size; the event-budget knob."""
    heartbleed_day: float | None = None
    heartbleed_extra_scanners: int = 12
    heartbleed_window_days: float = 14.0
    team_blocks: int = 3
    lifetimes: dict[str, float] = field(default_factory=lambda: dict(LIFETIME_DAYS_MEAN))
    force_home_country: str | None = None
    """Place every actor in one country — used for national vantage
    datasets, which only see originators in their own delegated space."""


@dataclass(slots=True)
class Scenario:
    """The materialized population: actors plus their campaigns."""

    config: ScenarioConfig
    actors: list[Actor]
    campaigns: list[Campaign]
    team_prefixes: list[Prefix]

    def actors_of(self, app_class: str) -> list[Actor]:
        return [a for a in self.actors if a.app_class == app_class]

    def alive_counts(self, day: float) -> dict[str, int]:
        counts = {name: 0 for name in APPLICATION_CLASSES}
        for actor in self.actors:
            if actor.alive_on(day):
                counts[actor.app_class] += 1
        return counts


def _draw_audience_size(
    world: World, app_class: str, scale: float, rng: np.random.Generator
) -> int:
    profile = PROFILES[app_class]
    drawn = rng.lognormal(profile.audience_logmu, profile.audience_logsigma) * scale
    cap = min(profile.audience_max * scale, 0.4 * len(world.queriers))
    return int(np.clip(drawn, 20, max(21.0, cap)))


def _make_actor(
    world: World,
    app_class: str,
    born_day: float,
    config: ScenarioConfig,
    rng: np.random.Generator,
    team_prefixes: list[Prefix],
    variant: str | None = None,
    lifetime_days: float | None = None,
) -> Actor:
    profile = PROFILES[app_class]
    persistent = False
    if app_class == "scan" and variant is None:
        if rng.random() < _PERSISTENT_SCANNER_FRACTION:
            persistent = True
            variant = _PERSISTENT_SCAN_VARIANTS[
                int(rng.integers(len(_PERSISTENT_SCAN_VARIANTS)))
            ]
        else:
            variant = SCAN_VARIANTS[int(rng.integers(len(SCAN_VARIANTS)))]
    if lifetime_days is None:
        mean = config.lifetimes[app_class]
        if persistent:
            mean *= 6.0
        lifetime_days = max(1.0, float(rng.exponential(mean)))
    if config.force_home_country is not None:
        home = config.force_home_country
    elif profile.originator_countries:
        home = profile.originator_countries[
            int(rng.integers(len(profile.originator_countries)))
        ]
    else:
        codes = sorted(world.geo.countries)
        weights = np.array([world.geo.countries[c].weight for c in codes])
        home = codes[int(rng.choice(len(codes), p=weights / weights.sum()))]
    team_block: Prefix | None = None
    # Persistent core scanners are usually team operations (the paper's
    # tcp22 example shares its /24 with 140 other scanning addresses).
    team_probability = 0.6 if persistent else profile.team_probability
    if (
        app_class == "scan"
        and team_prefixes
        and rng.random() < team_probability
    ):
        team_block = team_prefixes[int(rng.integers(len(team_prefixes)))]
        originator = world.allocate_in_block(rng, team_block)
    elif rng.random() < profile.originator_routed_probability:
        kind = profile.originator_kinds[int(rng.integers(len(profile.originator_kinds)))]
        originator = allocate_routed_originator(world, rng, home, kind)
    else:
        originator = world.allocate_originator(rng, country=home, routed=False)
    audience_size = _draw_audience_size(world, app_class, config.audience_scale, rng)
    if persistent:
        # The slow-and-steady core is what sensors see week after week;
        # give it the larger, reliably-analyzable footprints the paper's
        # tcp22/multi examples carry.
        audience_size = int(audience_size * 1.5)
    return Actor(
        originator=originator,
        app_class=app_class,
        born_day=born_day,
        lifetime_days=lifetime_days,
        home_country=home,
        ptr_spec=_sample_ptr_spec(profile, rng),
        audience_size=audience_size,
        variant=variant,
        team_block=team_block,
        persistent=persistent,
    )


def _campaigns_for_actor(
    world: World,
    actor: Actor,
    config: ScenarioConfig,
    rng: np.random.Generator,
) -> list[Campaign]:
    """Emit the actor's campaigns clipped to the observation window."""
    profile = PROFILES[actor.app_class]
    window_end_day = config.duration_days
    active_start = max(actor.born_day, 0.0)
    active_end = min(actor.dies_day, window_end_day)
    if active_end <= active_start:
        return []
    campaigns: list[Campaign] = []
    if profile.temporal_mode is TemporalMode.CONTINUOUS:
        campaigns.append(
            build_campaign(
                world,
                actor.app_class,
                rng,
                start=active_start * SECONDS_PER_DAY,
                duration_days=active_end - active_start,
                audience_size=actor.audience_size,
                variant=actor.variant,
                originator=actor.originator,
                home_country=actor.home_country,
                ptr_spec=actor.ptr_spec,
            )
        )
        return campaigns
    gap_mean = _EPISODIC_GAP_DAYS.get(actor.app_class, 3.0)
    cursor = active_start
    while cursor < active_end:
        duration = max(0.1, float(rng.exponential(profile.duration_days_mean)))
        if actor.persistent:
            duration = max(duration, 7.0)
        duration = min(duration, active_end - cursor)
        size = max(20, int(actor.audience_size * rng.uniform(0.8, 1.2)))
        campaigns.append(
            build_campaign(
                world,
                actor.app_class,
                rng,
                start=cursor * SECONDS_PER_DAY,
                duration_days=duration,
                audience_size=size,
                variant=actor.variant,
                originator=actor.originator,
                home_country=actor.home_country,
                ptr_spec=actor.ptr_spec,
            )
        )
        gap = 0.2 if actor.persistent else float(rng.exponential(gap_mean))
        cursor += duration + max(gap, 0.05)
    return campaigns


def build_scenario(world: World, config: ScenarioConfig | None = None) -> Scenario:
    """Create the full actor population and all campaigns for a window.

    Initial actors are aged uniformly into their lifetimes (a stationary
    population); arrivals follow per-class Poisson processes; the
    Heartbleed event injects short-lived tcp443 scanners in a burst.
    """
    config = config or ScenarioConfig()
    rng = np.random.default_rng(config.seed)
    team_prefixes = [
        world.allocate_team_block(rng, country=config.force_home_country)
        for _ in range(config.team_blocks)
    ]
    actors: list[Actor] = []
    for app_class in APPLICATION_CLASSES:
        for _ in range(config.initial_actors.get(app_class, 0)):
            mean = config.lifetimes[app_class]
            lifetime = max(1.0, float(rng.exponential(mean)))
            age = float(rng.uniform(0.0, lifetime))
            actor = _make_actor(
                world,
                app_class,
                born_day=-age,
                config=config,
                rng=rng,
                team_prefixes=team_prefixes,
                lifetime_days=lifetime,
            )
            actors.append(actor)
        rate_per_day = config.weekly_arrivals.get(app_class, 0.0) / 7.0
        if rate_per_day > 0:
            day = 0.0
            while True:
                day += float(rng.exponential(1.0 / rate_per_day))
                if day >= config.duration_days:
                    break
                actors.append(
                    _make_actor(
                        world, app_class, day, config, rng, team_prefixes
                    )
                )
    if config.heartbleed_day is not None:
        for _ in range(config.heartbleed_extra_scanners):
            born = config.heartbleed_day + float(
                rng.uniform(0.0, config.heartbleed_window_days * 0.5)
            )
            actors.append(
                _make_actor(
                    world,
                    "scan",
                    born,
                    config,
                    rng,
                    team_prefixes,
                    variant="tcp443",
                    lifetime_days=float(
                        rng.uniform(3.0, config.heartbleed_window_days)
                    ),
                )
            )
    campaigns: list[Campaign] = []
    for actor in actors:
        campaigns.extend(_campaigns_for_actor(world, actor, config, rng))
    campaigns.sort(key=lambda c: c.start)
    return Scenario(
        config=config, actors=actors, campaigns=campaigns, team_prefixes=team_prefixes
    )
