"""Campaigns: one originator's network-wide activity over a time window.

A campaign is the generative unit of the simulation.  Building one
allocates an originator address, draws its audience of queriers (the
machines that will resolve its PTR as a side effect of being touched),
and pre-computes every lookup-attempt time, so that event generation is
deterministic, windowable, and independent of simulation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.classes import (
    PROFILES,
    SCAN_VARIANTS,
    ClassProfile,
    TemporalMode,
)
from repro.activity.diurnal import SECONDS_PER_DAY
from repro.dnssim.zone import PtrRecordSpec
from repro.netmodel.addressing import Prefix
from repro.netmodel.world import Querier, World

__all__ = ["Campaign", "build_campaign"]


@dataclass(slots=True)
class Campaign:
    """A fully materialized activity: who, what, when, and every lookup."""

    originator: int
    app_class: str
    start: float
    end: float
    audience: tuple[Querier, ...]
    ptr_spec: PtrRecordSpec
    home_country: str | None = None
    variant: str | None = None
    """Scan port/protocol variant (``tcp22`` …); None for other classes."""
    targeted: bool = False
    """Targeted scans probe curated lists and never hit darknets (§ VII)."""
    team_block: Prefix | None = None
    _times: np.ndarray = field(default_factory=lambda: np.empty(0))
    _querier_index: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def footprint(self) -> int:
        """Intended audience size (unique queriers at final-authority level)."""
        return len(self.audience)

    @property
    def duration_days(self) -> float:
        return (self.end - self.start) / SECONDS_PER_DAY

    def active_during(self, window_start: float, window_end: float) -> bool:
        return self.start < window_end and self.end > window_start

    def set_events(self, times: np.ndarray, querier_index: np.ndarray) -> None:
        order = np.argsort(times, kind="stable")
        self._times = times[order]
        self._querier_index = querier_index[order]

    @property
    def total_attempts(self) -> int:
        return len(self._times)

    def events_in(
        self, window_start: float, window_end: float
    ) -> list[tuple[float, Querier]]:
        """Lookup attempts with ``window_start <= t < window_end``, in order."""
        lo = int(np.searchsorted(self._times, window_start, side="left"))
        hi = int(np.searchsorted(self._times, window_end, side="left"))
        return [
            (float(self._times[i]), self.audience[int(self._querier_index[i])])
            for i in range(lo, hi)
        ]


def allocate_routed_originator(
    world: World,
    rng: np.random.Generator,
    country: str | None,
    kind,
) -> int:
    """Allocate preferring (country, kind), relaxing kind then country.

    Small countries may lack an AS of the preferred kind (not every
    country hosts cloud providers); activity still has to originate
    somewhere, so fall back rather than fail.
    """
    for constraints in ((country, kind), (country, None), (None, kind)):
        try:
            return world.allocate_originator(rng, country=constraints[0], kind=constraints[1])
        except ValueError:
            continue
    return world.allocate_originator(rng)


def _sample_ptr_spec(
    profile: ClassProfile, rng: np.random.Generator
) -> PtrRecordSpec:
    ptr = profile.ptr
    weights = np.asarray(ptr.ttl_weights, dtype=float)
    ttl = float(
        ptr.ttl_choices[int(rng.choice(len(ptr.ttl_choices), p=weights / weights.sum()))]
    )
    negative_ttl = float(
        ptr.negative_ttl_choices[int(rng.integers(len(ptr.negative_ttl_choices)))]
    )
    return PtrRecordSpec(
        has_name=rng.random() < ptr.has_name_probability,
        ttl=ttl,
        negative_ttl=negative_ttl,
        reachable=rng.random() < ptr.reachable_probability,
    )


def _jitter_role_weights(
    weights: dict, concentration: float, rng: np.random.Generator
) -> dict:
    """Per-campaign Dirichlet draw around the profile's role mix."""
    roles = list(weights)
    base = np.array([weights[r] for r in roles], dtype=float)
    base = base / base.sum()
    drawn = rng.dirichlet(np.maximum(base * concentration, 1e-3))
    return dict(zip(roles, drawn.tolist()))


def _country_weights(
    world: World, home: str | None, bias: float
) -> dict[str, float] | None:
    if home is None or bias <= 0.0:
        return None
    weights = {
        code: (1.0 - bias) * country.weight
        for code, country in world.geo.countries.items()
        if code != home
    }
    total_rest = sum(weights.values())
    if total_rest > 0:
        weights = {c: w / total_rest * (1.0 - bias) for c, w in weights.items()}
    weights[home] = bias
    return weights


def _boost_nameless(
    world: World,
    audience: list[Querier],
    boost: float,
    rng: np.random.Generator,
) -> list[Querier]:
    if boost <= 0.0:
        return audience
    pool = world.nameless_indices()
    if not pool:
        return audience
    replaced = audience[:]
    used = {q.addr for q in audience}
    for i in range(len(replaced)):
        if rng.random() >= boost:
            continue
        for _ in range(4):
            candidate = world.queriers[pool[int(rng.integers(len(pool)))]]
            if candidate.addr not in used:
                used.add(candidate.addr)
                replaced[i] = candidate
                break
    return replaced


def _effective_ptr_ttl(spec: PtrRecordSpec) -> float:
    """How long a querier's resolver will cache the campaign's PTR answer.

    Mirrors :meth:`repro.dnssim.resolver.RecursiveResolver.store_answer`,
    including the cache-pressure eviction cap, so the pre-compression of
    attempts into misses stays exactly consistent with the hierarchy.
    """
    from repro.dnssim.zone import PTR_CACHE_EVICTION_SECONDS, SERVFAIL_RETRY_TTL

    if not spec.reachable:
        return SERVFAIL_RETRY_TTL
    if not spec.has_name:
        return min(spec.negative_ttl, PTR_CACHE_EVICTION_SECONDS)
    return min(spec.ttl, PTR_CACHE_EVICTION_SECONDS)


def _dedup_by_ttl(times: np.ndarray, ttl: float) -> np.ndarray:
    """Keep only attempts that would miss the querier's PTR cache.

    The resolver caches the answer for *ttl* seconds, so of a sorted
    attempt sequence only those at least *ttl* after the previous kept one
    reach the authority.  Compressing here (instead of generating every
    cache hit as an event) keeps month-scale simulations tractable and is
    exactly equivalent: hits produce no observable query anywhere.
    """
    if ttl <= 0 or len(times) <= 1:
        return times
    times = np.sort(times)
    kept = [times[0]]
    horizon = times[0] + ttl
    for t in times[1:]:
        if t >= horizon:
            kept.append(t)
            horizon = t + ttl
    return np.asarray(kept)


def _attempt_times(
    profile: ClassProfile,
    n_queriers: int,
    start: float,
    end: float,
    ptr_spec: PtrRecordSpec,
    rng: np.random.Generator,
    attempts_scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-querier lookup-attempt times for the whole campaign.

    ``attempts_mean`` is calibrated as attempts per querier over a 2-day
    (DITL-length) window, matching Table II's queries/querier; continuous
    classes scale it by campaign duration, burst/sweep classes interpret
    it per touch (one activation plus short-scale retries).
    """
    duration = end - start
    duration_days = duration / SECONDS_PER_DAY
    mode = profile.temporal_mode
    attempts_mean = profile.attempts_mean * attempts_scale
    if mode is TemporalMode.CONTINUOUS:
        rate_per_day = attempts_mean / 2.0
        counts = np.maximum(
            1, rng.poisson(max(rate_per_day * duration_days, 0.05), size=n_queriers)
        )
        activation = np.full(n_queriers, start)
    else:
        extra = max(attempts_mean - 1.0, 0.0)
        counts = 1 + rng.poisson(extra, size=n_queriers)
        if mode is TemporalMode.BURST:
            burst_window = min(duration, max(duration * 0.25, 2 * 3600.0))
            activation = start + rng.uniform(0.0, burst_window, size=n_queriers)
        else:  # SWEEP
            activation = start + rng.uniform(0.0, duration, size=n_queriers)
    effective_ttl = _effective_ptr_ttl(ptr_spec)
    times: list[np.ndarray] = []
    owners: list[np.ndarray] = []
    for i in range(n_queriers):
        n = int(counts[i])
        if mode is TemporalMode.CONTINUOUS:
            attempt = start + rng.uniform(0.0, duration, size=n)
        else:
            # First attempt at activation; repeats spread over the hours
            # after it (mail delivery retries, log-viewing re-resolution,
            # second filtering passes), exponential with a 4-hour scale.
            repeats = activation[i] + rng.exponential(14400.0, size=n - 1)
            attempt = np.concatenate([[activation[i]], repeats])
        attempt = np.clip(attempt, start, end - 1e-3)
        if profile.diurnal.strength > 0.0:
            kept = profile.diurnal.thin(attempt, rng)
            # Never lose the querier entirely: keep at least one attempt.
            attempt = kept if len(kept) else attempt[:1]
        attempt = _dedup_by_ttl(attempt, effective_ttl)
        times.append(attempt)
        owners.append(np.full(len(attempt), i, dtype=int))
    return np.concatenate(times), np.concatenate(owners)


def build_campaign(
    world: World,
    app_class: str,
    rng: np.random.Generator,
    start: float,
    duration_days: float | None = None,
    audience_size: int | None = None,
    variant: str | None = None,
    team_block: Prefix | None = None,
    originator: int | None = None,
    home_country: str | None = None,
    ptr_spec: PtrRecordSpec | None = None,
) -> Campaign:
    """Materialize one campaign of *app_class* beginning at *start*.

    Everything not supplied is drawn from the class profile: duration
    (exponential around the profile mean), audience size (lognormal,
    clipped to both the profile cap and 40% of the world's queriers),
    home country, originator placement, and the PTR record.
    """
    profile = PROFILES.get(app_class)
    if profile is None:
        raise ValueError(f"unknown application class {app_class!r}")
    if app_class == "scan" and variant == "icmp":
        # Appendix C: the research ICMP scanner (adaptive outage
        # detection) adapts its probing to address-space usage, so its
        # backscatter swings strongly with the day — unlike other
        # scanning (Fig 16 shows 0-700 querier swings for scan-icmp).
        from dataclasses import replace as _replace

        from repro.activity.diurnal import DiurnalPattern

        profile = _replace(
            profile, diurnal=DiurnalPattern(strength=0.85, peak_hour=22.0)
        )
    if duration_days is None:
        duration_days = max(
            0.05, float(rng.exponential(profile.duration_days_mean))
        )
    end = start + duration_days * SECONDS_PER_DAY

    if home_country is None:
        if profile.originator_countries:
            home_country = profile.originator_countries[
                int(rng.integers(len(profile.originator_countries)))
            ]
        else:
            codes = sorted(world.geo.countries)
            weights = np.array(
                [world.geo.countries[c].weight for c in codes], dtype=float
            )
            home_country = codes[int(rng.choice(len(codes), p=weights / weights.sum()))]

    if originator is None:
        if team_block is not None:
            originator = world.allocate_in_block(rng, team_block)
        else:
            routed = rng.random() < profile.originator_routed_probability
            if routed:
                kind = profile.originator_kinds[
                    int(rng.integers(len(profile.originator_kinds)))
                ]
                originator = allocate_routed_originator(
                    world, rng, home_country, kind
                )
            else:
                originator = world.allocate_originator(
                    rng, country=home_country, routed=False
                )

    if audience_size is None:
        drawn = rng.lognormal(profile.audience_logmu, profile.audience_logsigma)
        cap = min(profile.audience_max, int(0.4 * len(world.queriers)))
        audience_size = int(np.clip(drawn, 20, max(21, cap)))

    # Per-campaign behavioural jitter: real activities of one class vary
    # in rate and in geographic concentration; without this the dynamic
    # features separate classes far more cleanly than the paper's data.
    bias = float(np.clip(profile.home_country_bias + rng.normal(0.0, 0.15), 0.0, 0.95))
    audience = world.sample_queriers(
        rng,
        audience_size,
        _jitter_role_weights(profile.role_weights, profile.mix_concentration, rng),
        country_weights=_country_weights(world, home_country, bias),
    )
    audience = _boost_nameless(world, audience, profile.nameless_boost, rng)
    if not audience:
        raise RuntimeError("audience sampling produced no queriers")

    if app_class == "scan" and variant is None:
        variant = SCAN_VARIANTS[int(rng.integers(len(SCAN_VARIANTS)))]

    campaign = Campaign(
        originator=originator,
        app_class=app_class,
        start=start,
        end=end,
        audience=tuple(audience),
        ptr_spec=ptr_spec if ptr_spec is not None else _sample_ptr_spec(profile, rng),
        home_country=home_country,
        variant=variant,
        targeted=bool(app_class == "scan" and rng.random() < 0.2),
        team_block=team_block,
    )
    times, owners = _attempt_times(
        profile,
        len(audience),
        start,
        campaign.end,
        campaign.ptr_spec,
        rng,
        attempts_scale=float(rng.lognormal(0.0, 0.4)),
    )
    campaign.set_events(times, owners)
    return campaign
