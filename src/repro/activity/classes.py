"""The twelve application-class workload profiles (§ III-D).

Each profile encodes the *causal story* the paper tells for one class of
network-wide activity: which querier roles its targets induce (Fig 3),
how geographically spread those queriers are (Table II's entropies),
how large its audience footprint is and how it is shaped in time
(Fig 9, Fig 10, Appendix C), and what the originator's own reverse record
looks like (Tables VII/VIII: TTLs, nxdomain, unreachable zones).

These parameters were tuned against the paper's case studies; they are
data, not code — adjusting a profile reshapes the synthetic world without
touching the sensor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.activity.diurnal import BUSINESS_HOURS, EVENING, FLAT, DiurnalPattern
from repro.netmodel.asn import ASKind
from repro.netmodel.namespace import QuerierRole

__all__ = [
    "APPLICATION_CLASSES",
    "MALICIOUS_CLASSES",
    "BENIGN_CLASSES",
    "TemporalMode",
    "PtrProfile",
    "ClassProfile",
    "PROFILES",
    "SCAN_VARIANTS",
]

#: Canonical class names, in the paper's (alphabetical) order.
APPLICATION_CLASSES: tuple[str, ...] = (
    "ad-tracker",
    "cdn",
    "cloud",
    "crawler",
    "dns",
    "mail",
    "ntp",
    "p2p",
    "push",
    "scan",
    "spam",
    "update",
)

#: § V's split: classes whose adversarial nature forces rapid churn.
MALICIOUS_CLASSES: frozenset[str] = frozenset({"scan", "spam"})
BENIGN_CLASSES: frozenset[str] = frozenset(APPLICATION_CLASSES) - MALICIOUS_CLASSES


class TemporalMode(enum.Enum):
    """How a campaign's lookups are spread over its lifetime."""

    BURST = "burst"
    """Everything in a short window at the start (a mailing-list sendout)."""
    SWEEP = "sweep"
    """Each querier first touched at a uniform time (a scanner walking space)."""
    CONTINUOUS = "continuous"
    """Steady activity across the whole campaign (CDN, trackers, push)."""


@dataclass(frozen=True, slots=True)
class PtrProfile:
    """Distribution of the originator's own reverse-DNS record."""

    ttl_choices: tuple[float, ...] = (3600.0,)
    ttl_weights: tuple[float, ...] = (1.0,)
    has_name_probability: float = 0.9
    reachable_probability: float = 0.98
    negative_ttl_choices: tuple[float, ...] = (600.0, 900.0, 3600.0)


@dataclass(frozen=True, slots=True)
class ClassProfile:
    """Full generative description of one application class."""

    name: str
    role_weights: dict[QuerierRole, float]
    nameless_boost: float = 0.0
    """Extra probability of drawing a reverse-nameless querier (scanning
    sweeps unmanaged space; mailing lists touch well-named mail hosts)."""
    home_country_bias: float = 0.0
    """0 = fully global audience; near 1 = concentrated on the
    originator's home country (drives Table II's global entropy)."""
    audience_logmu: float = 5.0
    audience_logsigma: float = 0.8
    audience_max: int = 6000
    attempts_mean: float = 2.0
    """Mean PTR lookup attempts per querier over the campaign (pre-cache)."""
    mix_concentration: float = 10.0
    """Dirichlet concentration for per-campaign role-mix jitter: each
    campaign draws its own querier-role mix around ``role_weights``.
    Lower values mean noisier, more overlapping classes — this is the
    main knob behind the paper's "classification ... is not easy"
    (Table III's 0.7–0.8, not 0.95)."""
    temporal_mode: TemporalMode = TemporalMode.CONTINUOUS
    diurnal: DiurnalPattern = FLAT
    duration_days_mean: float = 2.0
    originator_kinds: tuple[ASKind, ...] = (ASKind.HOSTING,)
    originator_routed_probability: float = 1.0
    originator_countries: tuple[str, ...] | None = None
    """Restrict where originators live (None = weight by country size)."""
    ptr: PtrProfile = field(default_factory=PtrProfile)
    team_probability: float = 0.0
    """Chance a campaign is born inside a coordinated /24 team (§ VI-B)."""


_H = QuerierRole.HOME
_M = QuerierRole.MAIL
_N = QuerierRole.NS
_F = QuerierRole.FIREWALL
_A = QuerierRole.ANTISPAM
_W = QuerierRole.WWW
_T = QuerierRole.NTP
_C = QuerierRole.CDN
_AW = QuerierRole.AWS
_MS = QuerierRole.MS
_G = QuerierRole.GOOGLE
_O = QuerierRole.OTHER


PROFILES: dict[str, ClassProfile] = {
    # Trackers are queried by end users' shared resolvers world-wide; a
    # handful of companies produce very large footprints (top-100 heavy).
    "ad-tracker": ClassProfile(
        name="ad-tracker",
        role_weights={_N: 0.42, _H: 0.18, _O: 0.22, _F: 0.08, _M: 0.06, _W: 0.04},
        home_country_bias=0.25,
        audience_logmu=6.75,
        audience_logsigma=0.5,
        attempts_mean=2.3,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=EVENING,
        duration_days_mean=30.0,
        originator_kinds=(ASKind.HOSTING, ASKind.CLOUD),
        ptr=PtrProfile(
            ttl_choices=(600.0, 900.0, 2580.0),
            ttl_weights=(0.4, 0.3, 0.3),
            has_name_probability=0.75,
        ),
    ),
    # CDN nodes serve mostly home eyeballs near them: home-heavy querier
    # mix (Fig 3) and low global entropy (Table II), short record TTLs.
    "cdn": ClassProfile(
        name="cdn",
        role_weights={_H: 0.50, _N: 0.20, _O: 0.16, _F: 0.08, _M: 0.03, _W: 0.03},
        home_country_bias=0.75,
        audience_logmu=6.6,
        audience_logsigma=0.7,
        attempts_mean=4.4,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=EVENING,
        duration_days_mean=45.0,
        originator_kinds=(ASKind.CLOUD,),
        ptr=PtrProfile(
            ttl_choices=(60.0, 300.0, 600.0),
            ttl_weights=(0.3, 0.4, 0.3),
            has_name_probability=0.6,
            reachable_probability=0.7,
        ),
    ),
    # Cloud front ends (maps, drive, dropbox): big, global, stable.
    "cloud": ClassProfile(
        name="cloud",
        role_weights={_N: 0.35, _H: 0.18, _O: 0.22, _F: 0.12, _M: 0.05, _AW: 0.04, _MS: 0.02, _G: 0.02},
        home_country_bias=0.2,
        audience_logmu=6.65,
        audience_logsigma=0.5,
        attempts_mean=2.8,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=EVENING,
        duration_days_mean=60.0,
        originator_kinds=(ASKind.CLOUD,),
        originator_countries=("us", "de", "jp"),
        ptr=PtrProfile(ttl_choices=(3600.0, 10800.0), ttl_weights=(0.6, 0.4)),
    ),
    # Crawlers run many parallel worker IPs: per-originator footprints are
    # small (top-10000 only, Fig 10c), hitting web servers and firewalls.
    "crawler": ClassProfile(
        name="crawler",
        role_weights={_N: 0.28, _F: 0.20, _W: 0.16, _O: 0.24, _H: 0.08, _M: 0.04},
        home_country_bias=0.1,
        audience_logmu=4.0,
        audience_logsigma=0.5,
        audience_max=400,
        attempts_mean=1.8,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=FLAT,
        duration_days_mean=30.0,
        originator_kinds=(ASKind.CLOUD, ASKind.HOSTING),
        ptr=PtrProfile(ttl_choices=(3600.0, 86400.0), ttl_weights=(0.5, 0.5)),
    ),
    # Large DNS servers (public resolvers, TLD servers) touched by many.
    "dns": ClassProfile(
        name="dns",
        role_weights={_N: 0.48, _O: 0.26, _F: 0.12, _M: 0.08, _H: 0.06},
        home_country_bias=0.15,
        audience_logmu=5.4,
        audience_logsigma=0.6,
        attempts_mean=2.5,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=FLAT,
        duration_days_mean=60.0,
        originator_kinds=(ASKind.ISP, ASKind.CLOUD),
        ptr=PtrProfile(ttl_choices=(86400.0,), ttl_weights=(1.0,), has_name_probability=0.98),
    ),
    # Legitimate mass mail: mail-server-heavy queriers, one lookup per
    # message burst, business-hours diurnal, regionally concentrated.
    "mail": ClassProfile(
        name="mail",
        role_weights={_M: 0.58, _N: 0.17, _A: 0.01, _F: 0.06, _H: 0.06, _O: 0.12},
        home_country_bias=0.6,
        audience_logmu=5.8,
        audience_logsigma=0.7,
        attempts_mean=1.7,
        temporal_mode=TemporalMode.BURST,
        diurnal=BUSINESS_HOURS,
        duration_days_mean=1.0,
        originator_kinds=(ASKind.HOSTING, ASKind.ENTERPRISE),
        ptr=PtrProfile(
            ttl_choices=(3600.0, 43200.0, 86400.0),
            ttl_weights=(0.3, 0.3, 0.4),
            has_name_probability=0.97,
        ),
    ),
    # Public NTP servers: small steady audiences of infrastructure.
    "ntp": ClassProfile(
        name="ntp",
        role_weights={_N: 0.30, _F: 0.24, _O: 0.28, _T: 0.10, _H: 0.08},
        home_country_bias=0.3,
        audience_logmu=4.6,
        audience_logsigma=0.5,
        audience_max=800,
        attempts_mean=2.2,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=FLAT,
        duration_days_mean=90.0,
        originator_kinds=(ASKind.UNIVERSITY, ASKind.ISP),
        ptr=PtrProfile(ttl_choices=(86400.0,), ttl_weights=(1.0,), has_name_probability=0.98),
    ),
    # Misbehaving peer-to-peer clients: home machines probing dynamic
    # ports, partly into dark space (§ IV-C notes darknet hits).
    "p2p": ClassProfile(
        name="p2p",
        role_weights={_H: 0.38, _N: 0.30, _O: 0.18, _F: 0.10, _M: 0.04},
        nameless_boost=0.10,
        home_country_bias=0.45,
        audience_logmu=5.3,
        audience_logsigma=0.7,
        attempts_mean=3.0,
        temporal_mode=TemporalMode.SWEEP,
        diurnal=EVENING,
        duration_days_mean=4.0,
        originator_kinds=(ASKind.ISP, ASKind.MOBILE),
        ptr=PtrProfile(
            ttl_choices=(3600.0, 86400.0),
            ttl_weights=(0.5, 0.5),
            has_name_probability=0.8,
        ),
    ),
    # Mobile push gateways (TCP 5223): carrier resolvers and firewalls.
    "push": ClassProfile(
        name="push",
        role_weights={_N: 0.44, _F: 0.22, _O: 0.20, _H: 0.10, _M: 0.04},
        home_country_bias=0.2,
        audience_logmu=5.7,
        audience_logsigma=0.5,
        attempts_mean=2.6,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=EVENING,
        duration_days_mean=60.0,
        originator_kinds=(ASKind.CLOUD,),
        originator_countries=("us",),
        ptr=PtrProfile(ttl_choices=(3600.0,), ttl_weights=(1.0,)),
    ),
    # Scanners walk address space: shared resolvers, home space, heavy
    # nxdomain, global spread, and often unrouted/unnamed originators.
    "scan": ClassProfile(
        name="scan",
        role_weights={_N: 0.34, _H: 0.22, _F: 0.12, _O: 0.20, _W: 0.04, _M: 0.08},
        nameless_boost=0.12,
        home_country_bias=0.0,
        audience_logmu=5.6,
        audience_logsigma=1.1,
        attempts_mean=3.5,
        temporal_mode=TemporalMode.SWEEP,
        diurnal=FLAT,
        duration_days_mean=7.0,
        originator_kinds=(ASKind.HOSTING, ASKind.CLOUD, ASKind.ISP),
        originator_routed_probability=0.7,
        ptr=PtrProfile(
            ttl_choices=(0.0, 3600.0, 86400.0, 172800.0),
            ttl_weights=(0.1, 0.3, 0.4, 0.2),
            has_name_probability=0.5,
            reachable_probability=0.6,
        ),
        team_probability=0.25,
    ),
    # Spam: mail/antispam-heavy queriers like legitimate mail, but more
    # attempts (retries + filters), global spread, home-named or nameless
    # originators, and the biggest footprints at the JP vantage (Fig 10a).
    "spam": ClassProfile(
        name="spam",
        role_weights={_M: 0.49, _A: 0.02, _N: 0.16, _H: 0.10, _F: 0.06, _O: 0.17},
        nameless_boost=0.03,
        home_country_bias=0.1,
        audience_logmu=6.1,
        audience_logsigma=1.15,
        attempts_mean=3.4,
        temporal_mode=TemporalMode.SWEEP,
        diurnal=FLAT,
        duration_days_mean=3.0,
        originator_kinds=(ASKind.ISP, ASKind.MOBILE, ASKind.HOSTING),
        originator_routed_probability=0.9,
        ptr=PtrProfile(
            ttl_choices=(600.0, 3600.0, 28800.0, 86400.0),
            ttl_weights=(0.15, 0.25, 0.3, 0.3),
            has_name_probability=0.7,
            reachable_probability=0.9,
        ),
    ),
    # Vendor software-update services (Sony/Ricoh/Epson in JP): clients
    # check back on a timer; a rare class (6 labeled examples in JP-ditl).
    "update": ClassProfile(
        name="update",
        role_weights={_H: 0.30, _N: 0.30, _F: 0.14, _O: 0.22, _M: 0.04},
        home_country_bias=0.8,
        audience_logmu=5.5,
        audience_logsigma=0.4,
        attempts_mean=2.4,
        temporal_mode=TemporalMode.CONTINUOUS,
        diurnal=EVENING,
        duration_days_mean=60.0,
        originator_kinds=(ASKind.ENTERPRISE,),
        originator_countries=("jp",),
        ptr=PtrProfile(
            ttl_choices=(86400.0,),
            ttl_weights=(1.0,),
            has_name_probability=0.9,
            reachable_probability=0.8,
        ),
    ),
}

#: Port/protocol variants for the scan class, used by the darknet ground
#: truth and the Fig 13 longitudinal examples.
SCAN_VARIANTS: tuple[str, ...] = (
    "icmp",
    "tcp22",
    "tcp23",
    "tcp80",
    "tcp443",
    "udp53",
    "udp123",
    "multi",
)

if set(PROFILES) != set(APPLICATION_CLASSES):  # pragma: no cover - import guard
    raise AssertionError("PROFILES out of sync with APPLICATION_CLASSES")
