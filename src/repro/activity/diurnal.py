"""Diurnal modulation of activity.

Appendix C of the paper shows strongly diurnal querier counts for
scan-icmp (adaptive probing), ad-tracker, cdn, and mail (a newspaper's
business-hours mass mailing), and flat profiles for scan-ssh and spam.
We model this with a smooth 24-hour weight curve: a raised cosine with a
configurable peak hour and strength, used for thinning event times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiurnalPattern", "FLAT", "BUSINESS_HOURS", "EVENING", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True, slots=True)
class DiurnalPattern:
    """A 24-hour activity weight in [1 - strength, 1], peaking at peak_hour.

    ``strength`` 0 is flat; 1 means activity fully stops at the trough.
    ``peak_hour`` is in local time of the activity's audience; the
    simulation clock is UTC, so a timezone offset is folded in here.
    """

    strength: float = 0.0
    peak_hour: float = 14.0
    timezone_offset_hours: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError("strength must be in [0, 1]")

    def weight(self, t: float) -> float:
        """Acceptance weight at simulation time *t* (seconds)."""
        if self.strength == 0.0:
            return 1.0
        hour = ((t / 3600.0) + self.timezone_offset_hours) % 24.0
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * np.pi
        # Raised cosine: 1 at the peak, 1 - strength at the trough.
        return 1.0 - self.strength * (1.0 - np.cos(phase)) / 2.0

    def weights(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`weight`."""
        if self.strength == 0.0:
            return np.ones_like(times, dtype=float)
        hours = ((times / 3600.0) + self.timezone_offset_hours) % 24.0
        phase = (hours - self.peak_hour) / 24.0 * 2.0 * np.pi
        return 1.0 - self.strength * (1.0 - np.cos(phase)) / 2.0

    def thin(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Keep each time with probability equal to its weight."""
        if self.strength == 0.0:
            return times
        keep = rng.random(len(times)) < self.weights(times)
        return times[keep]


FLAT = DiurnalPattern(strength=0.0)
BUSINESS_HOURS = DiurnalPattern(strength=0.8, peak_hour=11.0)
EVENING = DiurnalPattern(strength=0.6, peak_hour=20.0)
