"""Event-driven simulation engine.

Collects lookup attempts from all campaigns, merges them in time order,
and drives them through the DNS hierarchy.  Chronological processing
matters: resolver caches are stateful, and the attenuation each authority
sees is a function of *when* each lookup arrives relative to cache expiry.

Processing is chunked (default one day) so month-scale simulations never
hold more than a day of events in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.base import Campaign
from repro.dnssim.hierarchy import DnsHierarchy
from repro.netmodel.world import World

__all__ = ["EngineStats", "SimulationEngine"]


@dataclass(slots=True)
class EngineStats:
    """What the engine pushed through the hierarchy."""

    campaigns: int = 0
    lookup_attempts: int = 0
    chunks: int = 0


class SimulationEngine:
    """Runs campaigns against a hierarchy, in strict time order."""

    def __init__(self, world: World, hierarchy: DnsHierarchy) -> None:
        self.world = world
        self.hierarchy = hierarchy
        self.campaigns: list[Campaign] = []
        self.stats = EngineStats()

    def add(self, campaign: Campaign) -> Campaign:
        """Register a campaign: installs its PTR record and queues it."""
        self.hierarchy.register_originator(campaign.originator, campaign.ptr_spec)
        self.campaigns.append(campaign)
        self.stats.campaigns += 1
        return campaign

    def extend(self, campaigns: list[Campaign]) -> None:
        for campaign in campaigns:
            self.add(campaign)

    def run(
        self,
        start: float,
        end: float,
        chunk_seconds: float = 86400.0,
    ) -> EngineStats:
        """Process all campaign lookups with start <= t < end.

        Safe to call repeatedly over consecutive windows; resolver cache
        state carries across calls (that is the point).
        """
        if end <= start:
            raise ValueError("end must be after start")
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        observable = self.hierarchy.observable
        window_start = start
        while window_start < end:
            window_end = min(window_start + chunk_seconds, end)
            events: list[tuple[float, object, Campaign]] = []
            for campaign in self.campaigns:
                if not campaign.active_during(window_start, window_end):
                    continue
                for when, querier in campaign.events_in(window_start, window_end):
                    # Lookups that cannot reach any attached sensor are
                    # skipped — exact, see DnsHierarchy.observable.
                    if observable(querier):
                        events.append((when, querier, campaign))
            events.sort(key=lambda item: (item[0], item[1].addr, item[2].originator))
            for when, querier, campaign in events:
                self.hierarchy.resolve_ptr(querier, campaign.originator, when)
                self.stats.lookup_attempts += 1
            self.stats.chunks += 1
            window_start = window_end
        return self.stats

    def drop_finished(self, before: float) -> int:
        """Forget campaigns that ended before *before*; returns count dropped."""
        keep = [c for c in self.campaigns if c.end >= before]
        dropped = len(self.campaigns) - len(keep)
        self.campaigns = keep
        return dropped
