"""Originator activity workloads: class profiles, campaigns, scenarios.

The generative side of the reproduction: every network-wide activity the
paper classifies (§ III-D's twelve classes) is modeled here as a campaign
whose targets induce PTR lookups from queriers.
"""

from repro.activity.base import Campaign, build_campaign
from repro.activity.classes import (
    APPLICATION_CLASSES,
    BENIGN_CLASSES,
    MALICIOUS_CLASSES,
    PROFILES,
    SCAN_VARIANTS,
    ClassProfile,
    PtrProfile,
    TemporalMode,
)
from repro.activity.diurnal import (
    BUSINESS_HOURS,
    EVENING,
    FLAT,
    SECONDS_PER_DAY,
    DiurnalPattern,
)
from repro.activity.engine import EngineStats, SimulationEngine
from repro.activity.scenario import (
    LIFETIME_DAYS_MEAN,
    Actor,
    Scenario,
    ScenarioConfig,
    build_scenario,
)

__all__ = [
    "Campaign",
    "build_campaign",
    "APPLICATION_CLASSES",
    "BENIGN_CLASSES",
    "MALICIOUS_CLASSES",
    "PROFILES",
    "SCAN_VARIANTS",
    "ClassProfile",
    "PtrProfile",
    "TemporalMode",
    "BUSINESS_HOURS",
    "EVENING",
    "FLAT",
    "SECONDS_PER_DAY",
    "DiurnalPattern",
    "EngineStats",
    "SimulationEngine",
    "LIFETIME_DAYS_MEAN",
    "Actor",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
