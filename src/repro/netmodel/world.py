"""The synthetic Internet: countries, ASes, and the querier population.

This is the substrate substituting for the real Internet behind the paper's
authoritative-DNS vantage points.  A :class:`World` owns:

* a :class:`~repro.netmodel.geography.GeoRegistry` (countries and /8s),
* an :class:`~repro.netmodel.asn.ASRegistry` (ASes owning /16s),
* a population of :class:`Querier` machines with reverse names following
  real naming conventions, each attached to an AS and country,
* address-allocation helpers for placing *originators* (the hosts whose
  network-wide activity the sensor classifies).

Queriers are the machines that perform reverse-DNS lookups when an
originator touches targets near them: firewalls, mail servers, shared
recursive resolvers, home CPE, and so on (§ II of the paper).  The paper
reports 14–19% of queriers have no reverse name; we model that with a
``name_status`` of ``NXDOMAIN`` (no PTR record) or ``UNREACH`` (the
querier's own reverse zone is unreachable / lame).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.netmodel.addressing import Prefix, slash24
from repro.netmodel.asn import ASKind, ASRegistry, AutonomousSystem, build_as_registry
from repro.netmodel.geography import (
    DEFAULT_COUNTRIES,
    Country,
    GeoRegistry,
    build_geo_registry,
)
from repro.netmodel.namespace import NameSynthesizer, QuerierRole

__all__ = ["NameStatus", "Querier", "WorldConfig", "World"]


class NameStatus(enum.Enum):
    """Whether a querier's reverse name resolves."""

    OK = "ok"
    NXDOMAIN = "nxdomain"
    UNREACH = "unreach"


@dataclass(frozen=True, slots=True)
class Querier:
    """One machine that issues PTR queries on behalf of targets."""

    addr: int
    role: QuerierRole
    asn: int
    country: str
    name: str | None
    name_status: NameStatus
    shared: bool
    """True for shared recursive resolvers serving many targets."""


# Querier population template per AS kind: role -> mean count.  Counts are
# scaled by WorldConfig.scale and drawn from a Poisson around the mean, with
# at least the floor for structural roles (every ISP has a resolver).
_POPULATION: dict[ASKind, dict[QuerierRole, float]] = {
    ASKind.ISP: {
        QuerierRole.NS: 2.0,
        QuerierRole.HOME: 24.0,
        QuerierRole.MAIL: 2.0,
        QuerierRole.FIREWALL: 1.5,
        QuerierRole.WWW: 1.0,
        QuerierRole.NTP: 0.3,
        QuerierRole.OTHER: 3.0,
    },
    ASKind.MOBILE: {
        QuerierRole.NS: 3.0,
        QuerierRole.HOME: 10.0,
        QuerierRole.OTHER: 2.0,
    },
    ASKind.HOSTING: {
        QuerierRole.NS: 1.0,
        QuerierRole.MAIL: 3.0,
        QuerierRole.FIREWALL: 2.0,
        QuerierRole.WWW: 3.0,
        QuerierRole.ANTISPAM: 0.5,
        QuerierRole.OTHER: 8.0,
    },
    ASKind.ENTERPRISE: {
        QuerierRole.NS: 1.0,
        QuerierRole.MAIL: 2.0,
        QuerierRole.FIREWALL: 2.5,
        QuerierRole.ANTISPAM: 1.0,
        QuerierRole.WWW: 1.0,
        QuerierRole.OTHER: 4.0,
    },
    ASKind.UNIVERSITY: {
        QuerierRole.NS: 2.0,
        QuerierRole.MAIL: 2.0,
        QuerierRole.FIREWALL: 1.5,
        QuerierRole.NTP: 1.0,
        QuerierRole.WWW: 2.0,
        QuerierRole.OTHER: 4.0,
    },
    ASKind.CLOUD: {
        QuerierRole.CDN: 4.0,
        QuerierRole.AWS: 3.0,
        QuerierRole.MS: 2.0,
        QuerierRole.GOOGLE: 2.0,
        QuerierRole.NS: 1.0,
        QuerierRole.MAIL: 1.0,
        QuerierRole.OTHER: 4.0,
    },
}

_SHARED_ROLES = frozenset({QuerierRole.NS})


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Knobs for world construction; defaults give ~15k queriers."""

    seed: int = 20150415
    countries: tuple[Country, ...] = DEFAULT_COUNTRIES
    total_slash8: int = 180
    ases_per_block: float = 3.0
    scale: float = 1.0
    """Multiplies querier counts per AS; <1 for fast tests, >1 for big runs."""
    nxdomain_fraction: float = 0.12
    unreach_fraction: float = 0.05
    """Together ≈ the paper's 14–19% of queriers without usable reverse names."""


class World:
    """Builds and indexes the full synthetic population.

    Construction is deterministic in ``config.seed``.  All sampling helpers
    take an explicit ``rng`` so that activity generation composes its own
    reproducible stream without disturbing the world's.
    """

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.geo: GeoRegistry = build_geo_registry(
            self.config.countries, self.config.total_slash8
        )
        self.asns: ASRegistry = build_as_registry(
            self.geo, self._rng, self.config.ases_per_block
        )
        self.namer = NameSynthesizer(self._rng)
        self.queriers: list[Querier] = []
        self._by_role: dict[QuerierRole, list[int]] = {r: [] for r in QuerierRole}
        self._by_country: dict[str, list[int]] = {}
        self._by_asn: dict[int, list[int]] = {}
        self._shared_by_asn: dict[int, list[int]] = {}
        self._used_addrs: set[int] = set()
        self._originator_cursor: dict[int, int] = {}
        self._infra_blocks: dict[int, list[int]] = {}
        self._populate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _populate(self) -> None:
        rng = self._rng
        cfg = self.config
        for asystem in sorted(self.asns, key=lambda a: a.asn):
            template = _POPULATION[asystem.kind]
            for role, mean in template.items():
                count = int(rng.poisson(mean * cfg.scale))
                if role in _SHARED_ROLES and mean >= 1.0:
                    count = max(count, 1)
                for _ in range(count):
                    addr = self._fresh_addr(asystem, rng)
                    if addr is None:
                        break
                    self._add_querier(asystem, role, addr, rng)

    def _infrastructure_blocks(
        self, asystem: AutonomousSystem, rng: np.random.Generator
    ) -> list[int]:
        """The handful of /24s an AS concentrates its machines in.

        Real ASes put resolvers, mail relays, and CPE pools in a few
        subnets rather than scattering them across their space; this
        clustering is what keeps the sensor's /24 local entropy just
        below 1 (Table II's 0.92-0.97)."""
        blocks = self._infra_blocks.get(asystem.asn)
        if blocks is None:
            count = 3 + int(rng.integers(6))
            blocks = []
            for _ in range(count):
                prefix = asystem.prefixes[int(rng.integers(len(asystem.prefixes)))]
                blocks.append(prefix.network | (int(rng.integers(256)) << 8))
            self._infra_blocks[asystem.asn] = blocks
        return blocks

    def _fresh_addr(
        self, asystem: AutonomousSystem, rng: np.random.Generator
    ) -> int | None:
        """An unused address inside one of the AS's infrastructure /24s,
        spilling into the full prefixes when those fill up."""
        blocks = self._infrastructure_blocks(asystem, rng)
        for _ in range(32):
            base = blocks[int(rng.integers(len(blocks)))]
            addr = base | int(rng.integers(256))
            if addr not in self._used_addrs:
                self._used_addrs.add(addr)
                return addr
        for _ in range(64):
            prefix = asystem.prefixes[int(rng.integers(len(asystem.prefixes)))]
            addr = prefix.nth(int(rng.integers(prefix.size)))
            if addr not in self._used_addrs:
                self._used_addrs.add(addr)
                return addr
        return None

    def _add_querier(
        self,
        asystem: AutonomousSystem,
        role: QuerierRole,
        addr: int,
        rng: np.random.Generator,
    ) -> None:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.nxdomain_fraction:
            status, name = NameStatus.NXDOMAIN, None
        elif roll < cfg.nxdomain_fraction + cfg.unreach_fraction:
            status, name = NameStatus.UNREACH, None
        else:
            status = NameStatus.OK
            name = self.namer.name_for(role, addr, asystem)
        querier = Querier(
            addr=addr,
            role=role,
            asn=asystem.asn,
            country=asystem.country,
            name=name,
            name_status=status,
            shared=role in _SHARED_ROLES,
        )
        index = len(self.queriers)
        self.queriers.append(querier)
        self._by_role[role].append(index)
        self._by_country.setdefault(asystem.country, []).append(index)
        self._by_asn.setdefault(asystem.asn, []).append(index)
        if querier.shared:
            self._shared_by_asn.setdefault(asystem.asn, []).append(index)

    # ------------------------------------------------------------------
    # lookups (the simulator's whois + GeoIP)
    # ------------------------------------------------------------------

    def country_of(self, addr: int) -> str | None:
        return self.geo.country_of(addr)

    def asn_of(self, addr: int) -> int | None:
        return self.asns.asn_of(addr)

    # ------------------------------------------------------------------
    # sampling helpers used by activity models
    # ------------------------------------------------------------------

    def indices_for_role(self, role: QuerierRole) -> list[int]:
        return self._by_role[role]

    def nameless_indices(self) -> list[int]:
        """Queriers without a usable reverse name (NXDOMAIN or UNREACH).

        Activities that touch unmanaged space (scanning, misbehaving p2p)
        draw extra queriers from this pool; computed lazily and cached.
        """
        cached = getattr(self, "_nameless_cache", None)
        if cached is None:
            cached = [
                i for i, q in enumerate(self.queriers) if q.name_status is not NameStatus.OK
            ]
            self._nameless_cache = cached
        return cached

    def indices_for_country(self, code: str) -> list[int]:
        return self._by_country.get(code, [])

    def shared_resolver_of(self, asn: int) -> Querier | None:
        """The AS's shared recursive resolver, if it has one."""
        indices = self._shared_by_asn.get(asn)
        if not indices:
            return None
        return self.queriers[indices[0]]

    def sample_queriers(
        self,
        rng: np.random.Generator,
        count: int,
        role_weights: dict[QuerierRole, float],
        country_weights: dict[str, float] | None = None,
    ) -> list[Querier]:
        """Sample *count* distinct queriers with the given role mix.

        ``role_weights`` need not be normalized.  When ``country_weights``
        is given, candidates are first restricted per-country, giving
        geographically concentrated activities (a Japanese mailing list, a
        China-serving CDN) their low global entropy.  Sampling is without
        replacement; if a bucket is exhausted the remainder spills into the
        global pool for that role.
        """
        roles = [r for r, w in role_weights.items() if w > 0]
        weights = np.array([role_weights[r] for r in roles], dtype=float)
        weights = weights / weights.sum()
        chosen: list[Querier] = []
        seen: set[int] = set()
        role_draws = rng.choice(len(roles), size=count, p=weights)
        for role_idx in role_draws:
            role = roles[int(role_idx)]
            pool = self._role_pool(role, country_weights, rng)
            picked = self._pick_unseen(pool, seen, rng)
            if picked is None:
                picked = self._pick_unseen(self._by_role[role], seen, rng)
            if picked is None:
                continue
            seen.add(picked)
            chosen.append(self.queriers[picked])
        return chosen

    def _role_pool(
        self,
        role: QuerierRole,
        country_weights: dict[str, float] | None,
        rng: np.random.Generator,
    ) -> list[int]:
        if not country_weights:
            return self._by_role[role]
        codes = list(country_weights)
        probs = np.array([country_weights[c] for c in codes], dtype=float)
        probs = probs / probs.sum()
        code = codes[int(rng.choice(len(codes), p=probs))]
        pool = [
            i for i in self._by_country.get(code, []) if self.queriers[i].role is role
        ]
        return pool or self._by_role[role]

    @staticmethod
    def _pick_unseen(
        pool: list[int], seen: set[int], rng: np.random.Generator
    ) -> int | None:
        if not pool:
            return None
        for _ in range(8):
            candidate = pool[int(rng.integers(len(pool)))]
            if candidate not in seen:
                return candidate
        remaining = [i for i in pool if i not in seen]
        if not remaining:
            return None
        return remaining[int(rng.integers(len(remaining)))]

    # ------------------------------------------------------------------
    # originator address allocation
    # ------------------------------------------------------------------

    def allocate_originator(
        self,
        rng: np.random.Generator,
        country: str | None = None,
        kind: ASKind | None = None,
        routed: bool = True,
    ) -> int:
        """A fresh address for an originator.

        ``routed=False`` allocates from space outside any AS (the paper's
        "unreach" top originators whose reverse zones do not exist).
        """
        if not routed:
            return self._allocate_unrouted(rng, country)
        candidates = list(self.asns)
        if country is not None:
            candidates = [a for a in candidates if a.country == country]
        if kind is not None:
            candidates = [a for a in candidates if a.kind is kind]
        if not candidates:
            raise ValueError(f"no AS matches country={country!r} kind={kind!r}")
        asystem = candidates[int(rng.integers(len(candidates)))]
        addr = self._fresh_addr(asystem, rng)
        if addr is None:
            raise RuntimeError(f"AS {asystem.asn} address space exhausted")
        return addr

    def allocate_team_block(
        self,
        rng: np.random.Generator,
        country: str | None = None,
    ) -> Prefix:
        """A /24 for a coordinated team of originators (§ VI-B, Fig 14)."""
        addr = self.allocate_originator(rng, country=country)
        return Prefix(slash24(addr) << 8, 24)

    def allocate_in_block(self, rng: np.random.Generator, block: Prefix) -> int:
        """A fresh address inside a previously allocated team /24."""
        cursor = self._originator_cursor.get(block.network, 0)
        while cursor < block.size:
            addr = block.nth(cursor)
            cursor += 1
            if addr not in self._used_addrs:
                self._used_addrs.add(addr)
                self._originator_cursor[block.network] = cursor
                return addr
        raise RuntimeError(f"team block {block} exhausted")

    def _allocate_unrouted(self, rng: np.random.Generator, country: str | None) -> int:
        blocks = (
            self.geo.blocks_of(country)
            if country is not None
            else sorted(self.geo.blocks)
        )
        for _ in range(256):
            octet = blocks[int(rng.integers(len(blocks)))]
            addr = (octet << 24) | int(rng.integers(1 << 24))
            if addr not in self._used_addrs and self.asns.asn_of(addr) is None:
                self._used_addrs.add(addr)
                return addr
        raise RuntimeError("could not find unrouted space")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.queriers)

    def summary(self) -> dict[str, int]:
        """Population counts, for documentation and sanity checks."""
        return {
            "countries": len(self.geo.countries),
            "slash8_blocks": self.geo.allocated,
            "ases": len(self.asns),
            "queriers": len(self.queriers),
        }
