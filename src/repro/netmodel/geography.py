"""Countries and geographic /8 allocation.

The paper's *global entropy* dynamic feature works because "/8 prefixes are
assigned geographically" (§ III-C): the Shannon entropy of querier /8s is a
proxy for how globally dispersed an activity's targets are, and the
*unique countries* feature uses a GeoIP database (MaxMind GeoLiteCity in the
paper).  We substitute a synthetic registry: each country owns a disjoint
set of /8 blocks, sized by an Internet-population weight, which doubles as
the GeoIP lookup (address -> country is exact by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.addressing import Prefix, slash8

__all__ = ["Country", "GeoRegistry", "DEFAULT_COUNTRIES", "build_geo_registry"]


@dataclass(frozen=True, slots=True)
class Country:
    """A country with its Internet-size weight and home region."""

    code: str
    name: str
    region: str
    weight: float


#: Synthetic country set spanning the paper's regions of interest.  Weights
#: are rough relative Internet populations; JP and US are deliberately large
#: because the paper's vantage points (JP-DNS, B-Root in the US, M-Root in
#: Asia/NA/Europe) make those populations prominent.
DEFAULT_COUNTRIES: tuple[Country, ...] = (
    Country("us", "United States", "na", 20.0),
    Country("cn", "China", "asia", 18.0),
    Country("jp", "Japan", "asia", 10.0),
    Country("de", "Germany", "eu", 6.0),
    Country("gb", "United Kingdom", "eu", 5.0),
    Country("kr", "South Korea", "asia", 4.0),
    Country("fr", "France", "eu", 4.0),
    Country("br", "Brazil", "sa", 4.0),
    Country("ru", "Russia", "eu", 4.0),
    Country("in", "India", "asia", 4.0),
    Country("ca", "Canada", "na", 3.0),
    Country("it", "Italy", "eu", 2.5),
    Country("nl", "Netherlands", "eu", 2.5),
    Country("au", "Australia", "oc", 2.0),
    Country("es", "Spain", "eu", 2.0),
    Country("tw", "Taiwan", "asia", 2.0),
    Country("se", "Sweden", "eu", 1.5),
    Country("pl", "Poland", "eu", 1.5),
    Country("mx", "Mexico", "na", 1.5),
    Country("id", "Indonesia", "asia", 1.5),
    Country("tr", "Turkey", "eu", 1.0),
    Country("ar", "Argentina", "sa", 1.0),
    Country("za", "South Africa", "africa", 1.0),
    Country("th", "Thailand", "asia", 1.0),
    Country("vn", "Vietnam", "asia", 1.0),
    Country("pk", "Pakistan", "asia", 0.8),
    Country("eg", "Egypt", "africa", 0.8),
    Country("cr", "Costa Rica", "sa", 0.4),
    Country("nz", "New Zealand", "oc", 0.4),
    Country("fi", "Finland", "eu", 0.4),
)


@dataclass(slots=True)
class GeoRegistry:
    """Maps /8 blocks to countries; the simulator's GeoIP database.

    ``blocks[first_octet] -> country code`` for every allocated /8.  Lookups
    for unallocated space return ``None`` (the real GeoLiteCity also has
    gaps, and the sensor treats unknown country as its own bucket).
    """

    countries: dict[str, Country]
    blocks: dict[int, str] = field(default_factory=dict)

    def country_of(self, addr: int) -> str | None:
        """GeoIP lookup: the country code owning *addr*'s /8, or ``None``."""
        return self.blocks.get(slash8(addr))

    def blocks_of(self, code: str) -> list[int]:
        """All first-octets allocated to a country, ascending."""
        return sorted(o for o, c in self.blocks.items() if c == code)

    def prefixes_of(self, code: str) -> list[Prefix]:
        """All /8 prefixes allocated to a country."""
        return [Prefix(octet << 24, 8) for octet in self.blocks_of(code)]

    @property
    def allocated(self) -> int:
        """Number of allocated /8 blocks."""
        return len(self.blocks)


# First octets we never allocate: 0 (this-network), 10 (private),
# 127 (loopback), 224-255 (multicast + reserved).  Mirrors real IANA policy
# closely enough that reverse names for our space look plausible.
_RESERVED_OCTETS = frozenset({0, 10, 127}) | frozenset(range(224, 256))


def build_geo_registry(
    countries: tuple[Country, ...] = DEFAULT_COUNTRIES,
    total_blocks: int = 180,
) -> GeoRegistry:
    """Allocate *total_blocks* /8s across *countries* proportionally to weight.

    The allocation is deterministic: countries are processed in declared
    order and receive contiguous runs of first-octets, which mimics the
    historically regional allocation of the v4 space (making /8 a usable
    geography proxy, as the paper requires).  Every country receives at
    least one /8 regardless of weight.
    """
    usable = [o for o in range(256) if o not in _RESERVED_OCTETS]
    if total_blocks > len(usable):
        raise ValueError(f"cannot allocate {total_blocks} /8s; only {len(usable)} usable")
    weight_sum = sum(c.weight for c in countries)
    registry = GeoRegistry(countries={c.code: c for c in countries})
    # Largest-remainder apportionment with a floor of one block each.
    shares = [c.weight / weight_sum * total_blocks for c in countries]
    counts = [max(1, int(s)) for s in shares]
    remainders = sorted(
        range(len(countries)), key=lambda i: shares[i] - int(shares[i]), reverse=True
    )
    index = 0
    while sum(counts) < total_blocks:
        counts[remainders[index % len(remainders)]] += 1
        index += 1
    while sum(counts) > total_blocks:
        largest = max(range(len(counts)), key=lambda i: counts[i])
        if counts[largest] == 1:
            break
        counts[largest] -= 1
    cursor = 0
    for country, count in zip(countries, counts):
        for _ in range(count):
            if cursor >= len(usable):
                break
            registry.blocks[usable[cursor]] = country.code
            cursor += 1
    return registry
