"""Autonomous-system registry.

The sensor's dynamic features include *unique ASes* and *queriers per AS*
(§ III-C), resolved in the paper via whois.  Our substitute: each synthetic
AS owns a set of /16 prefixes carved out of its country's /8 blocks, and
``ASRegistry.asn_of`` is the whois lookup.  AS kinds drive which querier
roles live inside them (an ISP has home users and shared resolvers; a
hosting AS has servers and firewalls; a cloud AS hosts CDN/cloud nodes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.netmodel.addressing import Prefix, slash16
from repro.netmodel.geography import GeoRegistry

__all__ = ["ASKind", "AutonomousSystem", "ASRegistry", "build_as_registry"]


class ASKind(enum.Enum):
    """Coarse business type of an AS; controls its querier population."""

    ISP = "isp"
    HOSTING = "hosting"
    ENTERPRISE = "enterprise"
    UNIVERSITY = "university"
    CLOUD = "cloud"
    MOBILE = "mobile"


# Relative frequency of each kind among a country's ASes.
_KIND_WEIGHTS: dict[ASKind, float] = {
    ASKind.ISP: 0.40,
    ASKind.HOSTING: 0.18,
    ASKind.ENTERPRISE: 0.18,
    ASKind.UNIVERSITY: 0.08,
    ASKind.CLOUD: 0.06,
    ASKind.MOBILE: 0.10,
}

# How many /16s an AS of each kind typically owns (mean of a geometric).
_KIND_PREFIX_MEAN: dict[ASKind, float] = {
    ASKind.ISP: 4.0,
    ASKind.HOSTING: 2.0,
    ASKind.ENTERPRISE: 1.2,
    ASKind.UNIVERSITY: 1.5,
    ASKind.CLOUD: 3.0,
    ASKind.MOBILE: 3.0,
}


@dataclass(slots=True)
class AutonomousSystem:
    """One AS: a number, a home country, a kind, and its /16 prefixes."""

    asn: int
    country: str
    kind: ASKind
    name: str
    prefixes: list[Prefix] = field(default_factory=list)

    def contains(self, addr: int) -> bool:
        return any(addr in p for p in self.prefixes)

    @property
    def address_count(self) -> int:
        return sum(p.size for p in self.prefixes)


@dataclass(slots=True)
class ASRegistry:
    """All ASes plus a /16 -> ASN routing table (the whois substitute)."""

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    _by_slash16: dict[int, int] = field(default_factory=dict)

    def add(self, asystem: AutonomousSystem) -> None:
        if asystem.asn in self.ases:
            raise ValueError(f"duplicate ASN {asystem.asn}")
        self.ases[asystem.asn] = asystem
        for prefix in asystem.prefixes:
            if prefix.length != 16:
                raise ValueError("AS prefixes must be /16s")
            key = slash16(prefix.network)
            if key in self._by_slash16:
                raise ValueError(f"prefix {prefix} already assigned")
            self._by_slash16[key] = asystem.asn

    def asn_of(self, addr: int) -> int | None:
        """Whois lookup: ASN owning *addr*, or ``None`` for unrouted space."""
        return self._by_slash16.get(slash16(addr))

    def as_of(self, addr: int) -> AutonomousSystem | None:
        asn = self.asn_of(addr)
        return self.ases.get(asn) if asn is not None else None

    def in_country(self, code: str) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.country == code]

    def of_kind(self, kind: ASKind) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.kind == kind]

    def __len__(self) -> int:
        return len(self.ases)

    def __iter__(self):
        return iter(self.ases.values())


# Deliberately avoids the sensor's home/mail keyword stems ("net",
# "fiber", "hosting", …) so a querier's *category* comes from its host
# component, not its ISP's brand name; one overlapping stem ("telecom"
# contains no keyword but "connect" and "link" are clean too) would
# otherwise swamp the `other` category.
_AS_NAME_STEMS = (
    "telecom", "online", "linx", "connect", "wave", "digital", "datarium",
    "quantum", "bluesky", "clearpath", "systems", "globalix", "metro", "zenith",
)


def build_as_registry(
    geo: GeoRegistry,
    rng: np.random.Generator,
    ases_per_block: float = 3.0,
) -> ASRegistry:
    """Carve each country's /8 space into ASes owning /16 prefixes.

    Within a country we allocate ASes kind-by-kind with geometric prefix
    counts until roughly ``ases_per_block`` ASes exist per /8 the country
    owns.  /16s are assigned sequentially inside the country's blocks, so
    an AS is geographically contiguous (as real allocations broadly are).
    """
    registry = ASRegistry()
    kinds = list(_KIND_WEIGHTS)
    kind_probs = np.array([_KIND_WEIGHTS[k] for k in kinds])
    kind_probs = kind_probs / kind_probs.sum()
    next_asn = 100
    for code in sorted(geo.countries):
        blocks = geo.blocks_of(code)
        if not blocks:
            continue
        # Pool of /16 network keys available inside this country.
        pool = [(octet << 8) | mid for octet in blocks for mid in range(256)]
        target_ases = max(2, int(round(ases_per_block * len(blocks))))
        cursor = 0
        for _ in range(target_ases):
            if cursor >= len(pool):
                break
            kind = kinds[int(rng.choice(len(kinds), p=kind_probs))]
            want = 1 + int(rng.geometric(1.0 / _KIND_PREFIX_MEAN[kind]))
            take = min(want, len(pool) - cursor)
            prefixes = [Prefix(pool[cursor + i] << 16, 16) for i in range(take)]
            cursor += take
            stem = _AS_NAME_STEMS[int(rng.integers(len(_AS_NAME_STEMS)))]
            asystem = AutonomousSystem(
                asn=next_asn,
                country=code,
                kind=kind,
                name=f"{stem}-{code}-{next_asn}",
                prefixes=prefixes,
            )
            registry.add(asystem)
            next_asn += 1
    return registry
