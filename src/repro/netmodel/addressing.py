"""IPv4 address arithmetic and reverse-name helpers.

All addresses are plain ``int`` in [0, 2**32).  The paper's sensor works
entirely on originator and querier IP addresses, their textual dotted-quad
forms, their ``in-addr.arpa`` reverse names, and prefix aggregates (/8 for
global entropy, /24 for local entropy and team detection), so this module
provides exactly those conversions plus prefix math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = 2**32 - 1

__all__ = [
    "MAX_IPV4",
    "MAX_IPV6",
    "ip6_to_reverse_name",
    "reverse_name_to_ip6",
    "ip_to_str",
    "str_to_ip",
    "ip_to_reverse_name",
    "reverse_name_to_ip",
    "is_reverse_name",
    "octets",
    "from_octets",
    "Prefix",
    "prefix_of",
    "slash8",
    "slash16",
    "slash24",
]


def ip_to_str(addr: int) -> str:
    """Render an integer address as a dotted quad, e.g. ``16909060 -> '1.2.3.4'``."""
    if not 0 <= addr <= MAX_IPV4:
        raise ValueError(f"address out of IPv4 range: {addr!r}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> int:
    """Parse a dotted quad into an integer address.

    Raises ``ValueError`` for anything that is not exactly four decimal
    octets in [0, 255] (no whitespace, no leading-zero shorthand ambiguity
    is tolerated beyond plain ``int`` parsing).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    addr = 0
    for part in parts:
        if not part or not part.isdigit():
            raise ValueError(f"bad octet {part!r} in {text!r}")
        value = int(part)
        if value > 255:
            raise ValueError(f"octet out of range in {text!r}")
        addr = (addr << 8) | value
    return addr


def octets(addr: int) -> tuple[int, int, int, int]:
    """Split an address into its four octets, most-significant first."""
    if not 0 <= addr <= MAX_IPV4:
        raise ValueError(f"address out of IPv4 range: {addr!r}")
    return ((addr >> 24) & 0xFF, (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF)


def from_octets(a: int, b: int, c: int, d: int) -> int:
    """Build an address from four octets, most-significant first."""
    for value in (a, b, c, d):
        if not 0 <= value <= 255:
            raise ValueError(f"octet out of range: {value}")
    return (a << 24) | (b << 16) | (c << 8) | d


MAX_IPV6 = 2**128 - 1


def ip6_to_reverse_name(addr: int) -> str:
    """Return the ``ip6.arpa`` QNAME for a 128-bit address.

    IPv6 reverse names are nibble-reversed: 32 hex digits, least
    significant first.  The paper's workloads are IPv4, but the sensor's
    naming layer supports v6 so backscatter can cover space darknets
    never will (§ I: "the huge IPv6 space" rules out new darknets).
    """
    if not 0 <= addr <= MAX_IPV6:
        raise ValueError(f"address out of IPv6 range: {addr!r}")
    nibbles = f"{addr:032x}"
    return ".".join(reversed(nibbles)) + ".ip6.arpa"


def reverse_name_to_ip6(name: str) -> int:
    """Parse an ``ip6.arpa`` QNAME back into the 128-bit address."""
    lowered = name.lower().rstrip(".")
    suffix = ".ip6.arpa"
    if not lowered.endswith(suffix):
        raise ValueError(f"not an ip6.arpa name: {name!r}")
    parts = lowered[: -len(suffix)].split(".")
    if len(parts) != 32:
        raise ValueError(f"reverse name does not cover a full v6 address: {name!r}")
    hex_digits = "".join(reversed(parts))
    try:
        return int(hex_digits, 16)
    except ValueError as exc:
        raise ValueError(f"bad nibble in {name!r}") from exc


def ip_to_reverse_name(addr: int) -> str:
    """Return the ``in-addr.arpa`` QNAME for an address.

    ``1.2.3.4`` maps to ``4.3.2.1.in-addr.arpa`` — octets reversed, as PTR
    queries put the least-significant octet first.
    """
    a, b, c, d = octets(addr)
    return f"{d}.{c}.{b}.{a}.in-addr.arpa"


def reverse_name_to_ip(name: str) -> int:
    """Parse a ``in-addr.arpa`` QNAME back into the originator address."""
    lowered = name.lower().rstrip(".")
    suffix = ".in-addr.arpa"
    if not lowered.endswith(suffix):
        raise ValueError(f"not an in-addr.arpa name: {name!r}")
    quad = lowered[: -len(suffix)]
    parts = quad.split(".")
    if len(parts) != 4:
        raise ValueError(f"reverse name does not cover a full address: {name!r}")
    d, c, b, a = (int(p) for p in parts)
    return from_octets(a, b, c, d)


def is_reverse_name(name: str) -> bool:
    """True when *name* is a full-address ``in-addr.arpa`` PTR QNAME."""
    try:
        reverse_name_to_ip(name)
    except (ValueError, TypeError):
        return False
    return True


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 prefix ``network/length`` with host bits forced to zero."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length: {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise ValueError(f"network out of range: {self.network}")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @property
    def mask(self) -> int:
        """Netmask as an integer (``/8 -> 0xFF000000``)."""
        return ((1 << self.length) - 1) << (32 - self.length)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (self.size - 1)

    def __contains__(self, addr: int) -> bool:
        return self.first <= addr <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when *other* is fully inside this prefix (lengths may be equal)."""
        return other.length >= self.length and other.network in self

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the prefix (use only for small prefixes)."""
        return iter(range(self.first, self.last + 1))

    def nth(self, index: int) -> int:
        """The *index*-th address inside the prefix."""
        if not 0 <= index < self.size:
            raise IndexError(f"host index {index} outside /{self.length}")
        return self.network | index

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Iterate the sub-prefixes of the given longer *length*."""
        if length < self.length:
            raise ValueError("subprefix length must not be shorter")
        step = 1 << (32 - length)
        for net in range(self.first, self.last + 1, step):
            yield Prefix(net, length)

    def __str__(self) -> str:
        return f"{ip_to_str(self.network)}/{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``'10.0.0.0/8'`` into a ``Prefix``."""
        try:
            net_text, len_text = text.split("/")
        except ValueError as exc:
            raise ValueError(f"not a prefix: {text!r}") from exc
        return cls(str_to_ip(net_text), int(len_text))


def prefix_of(addr: int, length: int) -> Prefix:
    """The /*length* prefix containing *addr*."""
    return Prefix(addr, length)  # Prefix masks host bits itself


def slash8(addr: int) -> int:
    """The /8 identifier (first octet) of an address, for global entropy."""
    return (addr >> 24) & 0xFF


def slash16(addr: int) -> int:
    """The /16 identifier (top 16 bits) of an address."""
    return (addr >> 16) & 0xFFFF


def slash24(addr: int) -> int:
    """The /24 identifier (top 24 bits) of an address, for local entropy."""
    return (addr >> 8) & 0xFFFFFF
