"""Synthetic Internet model: addresses, geography, ASes, names, population.

Substitutes for the real Internet behind the paper's DNS vantage points;
see DESIGN.md § 2 for the substitution argument.
"""

from repro.netmodel.addressing import (
    MAX_IPV4,
    Prefix,
    from_octets,
    ip_to_reverse_name,
    ip_to_str,
    is_reverse_name,
    octets,
    prefix_of,
    reverse_name_to_ip,
    slash8,
    slash16,
    slash24,
    str_to_ip,
)
from repro.netmodel.asn import ASKind, ASRegistry, AutonomousSystem, build_as_registry
from repro.netmodel.geography import (
    DEFAULT_COUNTRIES,
    Country,
    GeoRegistry,
    build_geo_registry,
)
from repro.netmodel.namespace import NameSynthesizer, QuerierRole
from repro.netmodel.world import NameStatus, Querier, World, WorldConfig

__all__ = [
    "MAX_IPV4",
    "Prefix",
    "from_octets",
    "ip_to_reverse_name",
    "ip_to_str",
    "is_reverse_name",
    "octets",
    "prefix_of",
    "reverse_name_to_ip",
    "slash8",
    "slash16",
    "slash24",
    "str_to_ip",
    "ASKind",
    "ASRegistry",
    "AutonomousSystem",
    "build_as_registry",
    "DEFAULT_COUNTRIES",
    "Country",
    "GeoRegistry",
    "build_geo_registry",
    "NameSynthesizer",
    "QuerierRole",
    "NameStatus",
    "Querier",
    "World",
    "WorldConfig",
]
