"""Reverse-DNS name synthesis for queriers.

The sensor's *static features* (§ III-C) are fractions of queriers whose
reverse names match keyword categories (home, mail, ns, fw, antispam, www,
ntp, cdn, aws, ms, google).  This module is the *generator* side: given a
querier's role, address, and owning AS, produce a plausible reverse name
that follows real-Internet naming conventions.  The *parser* side — the
paper's keyword-matching rules — lives in :mod:`repro.sensor.keywords`; the
two are deliberately independent implementations so that classification is
tested against realistic, imperfect names rather than against its own
inverse.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.netmodel.addressing import octets
from repro.netmodel.asn import AutonomousSystem

__all__ = ["QuerierRole", "NameSynthesizer"]


class QuerierRole(enum.Enum):
    """What kind of machine a querier is; decides its name shape."""

    HOME = "home"
    MAIL = "mail"
    NS = "ns"
    FIREWALL = "fw"
    ANTISPAM = "antispam"
    WWW = "www"
    NTP = "ntp"
    CDN = "cdn"
    AWS = "aws"
    MS = "ms"
    GOOGLE = "google"
    OTHER = "other"


# Keyword stems actually used when *building* names, per role.  These are
# drawn from the paper's lists but are not identical to the matcher's rule
# set: real names use a subset of keywords plus decoration.
_HOME_STEMS = (
    "home", "dsl", "cable", "dynamic", "pool", "cpe", "customer", "fiber",
    "flets", "user", "host", "ip",
)
_MAIL_STEMS = ("mail", "mx", "smtp", "mta", "post", "lists", "newsletter", "zimbra", "correo")
_NS_STEMS = ("ns", "dns", "cache", "resolv", "cns", "name")
_FW_STEMS = ("fw", "firewall", "wall")
_ANTISPAM_STEMS = ("ironport", "spamfilter", "spamgw", "spamd")
# "app" is avoided: the sensor's home keyword "ap" prefix-matches it.
_OTHER_STEMS = ("srv", "gw", "vpn", "core", "edge", "node", "db", "backup", "mgmt")

_CDN_SUFFIXES = (
    "akamaitechnologies.com",
    "akamai.net",
    "edgecastcdn.net",
    "cdngc.net",       # CDNetworks
    "llnw.net",        # Limelight
)
_GOOGLE_SUFFIXES = ("1e100.net", "googlebot.com", "google.com")

# TLD mix for AS base domains: country TLD usually, sometimes .com/.net.
_GENERIC_TLDS = ("com", "net", "org")


class NameSynthesizer:
    """Builds reverse names for queriers, deterministically from an RNG.

    One synthesizer is shared by a whole world build; it caches per-AS base
    domains so all queriers of an AS share a registered domain, which is
    what makes per-AS features meaningful.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._domains: dict[int, str] = {}

    def base_domain(self, asystem: AutonomousSystem) -> str:
        """The AS's registered domain, e.g. ``fiber-jp-123.jp``."""
        domain = self._domains.get(asystem.asn)
        if domain is None:
            if self._rng.random() < 0.7:
                tld = asystem.country
            else:
                tld = _GENERIC_TLDS[int(self._rng.integers(len(_GENERIC_TLDS)))]
            domain = f"{asystem.name}.{tld}"
            self._domains[asystem.asn] = domain
        return domain

    def name_for(self, role: QuerierRole, addr: int, asystem: AutonomousSystem) -> str:
        """A reverse name for a querier of *role* at *addr* inside *asystem*."""
        rng = self._rng
        a, b, c, d = octets(addr)
        domain = self.base_domain(asystem)
        if role is QuerierRole.HOME:
            stem = _HOME_STEMS[int(rng.integers(len(_HOME_STEMS)))]
            sep = "-" if rng.random() < 0.8 else "."
            quad = sep.join(str(o) for o in (a, b, c, d))
            if rng.random() < 0.5:
                return f"{stem}{quad}.{domain}"
            return f"{stem}-{quad}.{domain}"
        if role is QuerierRole.MAIL:
            stem = _MAIL_STEMS[int(rng.integers(len(_MAIL_STEMS)))]
            suffix = str(int(rng.integers(1, 9))) if rng.random() < 0.4 else ""
            return f"{stem}{suffix}.{domain}"
        if role is QuerierRole.NS:
            stem = _NS_STEMS[int(rng.integers(len(_NS_STEMS)))]
            suffix = str(int(rng.integers(1, 5))) if rng.random() < 0.6 else ""
            return f"{stem}{suffix}.{domain}"
        if role is QuerierRole.FIREWALL:
            stem = _FW_STEMS[int(rng.integers(len(_FW_STEMS)))]
            return f"{stem}{int(rng.integers(1, 4))}.{domain}"
        if role is QuerierRole.ANTISPAM:
            stem = _ANTISPAM_STEMS[int(rng.integers(len(_ANTISPAM_STEMS)))]
            return f"{stem}.{domain}"
        if role is QuerierRole.WWW:
            return f"www.{domain}"
        if role is QuerierRole.NTP:
            return f"ntp{int(rng.integers(1, 4))}.{domain}"
        if role is QuerierRole.CDN:
            suffix = _CDN_SUFFIXES[int(rng.integers(len(_CDN_SUFFIXES)))]
            return f"a{a}-{d}.deploy.{suffix}"
        if role is QuerierRole.AWS:
            return f"ec2-{a}-{b}-{c}-{d}.compute-1.amazonaws.com"
        if role is QuerierRole.MS:
            return f"vm{d}.cloudapp.azure.com"
        if role is QuerierRole.GOOGLE:
            suffix = _GOOGLE_SUFFIXES[int(rng.integers(len(_GOOGLE_SUFFIXES)))]
            return f"crawl-{a}-{b}-{c}-{d}.{suffix}"
        stem = _OTHER_STEMS[int(rng.integers(len(_OTHER_STEMS)))]
        return f"{stem}{int(rng.integers(1, 100))}.{domain}"
