"""Figure renderers: experiment results → paper-style SVG plots.

Each function takes the structured result of the matching
:mod:`repro.experiments` module and writes one SVG.  The visual idiom
follows the paper (log-log scatter + fit for Fig 4, CCDF curves for
Fig 9, CDF family for Fig 8, stacked class counts for Fig 11, weekly
boxes for Fig 12, churn bars above/below the axis for Fig 15).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.viz.svg import Axis, Chart

__all__ = [
    "render_fig3",
    "render_fig4",
    "render_fig5_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig11",
    "render_fig12",
    "render_fig15",
    "render_all",
]


def render_fig3(cases, path: str | Path) -> Path:
    """Fig 3: static feature composition per case study (stacked bars)."""
    chart = Chart(
        "Fig 3 — static features per case study",
        Axis("case study"),
        Axis("fraction of queriers", low=0.0, high=1.05),
        width=760,
    )
    xs = list(range(1, len(cases) + 1))
    shown = ("home", "mail", "ns", "fw", "antispam", "other", "unreach", "nxdomain")
    layers = {
        category: [case.static.get(category, 0.0) for case in cases]
        for category in shown
    }
    # Collapse whatever is left into "rest" so bars sum to 1.
    layers["rest"] = [
        max(0.0, 1.0 - sum(layers[c][i] for c in shown)) for i in range(len(cases))
    ]
    chart.stacked_bars(xs, layers)
    return chart.save(path)


def render_fig4(result, path: str | Path) -> Path:
    """Fig 4: queriers vs targets, log-log, with the power-law fit."""
    chart = Chart(
        "Fig 4 — controlled scans: queriers vs targets",
        Axis("targets (addresses)", log=True),
        Axis("unique queriers", log=True),
    )
    finals = [(t.targets, t.final_queriers) for t in result.trials if t.final_queriers > 0]
    roots = [(t.targets, t.m_root_queriers) for t in result.trials if t.m_root_queriers > 0]
    if finals:
        chart.scatter(*zip(*finals), label="final authority")
    if roots:
        chart.scatter(*zip(*roots), label="m-root", radius=2.5)
    if finals and np.isfinite(result.power):
        xs = np.array(sorted(x for x, _ in finals), dtype=float)
        chart.line(xs, result.coefficient * xs**result.power,
                   label=f"fit: x^{result.power:.2f}", dashed=True)
    targets_low = min((x for x, _ in finals), default=1)
    targets_high = max((x for x, _ in finals), default=10)
    chart.line([targets_low, targets_high], [20.0, 20.0],
               label="detection threshold (20)", color="#999999", dashed=True)
    return chart.save(path)


def render_fig5_fig6(result, path: str | Path) -> Path:
    """Figs 5/6: labeled-example activity around the curation day."""
    chart = Chart(
        "Figs 5/6 — re-appearing labeled examples",
        Axis("day"),
        Axis("active labeled examples", low=0.0),
    )
    chart.line(*zip(*result.benign), label="benign")
    chart.line(*zip(*result.malicious), label="malicious (scan+spam)")
    chart.vline(result.curation_day, label="curation")
    return chart.save(path)


def render_fig7(result, path: str | Path) -> Path:
    """Fig 7: f-score over time per training strategy."""
    chart = Chart(
        "Fig 7 — training strategies over time",
        Axis("day"),
        Axis("f-score", low=0.0, high=1.05),
    )
    for strategy, evaluation in result.evaluations.items():
        series = evaluation.f1_series()
        if series:
            chart.line(*zip(*series), label=strategy.value)
    chart.vline(result.curation_day, label="curation")
    return chart.save(path)


def render_fig8(result, path: str | Path) -> Path:
    """Fig 8: CDF of the majority-class ratio r, per querier threshold."""
    chart = Chart(
        "Fig 8 — CDF of majority-class ratio r",
        Axis("ratio of majority class", low=0.0, high=1.02),
        Axis("cumulative distribution", low=0.0, high=1.05),
    )
    for q in sorted(result.by_threshold):
        values, cumulative = result.cdf(q)
        if len(values):
            chart.step_cdf(values, cumulative, label=f"q = {q} ({len(values)})")
    return chart.save(path)


def render_fig9(curves, path: str | Path) -> Path:
    """Fig 9: CCDF of originator footprint sizes per dataset."""
    chart = Chart(
        "Fig 9 — footprint size distribution",
        Axis("footprint (unique queriers)", log=True),
        Axis("CCDF", log=True),
    )
    for curve in curves:
        mask = curve.survival > 0
        if mask.any():
            chart.step_cdf(curve.x[mask], curve.survival[mask], label=curve.dataset)
    return chart.save(path)


def render_fig11(result, path: str | Path) -> Path:
    """Fig 11: originators over time by class."""
    chart = Chart(
        "Fig 11 — originators over time (M-sampled)",
        Axis("day"),
        Axis("classified originators", low=0.0),
        width=760,
    )
    days = [day for day, _, total in result.series if total > 0]
    totals = [total for _, _, total in result.series if total > 0]
    chart.line(days, totals, label="total", color="#000000")
    for name in ("scan", "spam", "mail", "cdn"):
        series = [
            (day, counts.get(name, 0))
            for day, counts, total in result.series
            if total > 0
        ]
        if series:
            chart.line(*zip(*series), label=name)
    chart.vline(result.heartbleed_day, label="Heartbleed")
    return chart.save(path)


def render_fig12(result, path: str | Path) -> Path:
    """Fig 12: scanner footprint boxes over time."""
    chart = Chart(
        "Fig 12 — scanner footprints over time",
        Axis("day"),
        Axis("unique queriers", low=0.0),
        width=760,
    )
    chart.boxes(
        [box.day for box in result.boxes],
        [(box.p10, box.p25, box.median, box.p75, box.p90) for box in result.boxes],
    )
    return chart.save(path)


def render_fig15(result, path: str | Path) -> Path:
    """Fig 15: weekly churn — new/continuing above zero, departing below."""
    chart = Chart(
        "Fig 15 — scanner churn (M-sampled)",
        Axis("day"),
        Axis("originators (departing below 0)"),
        width=760,
    )
    days = [point.day for point in result.points]
    chart.stacked_bars(
        days,
        {
            "continuing": [point.continuing for point in result.points],
            "new": [point.new for point in result.points],
        },
    )
    chart.line(days, [-point.departing for point in result.points],
               label="departing", color="#D55E00")
    chart.line([min(days, default=0), max(days, default=1)], [0.0, 0.0],
               color="#444444")
    return chart.save(path)


def render_all(output_dir: str | Path, preset: str = "default") -> list[Path]:
    """Render every implemented figure into *output_dir*.

    Runs the corresponding experiments first; with the default preset
    the longitudinal ones regenerate month-scale datasets (minutes).
    """
    from repro.experiments import (
        case_studies,
        fig4_controlled,
        fig5_fig6_stability,
        fig7_strategies,
        fig8_consistency,
        fig9_footprints,
        fig11_trends,
        fig12_footprint_boxes,
        fig15_churn,
    )

    output = Path(output_dir)
    written = [
        render_fig3(case_studies.run(preset), output / "fig3_static_features.svg"),
        render_fig4(fig4_controlled.run(), output / "fig4_controlled.svg"),
        render_fig9(fig9_footprints.run(preset=preset), output / "fig9_footprints.svg"),
    ]
    written.append(
        render_fig5_fig6(fig5_fig6_stability.run(preset), output / "fig5_fig6_stability.svg")
    )
    written.append(render_fig7(fig7_strategies.run(preset), output / "fig7_strategies.svg"))
    written.append(render_fig8(fig8_consistency.run(preset), output / "fig8_consistency.svg"))
    written.append(render_fig11(fig11_trends.run(preset), output / "fig11_trends.svg"))
    written.append(
        render_fig12(fig12_footprint_boxes.run(preset), output / "fig12_boxes.svg")
    )
    written.append(render_fig15(fig15_churn.run(preset), output / "fig15_churn.svg"))
    return written
