"""Minimal SVG chart primitives (no plotting dependency available).

Provides exactly what the paper's figures need: linear and log axes,
polylines, scatter markers, stacked bars, box-and-whisker glyphs, step
CDFs, and a legend — emitted as standalone SVG documents.  Layout is
deliberately simple: one plot area with margins, ticks chosen from
"nice" values, everything styled inline so files render anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence
from xml.sax.saxutils import escape

__all__ = ["Scale", "Axis", "Chart", "PALETTE"]

#: Colorblind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#F0E442", "#56B4E9", "#E69F00", "#000000",
)


@dataclass(frozen=True, slots=True)
class Scale:
    """Maps data values to pixel coordinates, linearly or in log10."""

    low: float
    high: float
    pixel_low: float
    pixel_high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.log and (self.low <= 0 or self.high <= 0):
            raise ValueError("log scale requires positive bounds")
        if self.high <= self.low:
            raise ValueError("scale bounds must be increasing")

    def __call__(self, value: float) -> float:
        if self.log:
            position = (math.log10(value) - math.log10(self.low)) / (
                math.log10(self.high) - math.log10(self.low)
            )
        else:
            position = (value - self.low) / (self.high - self.low)
        return self.pixel_low + position * (self.pixel_high - self.pixel_low)

    def ticks(self, target: int = 6) -> list[float]:
        """Nicely spaced tick values covering the domain."""
        if self.log:
            low_exp = math.floor(math.log10(self.low))
            high_exp = math.ceil(math.log10(self.high))
            return [
                10.0**e
                for e in range(low_exp, high_exp + 1)
                if self.low / 1.001 <= 10.0**e <= self.high * 1.001
            ]
        span = self.high - self.low
        raw_step = span / max(target - 1, 1)
        magnitude = 10 ** math.floor(math.log10(raw_step)) if raw_step > 0 else 1.0
        for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
            step = multiple * magnitude
            if span / step <= target:
                break
        first = math.ceil(self.low / step) * step
        values = []
        value = first
        while value <= self.high * 1.0001:
            values.append(round(value, 10))
            value += step
        return values


def _format_tick(value: float, log: bool) -> str:
    if log:
        exponent = round(math.log10(value))
        if abs(10.0**exponent - value) / value < 1e-9:
            return f"1e{exponent}" if abs(exponent) > 3 else f"{value:g}"
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:g}"


@dataclass(frozen=True, slots=True)
class Axis:
    """Axis description: label plus optional log scaling and bounds."""

    label: str = ""
    log: bool = False
    low: float | None = None
    high: float | None = None


class Chart:
    """One SVG chart.  Add series, then :meth:`render` or :meth:`save`."""

    def __init__(
        self,
        title: str,
        x_axis: Axis,
        y_axis: Axis,
        width: int = 640,
        height: int = 420,
    ) -> None:
        self.title = title
        self.x_axis = x_axis
        self.y_axis = y_axis
        self.width = width
        self.height = height
        self.margin = {"left": 64, "right": 16, "top": 34, "bottom": 48}
        self._elements: list[str] = []
        self._legend: list[tuple[str, str]] = []
        self._x_values: list[float] = []
        self._y_values: list[float] = []
        self._pending: list[tuple] = []

    # -- series builders (recorded, rendered at save time) ---------------

    def line(self, xs: Sequence[float], ys: Sequence[float], label: str = "",
             color: str | None = None, dashed: bool = False) -> None:
        self._note(xs, ys)
        self._pending.append(("line", list(xs), list(ys), label, color, dashed))

    def scatter(self, xs: Sequence[float], ys: Sequence[float], label: str = "",
                color: str | None = None, radius: float = 3.0) -> None:
        self._note(xs, ys)
        self._pending.append(("scatter", list(xs), list(ys), label, color, radius))

    def step_cdf(self, values: Sequence[float], cumulative: Sequence[float],
                 label: str = "", color: str | None = None) -> None:
        self._note(values, cumulative)
        self._pending.append(("step", list(values), list(cumulative), label, color, False))

    def vline(self, x: float, label: str = "", color: str = "#999999") -> None:
        self._note([x], [])
        self._pending.append(("vline", [x], [], label, color, False))

    def boxes(self, xs: Sequence[float],
              quantiles: Sequence[tuple[float, float, float, float, float]],
              label: str = "", color: str | None = None,
              box_width: float | None = None) -> None:
        """Box-and-whisker glyphs; quantiles are (p10, p25, p50, p75, p90)."""
        ys = [q for tup in quantiles for q in tup]
        self._note(xs, ys)
        self._pending.append(("boxes", list(xs), list(quantiles), label, color, box_width))

    def stacked_bars(self, xs: Sequence[float],
                     layers: dict[str, Sequence[float]],
                     bar_width: float | None = None) -> None:
        totals = [sum(layer[i] for layer in layers.values()) for i in range(len(xs))]
        self._note(xs, totals + [0.0])
        self._pending.append(("stacked", list(xs), dict(layers), "", None, bar_width))

    def _note(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        self._x_values.extend(float(x) for x in xs)
        self._y_values.extend(float(y) for y in ys)

    # -- rendering --------------------------------------------------------

    def _scales(self) -> tuple[Scale, Scale]:
        def bounds(axis: Axis, values: list[float]) -> tuple[float, float]:
            data = [v for v in values if not axis.log or v > 0]
            low = axis.low if axis.low is not None else (min(data) if data else 0.0)
            high = axis.high if axis.high is not None else (max(data) if data else 1.0)
            if axis.log:
                low = max(low, 1e-12)
                if high <= low:
                    high = low * 10
            elif high <= low:
                high = low + 1.0
            if not axis.log and axis.low is None and low > 0 and low / high < 0.3:
                low = 0.0  # anchor near-zero linear axes at zero
            return low, high

        x_low, x_high = bounds(self.x_axis, self._x_values)
        y_low, y_high = bounds(self.y_axis, self._y_values)
        x_scale = Scale(x_low, x_high, self.margin["left"],
                        self.width - self.margin["right"], log=self.x_axis.log)
        y_scale = Scale(y_low, y_high, self.height - self.margin["bottom"],
                        self.margin["top"], log=self.y_axis.log)
        return x_scale, y_scale

    def _color(self, explicit: str | None, index: int) -> str:
        return explicit or PALETTE[index % len(PALETTE)]

    def render(self) -> str:
        x_scale, y_scale = self._scales()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-size="14">{escape(self.title)}</text>',
        ]
        parts.extend(self._render_axes(x_scale, y_scale))
        series_index = 0
        for kind, xs, ys, label, color, extra in self._pending:
            chosen = self._color(color, series_index)
            if kind == "vline":
                x = x_scale(xs[0])
                parts.append(
                    f'<line x1="{x:.1f}" y1="{y_scale.pixel_high:.1f}" '
                    f'x2="{x:.1f}" y2="{y_scale.pixel_low:.1f}" stroke="{color}" '
                    f'stroke-dasharray="4 3"/>'
                )
                if label:
                    parts.append(
                        f'<text x="{x + 4:.1f}" y="{y_scale.pixel_high + 12:.1f}" '
                        f'fill="{color}">{escape(label)}</text>'
                    )
                continue
            if kind == "stacked":
                parts.extend(self._render_stacked(xs, ys, x_scale, y_scale, extra))
                continue
            if label:
                self._legend.append((label, chosen))
            if kind == "line" or kind == "step":
                points = self._points(xs, ys, x_scale, y_scale, step=(kind == "step"))
                if points:
                    dash = ' stroke-dasharray="6 4"' if (kind == "line" and extra) else ""
                    parts.append(
                        f'<polyline fill="none" stroke="{chosen}" stroke-width="1.8"'
                        f'{dash} points="{points}"/>'
                    )
            elif kind == "scatter":
                for x, y in zip(xs, ys):
                    if self._plottable(x, y):
                        parts.append(
                            f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" '
                            f'r="{extra}" fill="{chosen}" fill-opacity="0.75"/>'
                        )
            elif kind == "boxes":
                parts.extend(self._render_boxes(xs, ys, x_scale, y_scale, chosen, extra))
            series_index += 1
        parts.extend(self._render_legend())
        parts.append("</svg>")
        return "\n".join(parts)

    def _plottable(self, x: float, y: float) -> bool:
        if not (math.isfinite(x) and math.isfinite(y)):
            return False
        if self.x_axis.log and x <= 0:
            return False
        if self.y_axis.log and y <= 0:
            return False
        return True

    def _points(self, xs, ys, x_scale, y_scale, step: bool) -> str:
        coordinates = []
        previous = None
        for x, y in zip(xs, ys):
            if not self._plottable(x, y):
                previous = None
                continue
            px, py = x_scale(x), y_scale(y)
            if step and previous is not None:
                coordinates.append(f"{px:.1f},{previous:.1f}")
            coordinates.append(f"{px:.1f},{py:.1f}")
            previous = py
        return " ".join(coordinates)

    def _render_boxes(self, xs, quantiles, x_scale, y_scale, color, box_width):
        width = box_width or max(
            4.0, (x_scale.pixel_high - x_scale.pixel_low) / max(len(xs), 1) * 0.5
        )
        for x, (p10, p25, p50, p75, p90) in zip(xs, quantiles):
            cx = x_scale(x)
            half = width / 2
            y10, y25, y50, y75, y90 = (y_scale(v) for v in (p10, p25, p50, p75, p90))
            yield (
                f'<line x1="{cx:.1f}" y1="{y10:.1f}" x2="{cx:.1f}" y2="{y90:.1f}" '
                f'stroke="{color}"/>'
            )
            yield (
                f'<rect x="{cx - half:.1f}" y="{y75:.1f}" width="{width:.1f}" '
                f'height="{max(y25 - y75, 0.5):.1f}" fill="{color}" '
                f'fill-opacity="0.35" stroke="{color}"/>'
            )
            yield (
                f'<line x1="{cx - half:.1f}" y1="{y50:.1f}" x2="{cx + half:.1f}" '
                f'y2="{y50:.1f}" stroke="{color}" stroke-width="2"/>'
            )

    def _render_stacked(self, xs, layers: dict, x_scale, y_scale, bar_width):
        width = bar_width or max(
            6.0, (x_scale.pixel_high - x_scale.pixel_low) / max(len(xs), 1) * 0.7
        )
        baseline = [0.0] * len(xs)
        for layer_index, (name, values) in enumerate(layers.items()):
            color = PALETTE[layer_index % len(PALETTE)]
            self._legend.append((name, color))
            for i, x in enumerate(xs):
                bottom = baseline[i]
                top = bottom + values[i]
                if values[i] <= 0:
                    continue
                y_top, y_bottom = y_scale(top), y_scale(bottom)
                yield (
                    f'<rect x="{x_scale(x) - width / 2:.1f}" y="{y_top:.1f}" '
                    f'width="{width:.1f}" height="{max(y_bottom - y_top, 0.3):.1f}" '
                    f'fill="{color}"/>'
                )
                baseline[i] = top

    def _render_axes(self, x_scale: Scale, y_scale: Scale):
        axis_color = "#444444"
        x0, x1 = x_scale.pixel_low, x_scale.pixel_high
        y0, y1 = y_scale.pixel_low, y_scale.pixel_high
        yield f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="{axis_color}"/>'
        yield f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="{axis_color}"/>'
        for tick in x_scale.ticks():
            px = x_scale(tick)
            yield f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 4}" stroke="{axis_color}"/>'
            yield (
                f'<text x="{px:.1f}" y="{y0 + 16}" text-anchor="middle">'
                f"{escape(_format_tick(tick, x_scale.log))}</text>"
            )
        for tick in y_scale.ticks():
            py = y_scale(tick)
            yield f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" stroke="{axis_color}"/>'
            yield (
                f'<text x="{x0 - 7}" y="{py + 3:.1f}" text-anchor="end">'
                f"{escape(_format_tick(tick, y_scale.log))}</text>"
            )
        if self.x_axis.label:
            yield (
                f'<text x="{(x0 + x1) / 2:.1f}" y="{self.height - 8}" '
                f'text-anchor="middle">{escape(self.x_axis.label)}</text>'
            )
        if self.y_axis.label:
            mid_y = (y0 + y1) / 2
            yield (
                f'<text x="14" y="{mid_y:.1f}" text-anchor="middle" '
                f'transform="rotate(-90 14 {mid_y:.1f})">{escape(self.y_axis.label)}</text>'
            )

    def _render_legend(self):
        x = self.width - self.margin["right"] - 150
        y = self.margin["top"] + 8
        for index, (label, color) in enumerate(self._legend):
            py = y + index * 15
            yield f'<rect x="{x}" y="{py - 8}" width="10" height="10" fill="{color}"/>'
            yield f'<text x="{x + 14}" y="{py + 1}">{escape(label)}</text>'

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(), encoding="utf-8")
        return path
