"""SVG figure rendering for the reproduced results (no plotting deps)."""

from repro.viz.figures import (
    render_all,
    render_fig3,
    render_fig4,
    render_fig5_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig11,
    render_fig12,
    render_fig15,
)
from repro.viz.svg import PALETTE, Axis, Chart, Scale

__all__ = [
    "render_all",
    "render_fig3",
    "render_fig4",
    "render_fig5_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig11",
    "render_fig12",
    "render_fig15",
    "PALETTE",
    "Axis",
    "Chart",
    "Scale",
]
