"""Ablation: random-forest hyperparameters and retraining cadence.

DESIGN.md § 5: sweep ensemble size and depth, and compare retraining
every window against sparser cadences on the longitudinal data.
"""

from __future__ import annotations

from repro.experiments.common import format_rows, labeled_features, windowed
from repro.ml import ForestConfig, RandomForestClassifier, repeated_holdout
from repro.sensor.pipeline import default_forest_factory
from repro.sensor.training import Strategy, evaluate_strategy

REPEATS = 8


def test_ablation_forest_size(once):
    bundle = labeled_features("JP-ditl")

    def sweep():
        out = {}
        for n_trees in (5, 20, 60):
            summary = repeated_holdout(
                lambda s, n=n_trees: RandomForestClassifier(ForestConfig(n_trees=n), seed=s),
                bundle.X, bundle.y, bundle.n_classes, repeats=REPEATS,
            )
            out[n_trees] = summary
        return out

    results = once(sweep)
    print("\n" + format_rows(
        ["trees", "accuracy", "f1"],
        [[n, f"{s.accuracy_mean:.2f}", f"{s.f1_mean:.2f}"] for n, s in sorted(results.items())],
    ))
    # Bigger ensembles help up to saturation.
    assert results[60].accuracy_mean >= results[5].accuracy_mean - 0.02
    assert results[60].accuracy_std <= results[5].accuracy_std + 0.02


def test_ablation_forest_depth(once):
    bundle = labeled_features("JP-ditl")

    def sweep():
        out = {}
        for depth in (2, 6, 14):
            summary = repeated_holdout(
                lambda s, d=depth: RandomForestClassifier(
                    ForestConfig(n_trees=40, max_depth=d), seed=s
                ),
                bundle.X, bundle.y, bundle.n_classes, repeats=REPEATS,
            )
            out[depth] = summary
        return out

    results = once(sweep)
    print("\n" + format_rows(
        ["max depth", "accuracy", "f1"],
        [[d, f"{s.accuracy_mean:.2f}", f"{s.f1_mean:.2f}"] for d, s in sorted(results.items())],
    ))
    # Depth-2 stumps cannot carve 12 classes; normal depths can.
    assert results[14].accuracy_mean > results[2].accuracy_mean


def test_ablation_retrain_cadence(once):
    analysis = windowed("M-sampled")
    labeled = analysis.labeled

    def sweep():
        out = {}
        for stride in (1, 4):
            windows = [
                (w.mid_day, w.features) for w in analysis.windows[::stride]
            ]
            evaluation = evaluate_strategy(
                Strategy.TRAIN_DAILY, windows, labeled, default_forest_factory,
                majority_runs=1,
            )
            out[stride] = evaluation
        return out

    results = once(sweep)
    print("\n" + format_rows(
        ["retrain every N windows", "mean f1", "windows trained"],
        [
            [stride, f"{e.mean_f1():.2f}", f"{e.trained_fraction():.2f}"]
            for stride, e in sorted(results.items())
        ],
    ))
    # Retraining on every window is at least as good as sparser cadences.
    assert results[1].mean_f1() >= results[4].mean_f1() - 0.05
