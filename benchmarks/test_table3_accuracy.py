"""Bench: regenerate Table III (classification accuracy, CART/RF/SVM).

The headline result: random forest achieves 0.7-0.8 accuracy over 12
classes (chance ≈ 0.08), CART is clearly worse, and the unsampled,
low-in-hierarchy JP vantage beats the short root datasets.
"""

from __future__ import annotations

import pytest

from repro.experiments import table3_accuracy

#: Fewer repeats than the paper's 50 to keep the bench affordable; the
#: means stabilize well before that.
REPEATS = 15


@pytest.mark.parametrize("dataset", ["JP-ditl", "B-post-ditl", "M-ditl", "M-sampled"])
def test_table3_accuracy(once, dataset):
    rows = once(
        table3_accuracy.run,
        datasets=(dataset,),
        repeats=REPEATS,
    )
    print("\n" + table3_accuracy.format_table(rows))
    summary = {row.algorithm: row.summary for row in rows}

    # Far above chance for all three algorithms.
    for algorithm, s in summary.items():
        assert s.accuracy_mean > 0.3, algorithm

    # RF beats CART decisively; RF vs SVM lands within holdout noise
    # (the paper separates them by a few points, with RF on top — our
    # SVM occasionally edges ahead at the sparse root vantages, where
    # both algorithms sit one std apart).
    assert summary["RF"].accuracy_mean >= summary["CART"].accuracy_mean
    assert summary["RF"].accuracy_mean >= summary["SVM"].accuracy_mean - 0.08

    # The paper's band: best algorithm lands roughly in 0.6-0.9.
    assert 0.55 <= summary["RF"].accuracy_mean <= 0.95

    # Repeated holdout is reasonably stable (the paper's stds are
    # 0.02-0.05 on 200-750 examples; the sparse sampled vantage has a
    # several-fold smaller labeled population and thus more variance).
    assert summary["RF"].accuracy_std < 0.15
