"""Print per-mode events/s deltas against the committed bench baselines.

For each ``BENCH_*.json`` given, loads the freshly-written report from
disk and the committed baseline from git (``git show <ref>:<path>``),
walks both for every ``events_per_s`` leaf, and prints a one-line delta
per mode — so the CI bench log shows throughput regressions (or wins)
at a glance, without anyone diffing JSON by hand::

    PYTHONPATH=src python benchmarks/bench_delta.py BENCH_ingest.json BENCH_sketch.json

Missing baselines (new file, new mode) and missing fresh modes are
reported, not fatal: the table is advisory; the hard gates live in the
benchmarks' own ``--assert-*`` flags.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def metric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Every ``<dotted.path>.events_per_s`` leaf of a report."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if key == "events_per_s" and isinstance(value, (int, float)):
                leaves[prefix or key] = float(value)
            else:
                leaves.update(metric_leaves(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            leaves.update(metric_leaves(value, f"{prefix}[{i}]"))
    return leaves


def committed_baseline(path: str, ref: str) -> dict | None:
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True,
            check=True,
            text=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def delta_lines(name: str, fresh: dict, baseline: dict | None) -> list[str]:
    lines: list[str] = []
    fresh_leaves = metric_leaves(fresh)
    base_leaves = metric_leaves(baseline) if baseline is not None else {}
    for path in sorted(set(fresh_leaves) | set(base_leaves)):
        now = fresh_leaves.get(path)
        before = base_leaves.get(path)
        label = f"{name}:{path}"
        if now is None:
            lines.append(f"  {label:<45} {before:>12,.0f} -> (gone)")
        elif before is None or before == 0:
            lines.append(f"  {label:<45} (new) -> {now:>12,.0f} ev/s")
        else:
            change = 100.0 * (now - before) / before
            lines.append(
                f"  {label:<45} {before:>12,.0f} -> {now:>12,.0f} ev/s "
                f"({change:+7.1f}%)"
            )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", help="fresh BENCH_*.json paths")
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baselines (default HEAD)",
    )
    args = parser.parse_args(argv)

    print(f"events/s deltas vs committed baselines ({args.baseline_ref}):")
    for report_path in args.reports:
        path = Path(report_path)
        if not path.is_file():
            print(f"  {report_path}: fresh report missing, skipped", file=sys.stderr)
            continue
        fresh = json.loads(path.read_text())
        baseline = committed_baseline(report_path, args.baseline_ref)
        if baseline is None:
            print(f"  {report_path}: no committed baseline at {args.baseline_ref}")
        for line in delta_lines(path.stem.replace("BENCH_", ""), fresh, baseline):
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
