"""Bench: surge alerting over the M-sampled scan series (§ I's promise).

The paper motivates backscatter with anticipating attacks; the cleanest
test is whether a robust detector flags the scanning surge around the
Heartbleed announcement (day 50) while staying quiet on the steady
background of the later months.
"""

from __future__ import annotations

from repro.analysis.alerts import detect_surges
from repro.analysis.trends import class_count_series
from repro.datasets.specs import HEARTBLEED_DAY
from repro.experiments.common import format_rows, windowed


def test_alerting_on_scan_series(once):
    analysis = windowed("M-sampled")

    def run():
        series = class_count_series(analysis)
        return series, detect_surges(series, app_class="scan", threshold=3.0)

    series, alerts = once(run)
    print("\n" + format_rows(
        ["day", "class", "observed", "baseline", "score"],
        [
            [f"{a.day:.0f}", a.app_class, a.observed, f"{a.baseline:.0f}", f"{a.score:.1f}"]
            for a in alerts
        ],
    ))

    # Something fires in the event/ramp-up period around Heartbleed
    # (day 50); the classifier only has scan labels from the curations,
    # so the detectable surge lands within the following weeks.  (Other
    # alerts may precede it — the simulated background has genuine
    # random spikes of its own, as the real one does.)
    assert alerts, "no surge detected at all"
    in_event_window = [
        a for a in alerts if HEARTBLEED_DAY - 14 <= a.day <= HEARTBLEED_DAY + 80
    ]
    assert in_event_window, [a.day for a in alerts]

    # Surges are the exception, not the rule: most windows stay quiet
    # (the paper: a large continuous background with occasional peaks).
    populated = [point for point in series if point[2] > 0]
    assert len(alerts) <= 0.4 * len(populated), (
        len(alerts),
        len(populated),
    )
