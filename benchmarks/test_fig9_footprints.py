"""Bench: regenerate Figure 9 (originator footprint distributions)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig9_footprints
from repro.experiments.common import MIN_QUERIERS


def test_fig9_footprints(once):
    curves = once(fig9_footprints.run)
    print("\n" + fig9_footprints.format_table(curves))
    by_name = {c.dataset: c for c in curves}

    for curve in curves:
        # Heavy tail: the largest footprint dwarfs the analyzability bar.
        assert curve.max_footprint > 100, curve.dataset
        # A meaningful population above the (scale-corrected)
        # analyzability bar — the paper sees hundreds of large
        # originators at unsampled vantages, fewer at the sampled root.
        floor = MIN_QUERIERS.get(curve.dataset, 20)
        population = int((curve.sizes >= floor).sum())
        assert population >= 30, curve.dataset
        # CCDF is a valid survival curve.
        assert (np.diff(curve.survival) <= 1e-12).all()
        assert curve.survival[0] == 1.0

    # The JP national sensor (unsampled, low in the hierarchy) sees
    # larger footprints than the sampled root.
    assert by_name["JP-ditl"].max_footprint > by_name["M-sampled"].max_footprint
