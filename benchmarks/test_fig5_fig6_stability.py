"""Bench: regenerate Figures 5 and 6 (labeled-example stability)."""

from __future__ import annotations

from repro.experiments import fig5_fig6_stability
from repro.experiments.fig5_fig6_stability import monthly_retention


def test_fig5_benign_stability_and_fig6_malicious_churn(once):
    result = once(fig5_fig6_stability.run)
    print("\n" + fig5_fig6_stability.format_table(result))

    benign_1mo = monthly_retention(result.benign, result.curation_day, 1.0)
    malicious_1mo = monthly_retention(result.malicious, result.curation_day, 1.0)

    # Fig 5: benign activity decays slowly (paper: ~10% in a month).
    assert benign_1mo > 0.6

    # Fig 6: malicious activity collapses (paper: to ~50% in a month).
    assert malicious_1mo < benign_1mo
    assert malicious_1mo < 0.75

    # The decay continues: 6-month benign retention below 1-month's,
    # but benign examples remain usable far longer than malicious ones.
    benign_6mo = monthly_retention(result.benign, result.curation_day, 6.0)
    malicious_3mo = monthly_retention(result.malicious, result.curation_day, 3.0)
    assert benign_6mo <= benign_1mo + 0.05
    assert benign_6mo > malicious_3mo

    # Decay is roughly symmetric around curation (activity was also
    # growing/churning before the expert looked at it).
    benign_minus_1mo = monthly_retention(result.benign, result.curation_day, -1.0)
    assert benign_minus_1mo > 0.5
