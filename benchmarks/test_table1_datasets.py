"""Bench: regenerate Table I (dataset inventory)."""

from __future__ import annotations

from repro.experiments import table1_datasets


def test_table1_datasets(once):
    rows = once(table1_datasets.run)
    print("\n" + table1_datasets.format_table(rows))
    by_name = {row.name: row for row in rows}

    # Reverse queries are a small fraction of total traffic everywhere.
    for row in rows:
        assert 0 < row.queries_reverse < row.queries_all
        assert row.qps_reverse < row.qps_all

    # The JP vantage (unsampled, low in the hierarchy) collects far more
    # reverse backscatter than the root vantages (Table I: 0.3e9 vs
    # 0.04-0.07e9 over comparable windows).
    assert by_name["JP-ditl"].queries_reverse > 2 * by_name["M-ditl"].queries_reverse
    assert by_name["JP-ditl"].queries_reverse > 2 * by_name["B-post-ditl"].queries_reverse

    # Long captures accumulate far more reverse queries than the 1.5-2
    # day DITL snapshots at the same vantage, and the 1:10 sampling shows
    # in M-sampled's logged-vs-arrived ratio (Table I's sampling column).
    assert by_name["B-multi-year"].queries_reverse > by_name["B-post-ditl"].queries_reverse
    assert by_name["M-sampled"].sampling == "1:10"
