"""Bench: regenerate Table II (dynamic features of the case studies)."""

from __future__ import annotations

from repro.experiments import case_studies


def test_table2_dynamic_features(once):
    cases = once(case_studies.run)
    print("\n" + case_studies.format_dynamic(cases))
    by_label = {c.label: c for c in cases}

    # Table II's qualitative shapes:
    # cdn has the lowest global entropy (geographically concentrated
    # audience: "Low global entropy for cdn reflects CDN selection"),
    cdn_global = by_label["cdn"].dynamic["dyn_global_entropy"]
    for label in ("scan-icmp", "scan-ssh", "ad-track", "spam"):
        if label in by_label:
            assert cdn_global < by_label[label].dynamic["dyn_global_entropy"], label
    # mail is below spam on queries/querier (1.7 vs 3.4 in the paper:
    # one mailing burst vs retries and filter re-lookups),
    assert (
        by_label["mail"].dynamic["dyn_queries_per_querier"]
        < by_label["spam"].dynamic["dyn_queries_per_querier"]
    )
    # and local /24 entropy is high across the board (0.92-0.97).
    for case in cases:
        assert case.dynamic["dyn_local_entropy"] > 0.8, case.label
