"""Bench: regenerate Figure 7 (training strategies over time)."""

from __future__ import annotations

from repro.experiments import fig7_strategies
from repro.sensor.training import Strategy


def test_fig7_training_strategies(once):
    result = once(fig7_strategies.run)
    print("\n" + fig7_strategies.format_table(result))
    evaluations = result.evaluations

    def far_f1(strategy: Strategy) -> float:
        series = evaluations[strategy].f1_series()
        values = [f for d, f in series if d - result.curation_day >= 60]
        return sum(values) / len(values) if values else 0.0

    def near_f1(strategy: Strategy) -> float:
        series = evaluations[strategy].f1_series()
        values = [f for d, f in series if abs(d - result.curation_day) <= 15]
        return sum(values) / len(values) if values else 0.0

    # Everything works near the curation day.
    assert near_f1(Strategy.TRAIN_DAILY) > 0.5

    # Fig 7's ordering far from curation: train-daily sustains the best
    # performance; train-once degrades relative to it.
    assert far_f1(Strategy.TRAIN_DAILY) >= far_f1(Strategy.TRAIN_ONCE) - 0.02
    assert far_f1(Strategy.TRAIN_DAILY) >= far_f1(Strategy.AUTO_GROW) - 0.02

    # Train-daily stays within striking distance of its near-curation
    # performance (paper: within 90% of best for months).
    assert far_f1(Strategy.TRAIN_DAILY) > 0.5 * near_f1(Strategy.TRAIN_DAILY)
