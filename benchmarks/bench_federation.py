"""Federation scaling benchmark: one engine vs. an N-shard federation.

Builds a synthetic head-dominated backscatter log (most events belong to
analyzable originators, so the featurize stage — the part that shards
parallelize — has real work), replays it through a single
:class:`repro.sensor.engine.SensorEngine` and through a
:class:`repro.federation.FederatedSensor` at each requested shard count,
batch and streaming, and writes ``BENCH_federation.json``:

* per mode: wall seconds (best of ``--rounds``), events/s, and speedup
  over the single engine;
* a merged-row identity check per shard count — the federation must be
  bit-identical to the single engine, and any divergence fails the run
  unconditionally;
* an Amdahl projection from the single engine's stage accounting
  (featurize is the parallel fraction), so single-core hosts still
  report what a multi-core deployment would see.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_federation.py --quick

``--quick`` shrinks the workload so CI can smoke-test the harness in
seconds; ``--assert-scaling`` fails the run unless the federated batch
path at the highest shard count reaches ``--scaling-target`` (default
1.3x) over the single engine.  The scaling assertion needs real cores:
on a single-core host it is reported as skipped (process fan-out cannot
beat serial on one CPU), while the identity checks always apply.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.federation import FederatedSensor
from repro.logstore import EntryBlock
from repro.netmodel.world import NameStatus
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import SensorConfig, SensorEngine

WINDOW_SECONDS = 21_600.0
N_WINDOWS = 2
SPAN = WINDOW_SECONDS * N_WINDOWS

QUERIER_POOL = 50_000
COUNTRIES = ("jp", "us", "de", "br", "cn", "ru", "fr", "in")


def synthetic_workload(
    events_target: int, min_queriers: int, seed: int
) -> tuple[EntryBlock, StaticDirectory]:
    """A time-ordered log whose cost sits in the featurize stage.

    Unlike ``bench_ingest`` (tail-dominated, exercising dedup/select),
    this workload is head-dominated: most originators clear the
    analyzability gate, so per-row feature extraction — the work the
    shards parallelize — dominates end-to-end time.
    """
    rng = random.Random(seed)
    n_analyzable = max(8, events_target // 260)
    events: list[tuple[float, int, int]] = []
    used: set[int] = set()
    for rank in range(n_analyzable):
        originator = 0x0A000000 + rank
        footprint = rng.randint(60, 200)
        for q in range(footprint):
            querier = 0xC0000000 + (rank * 131_071 + q * 8_191) % QUERIER_POOL
            used.add(querier)
            timestamp = rng.random() * SPAN
            events.append((timestamp, querier, originator))
            if rng.random() < 0.3:  # in-horizon duplicate for dedup work
                events.append(
                    (
                        min(timestamp + rng.random() * 25.0, SPAN - 1e-6),
                        querier,
                        originator,
                    )
                )
    # A sub-gate tail so the select stage has something to drop.
    for rank in range(n_analyzable * 4):
        originator = 0x0B000000 + rank
        querier = 0xC0000000 + (rank * 8_191) % QUERIER_POOL
        used.add(querier)
        events.append((rng.random() * SPAN, querier, originator))
    events.sort()
    directory = StaticDirectory(
        {
            q: QuerierInfo(
                addr=q,
                name=f"host{q & 0xFFFFF}.pool.example.net",
                status=NameStatus.OK,
                asn=q % 4096 + 1,
                country=COUNTRIES[q % len(COUNTRIES)],
            )
            for q in used
        }
    )
    block = EntryBlock.from_arrays(
        *map(list, zip(*events))  # timestamps, queriers, originators
    )
    return block, directory


def run_single(directory: StaticDirectory, config: SensorConfig, block: EntryBlock):
    engine = SensorEngine(directory, config)
    windows = engine.process(block, 0.0, SPAN, classify=False)
    return windows, engine.accounting()


def run_federated(
    directory: StaticDirectory,
    config: SensorConfig,
    block: EntryBlock,
    shards: int,
    stream_chunk: int | None = None,
):
    with FederatedSensor(directory, config, n_shards=shards) as federated:
        if stream_chunk is None:
            return federated.process(block, 0.0, SPAN, classify=False)
        windows = []
        for offset in range(0, len(block), stream_chunk):
            federated.ingest_block(block[offset : offset + stream_chunk])
            windows.extend(federated.poll(classify=False))
        windows.extend(federated.finish(classify=False))
        return windows


def rows_signature(windows) -> list:
    """Everything a downstream consumer sees, in emission order."""
    out = []
    for sensed in windows:
        window = getattr(sensed, "window", None)
        start = window.start if window is not None else sensed.start
        features = sensed.features
        out.append(
            (
                round(start, 6),
                features.originators.tolist(),
                features.matrix.tobytes(),
                features.footprints.tolist(),
            )
        )
    return out


def timed(rounds: int, runner, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = runner(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=150_000, help="target event count")
    parser.add_argument("--min-queriers", type=int, default=10, help="analyzability bar")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per mode")
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[2, 4],
        help="shard counts to benchmark (single engine always runs)",
    )
    parser.add_argument(
        "--chunk", type=int, default=5000, help="streaming chunk size (entries)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (small log, 2 rounds)"
    )
    parser.add_argument(
        "--assert-scaling",
        action="store_true",
        help="fail unless the highest shard count's batch path reaches "
        "--scaling-target over the single engine (needs >1 core)",
    )
    parser.add_argument(
        "--scaling-target", type=float, default=1.3, help="required batch speedup"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_federation.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 40_000)
        args.rounds = min(args.rounds, 2)

    print(f"generating ~{args.events:,} events …", flush=True)
    block, directory = synthetic_workload(args.events, args.min_queriers, args.seed)
    print(
        f"log: {len(block):,} events, block {block.nbytes / 1e6:.1f} MB, "
        f"{QUERIER_POOL:,}-querier pool",
        flush=True,
    )
    config = SensorConfig(window_seconds=WINDOW_SECONDS, min_queriers=args.min_queriers)

    single_seconds, (single_windows, accounting) = timed(
        args.rounds, run_single, directory, config, block
    )
    reference = rows_signature(single_windows)
    stage_seconds = {s.name: s.seconds for s in accounting}
    total_stage = sum(stage_seconds.values()) or 1.0
    parallel_fraction = stage_seconds.get("featurize", 0.0) / total_stage
    print(
        f"  single engine: {len(block) / single_seconds:>11,.0f} ev/s   "
        f"featurize fraction {parallel_fraction:.2f}",
        flush=True,
    )

    report: dict = {
        "benchmark": "federation",
        "events": len(block),
        "windows": N_WINDOWS,
        "min_queriers": args.min_queriers,
        "rounds": args.rounds,
        "chunk": args.chunk,
        "cpu_count": os.cpu_count(),
        "single": {
            "seconds": round(single_seconds, 6),
            "events_per_s": round(len(block) / single_seconds, 1),
            "stage_seconds": {k: round(v, 6) for k, v in stage_seconds.items()},
            "featurize_fraction": round(parallel_fraction, 4),
        },
        "federated": {},
    }
    failures: list[str] = []
    best_batch_speedup = 0.0
    top_shards = max(args.shards)

    for shards in sorted(set(args.shards)):
        batch_seconds, batch_windows = timed(
            args.rounds, run_federated, directory, config, block, shards
        )
        identical = rows_signature(batch_windows) == reference
        stream_seconds, stream_windows = timed(
            args.rounds,
            run_federated,
            directory,
            config,
            block,
            shards,
            stream_chunk=args.chunk,
        )
        stream_identical = rows_signature(stream_windows) == reference
        batch_speedup = round(single_seconds / batch_seconds, 3)
        # Amdahl bound for this host: featurize parallelizes across
        # min(shards, cores); everything else stays serial.
        lanes = max(1, min(shards, os.cpu_count() or 1))
        projected = round(
            1.0 / ((1.0 - parallel_fraction) + parallel_fraction / lanes), 3
        )
        report["federated"][str(shards)] = {
            "batch": {
                "seconds": round(batch_seconds, 6),
                "events_per_s": round(len(block) / batch_seconds, 1),
                "speedup": batch_speedup,
                "identical": identical,
            },
            "stream": {
                "seconds": round(stream_seconds, 6),
                "events_per_s": round(len(block) / stream_seconds, 1),
                "speedup": round(single_seconds / stream_seconds, 3),
                "identical": stream_identical,
            },
            "projected_speedup": projected,
        }
        if shards == top_shards:
            best_batch_speedup = batch_speedup
        print(
            f"  {shards} shards: batch {len(block) / batch_seconds:>11,.0f} ev/s "
            f"({batch_speedup:>5.2f}x, projected {projected:.2f}x)   "
            f"stream {len(block) / stream_seconds:>11,.0f} ev/s   "
            f"{'identical' if identical and stream_identical else 'DIVERGED'}",
            flush=True,
        )
        if not identical:
            failures.append(f"{shards}-shard batch rows diverge from the single engine")
        if not stream_identical:
            failures.append(f"{shards}-shard stream rows diverge from the single engine")

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.assert_scaling:
        cores = os.cpu_count() or 1
        if cores < 2:
            # Process fan-out cannot beat serial on one CPU; the
            # identity checks above still gate correctness.
            report["scaling_gate"] = "skipped: single-core host"
            Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
            print("scaling gate skipped: single-core host", flush=True)
        elif best_batch_speedup < args.scaling_target:
            failures.append(
                f"{top_shards}-shard batch speedup {best_batch_speedup:.3f}x "
                f"is below the {args.scaling_target:.2f}x target"
            )
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
