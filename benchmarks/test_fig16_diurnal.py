"""Bench: regenerate Figure 16 (diurnal querier counts, Appendix C)."""

from __future__ import annotations

from repro.experiments import fig16_diurnal


def test_fig16_diurnal(once):
    series = once(fig16_diurnal.run)
    print("\n" + fig16_diurnal.format_table(series))
    by_label = {s.label: s for s in series}

    assert {"cdn", "mail", "scan-ssh", "scan-icmp", "spam"} <= set(by_label)

    flat = by_label["scan-ssh"].diurnal_ratio()

    # Appendix C's contrasts: the mailing list (business-hours mass
    # sendout) and the adaptive ICMP research scanner (probes follow
    # address-space usage) are diurnal; the ssh scanner is the canonical
    # flat robot.  (Spam can show lulls of its own, "perhaps due to
    # initiation of different spam activity", so it is not asserted.)
    assert by_label["mail"].diurnal_ratio() > flat
    assert by_label["scan-icmp"].diurnal_ratio() > flat

    # The cdn case follows eyeball activity: visibly non-flat.
    assert by_label["cdn"].diurnal_ratio() > 1.15
