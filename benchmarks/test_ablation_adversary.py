"""Ablation: adversarial countermeasures (§ III-F, § VII).

Spreading the same activity over more originator IPs erodes per-IP
detection ("greatly increases the effort required by an adversarial
originator"); QNAME minimization at queriers removes upstream signal
("constrain[s] the signal to only the local authority").
"""

from __future__ import annotations

import pytest

from repro.analysis.adversary import qmin_experiment, spreading_experiment
from repro.experiments.common import format_rows
from repro.netmodel import World, WorldConfig


@pytest.fixture(scope="module")
def adversary_world():
    return World(WorldConfig(seed=31, scale=0.7))


def test_ablation_spreading_evasion(once, adversary_world):
    trials = once(spreading_experiment, adversary_world)
    print("\n" + format_rows(
        ["originators", "audience each", "detected", "largest footprint"],
        [
            [t.n_originators, t.audience_per_originator, t.detected, t.largest_footprint]
            for t in trials
        ],
    ))
    by_k = {t.n_originators: t for t in trials}

    # Concentrated activity is reliably detected.
    assert by_k[1].detected == 1

    # Spreading shrinks each originator's footprint monotonically-ish...
    assert by_k[32].largest_footprint < by_k[1].largest_footprint

    # ...and at high enough spread, per-IP signal falls below the bar.
    assert by_k[32].detected_fraction < 1.0

    # But evasion is costly: moderate spreading still leaves detectable
    # originators (the paper: it "greatly increases the effort").
    assert by_k[2].detected >= 1


def test_ablation_qname_minimization(once, adversary_world):
    trials = once(qmin_experiment, adversary_world)
    print("\n" + format_rows(
        ["qmin fraction", "attributable", "minimized", "signal", "analyzable"],
        [
            [f"{t.qmin_fraction:.2f}", t.attributable_queries, t.minimized_queries,
             f"{t.signal_fraction:.2f}", t.analyzable_originators]
            for t in trials
        ],
    ))
    by_fraction = {t.qmin_fraction: t for t in trials}

    # No deployment -> full signal.
    assert by_fraction[0.0].minimized_queries == 0
    assert by_fraction[0.0].signal_fraction == 1.0

    # Deployment strictly erodes the attributable share...
    signals = [by_fraction[f].signal_fraction for f in sorted(by_fraction)]
    assert all(b <= a + 0.02 for a, b in zip(signals, signals[1:]))

    # ...and near-universal deployment starves the sensor.
    assert by_fraction[0.95].signal_fraction < 0.2
    assert (
        by_fraction[0.95].analyzable_originators
        <= by_fraction[0.0].analyzable_originators
    )
