"""Ablation: resolver delegation-cache warmth (the attenuation knob).

DESIGN.md § 2 scales sensor visibility through cache warmth.  This bench
sweeps it and verifies the mechanism: warmer top-of-tree caches mean an
authority sees fewer distinct queriers per originator — the exact effect
the paper attributes to "caching of the top of the tree" (§ II, § IV-D).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity import SimulationEngine, build_campaign
from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy, ResolverConfig
from repro.experiments.common import format_rows
from repro.netmodel import World, WorldConfig
from repro.sensor.collection import collect_window


@pytest.fixture(scope="module")
def warmth_world():
    return World(WorldConfig(seed=91, scale=0.7))


def _national_footprints(world, warmth: float, campaign) -> int:
    hierarchy = DnsHierarchy(
        world,
        seed=17,
        resolver_config=ResolverConfig(
            national_warm_shared=warmth, national_warm_self=warmth
        ),
    )
    sensor = hierarchy.attach_national(
        Authority(
            name="jp", level=AuthorityLevel.NATIONAL, country="jp",
            scope_slash8=frozenset(world.geo.blocks_of("jp")),
        )
    )
    engine = SimulationEngine(world, hierarchy)
    engine.add(campaign)
    engine.run(0.0, 2 * 86400.0)
    window = collect_window(list(sensor.log), 0.0, 2 * 86400.0)
    observation = window.observations.get(campaign.originator)
    return observation.footprint if observation else 0


def test_ablation_cache_warmth(once, warmth_world):
    campaign = build_campaign(
        warmth_world, "spam", np.random.default_rng(3),
        start=0.0, duration_days=2.0, audience_size=600, home_country="jp",
    )

    def sweep():
        return {
            warmth: _national_footprints(warmth_world, warmth, campaign)
            for warmth in (0.0, 0.5, 0.9, 0.99)
        }

    footprints = once(sweep)
    print("\n" + format_rows(
        ["cache warmth", "sensor footprint", "of audience"],
        [
            [f"{w:.2f}", f, f"{f / campaign.footprint:.2f}"]
            for w, f in sorted(footprints.items())
        ],
    ))
    ordered = [footprints[w] for w in sorted(footprints)]
    # Fully cold caches show the sensor (nearly) the whole audience;
    # warmth attenuates monotonically and strongly.
    assert ordered[0] >= 0.9 * campaign.footprint
    assert all(b <= a for a, b in zip(ordered, ordered[1:]))
    # Warm top caches hide roughly a third of the audience at this
    # vantage (the short national delegation TTL re-exposes queriers as
    # entries expire over the two-day window).
    assert footprints[0.99] < 0.75 * footprints[0.0]
