"""Bench: regenerate Tables VII/VIII (top-30 originators, cross-checked)."""

from __future__ import annotations

import pytest

from repro.experiments import tables78_top_originators


def test_table7_jp_top30(once):
    rows = once(tables78_top_originators.run, "JP-ditl", 30)
    print("\n" + tables78_top_originators.format_table(rows))

    assert len(rows) == 30
    # Footprints are ranked descending.
    sizes = [r.queriers for r in rows]
    assert sizes == sorted(sizes, reverse=True)

    # Table VII's texture: the JP top is dominated by spam, with most
    # rows carrying external evidence (darknet or blacklists) and only a
    # minority "clean" (the paper found 4 of 30 clean).
    spam_rows = [r for r in rows if r.predicted == "spam"]
    assert len(spam_rows) >= 8
    clean = [r for r in rows if r.clean]
    assert len(clean) <= len(rows) / 2

    # Predictions mostly agree with ground truth at the very top.
    correct = sum(1 for r in rows if r.predicted == r.true_class)
    assert correct >= len(rows) * 0.5


def test_table8_m_top30(once):
    rows = once(tables78_top_originators.run, "M-ditl", 30)
    print("\n" + tables78_top_originators.format_table(rows))

    assert len(rows) == 30
    classes = {r.predicted for r in rows}
    # Table VIII's texture: the root's top mixes cdn and scan.
    assert {"cdn", "scan"} & classes

    # The darknet-blind population backscatter uniquely surfaces: among
    # all analyzable true scanners at this vantage (not just the top-30,
    # which skews to huge random sweeps the darknet always sees), some
    # never touched the darknet (targeted or small scans, § VII).
    from repro.experiments.common import classified

    bundle = classified("M-ditl")
    truth = bundle.dataset.true_classes()
    scanners = [
        int(o) for o in bundle.features.originators if truth.get(int(o)) == "scan"
    ]
    assert scanners, "no analyzable scanners at M-ditl"
    blind = [o for o in scanners if bundle.dataset.darknet.dark_addresses(o) == 0]
    assert blind, "every scanner was darknet-visible"
