"""Service smoke check: start `repro serve`, curl it, SIGTERM it.

Exercises the real process boundary the unit tests cannot: a
`python -m repro.cli serve` subprocess against a generated `.npz` log,
probed over HTTP while it serves, then shut down with SIGTERM.  Fails
(exit 1) unless

* the service reports nonzero closed windows on ``/healthz``,
* ``/metrics`` carries ``repro_service_windows_total`` and
  ``/verdicts`` at least one window record,
* the process exits cleanly (rc 0) within the timeout after SIGTERM.

Usage::

    PYTHONPATH=src python benchmarks/smoke_service.py [--timeout 120]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def generate_world(workdir: Path) -> tuple[Path, Path, Path]:
    """A tiny serialized world: .npz log, querier directory, labels."""
    sys.path.insert(0, str(REPO / "src"))
    import numpy as np

    from repro.datasets import write_directory
    from repro.logstore import EntryBlock, save_block
    from repro.netmodel.addressing import ip_to_str
    from repro.netmodel.world import NameStatus
    from repro.sensor.directory import QuerierInfo

    rng = np.random.default_rng(11)
    rows = []
    for w in range(3):
        for o in range(1, 9):
            for k in range(12):
                q = 100 + (o * 13 + k * 7) % 40
                t = w * 100.0 + float(rng.uniform(0.0, 99.0))
                rows.append((t, q, o))
    rows.sort()
    ts, qs, os_ = (np.array(c) for c in zip(*rows))
    log_path = workdir / "feed.npz"
    save_block(log_path, EntryBlock.from_arrays(
        ts.astype(np.float64), qs.astype(np.int64), os_.astype(np.int64)
    ))
    countries = ("jp", "us", "de")
    dir_path = workdir / "queriers.jsonl"
    write_directory(
        dir_path,
        (
            QuerierInfo(addr=q, name=f"host{q}.example.net",
                        status=NameStatus.OK, asn=q % 5 + 1,
                        country=countries[q % 3])
            for q in range(100, 140)
        ),
    )
    labels_path = workdir / "labels.json"
    labels_path.write_text(json.dumps(
        {ip_to_str(o): ("scan" if o % 2 else "dns") for o in range(1, 9)}
    ))
    return log_path, dir_path, labels_path


def http_json(port: int, path: str):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
        return resp.status, resp.read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds")
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory(prefix="smoke-service-") as tmp:
        workdir = Path(tmp)
        log_path, dir_path, labels_path = generate_world(workdir)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "-l", str(log_path), "-d", str(dir_path), "-t", str(labels_path),
                "--port", "0", "--window", "100", "--min-queriers", "3",
                "--retrain", "daily",
            ],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        port = None
        try:
            # The service prints its bound address first thing.
            while port is None:
                if time.monotonic() > deadline:
                    raise TimeoutError("never printed the serving line")
                line = proc.stdout.readline()
                if not line and proc.poll() is not None:
                    raise RuntimeError(f"serve exited early (rc {proc.returncode})")
                print(f"  serve: {line.rstrip()}")
                if line.startswith("serving http on "):
                    port = int(line.rsplit(":", 1)[1])

            windows = 0
            while windows == 0:
                if time.monotonic() > deadline:
                    raise TimeoutError("no window ever closed")
                try:
                    status, body = http_json(port, "/healthz")
                except OSError:
                    time.sleep(0.2)
                    continue
                assert status == 200, f"/healthz -> {status}"
                windows = json.loads(body)["windows"]
                time.sleep(0.1)
            print(f"  healthz: {windows} windows closed")

            status, body = http_json(port, "/metrics")
            assert status == 200, f"/metrics -> {status}"
            assert b"repro_service_windows_total" in body, "metrics missing counter"
            status, body = http_json(port, "/verdicts")
            assert status == 200, f"/verdicts -> {status}"
            assert json.loads(body)["windows"], "no verdict records"
            print("  metrics + verdicts OK")

            proc.send_signal(signal.SIGTERM)
            remaining = max(1.0, deadline - time.monotonic())
            out, _ = proc.communicate(timeout=remaining)
            for line in out.splitlines():
                print(f"  serve: {line}")
            assert proc.returncode == 0, f"rc {proc.returncode} after SIGTERM"
            print("smoke_service: PASS (clean shutdown)")
            return 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


if __name__ == "__main__":
    raise SystemExit(main())
