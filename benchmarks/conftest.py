"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
expensive artifacts (generated datasets, windowed analyses) are memoized
in-process by :mod:`repro.experiments.common`, so ordering benchmarks in
one session amortizes generation.  Each benchmark runs its experiment
exactly once (``benchmark.pedantic(..., rounds=1)``) — the timing is the
cost of regenerating the result, and the assertions are the reproduction
targets (shape, not absolute values; see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
