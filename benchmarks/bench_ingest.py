"""Full-pipeline ingest benchmark: per-object vs. columnar block path.

Builds a synthetic heavy-tailed backscatter log spanning several
observation windows, replays it through the window + select stages of
:class:`repro.sensor.engine.SensorEngine` four ways — {batch, stream} x
{object, block} — with an optional sketch pre-stage variant of each,
and writes ``BENCH_ingest.json``:

* **object** — the historical path: a ``list[QueryLogEntry]`` fed
  entry by entry (``windows`` / ``ingest_many``);
* **block** — the array ingest plane: the same events as one
  :class:`repro.logstore.EntryBlock` fed through the vectorized path
  (``windows`` / ``ingest_block``), bit-identical by construction.

Each mode reports events/s (best of ``--rounds`` timed runs); the
batch modes also report peak incremental memory from a separate
``tracemalloc`` run.  The emitted windows of every object/block pair
are compared observation by observation and the report records the
verdict.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_ingest.py --quick

``--quick`` shrinks the workload so CI can smoke-test the harness in
seconds; ``--assert-block-faster`` fails the run unless the block path
meets the object path's throughput (batch and streaming, exact mode);
``--assert-stream-sketch`` gates the vectorized streaming-sketch path
(>= 0.5x the plain stream block throughput and >= 4x the pre-
vectorization scalar baseline); any object/block divergence fails the
run unconditionally.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
import tracemalloc
from pathlib import Path

from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock
from repro.sensor.engine import SensorConfig, SensorEngine

WINDOW_SECONDS = 21_600.0
N_WINDOWS = 4
SPAN = WINDOW_SECONDS * N_WINDOWS

#: Committed stream_sketch throughput (events/s) from the last
#: BENCH_ingest.json produced *before* the pre-stage grew its
#: array-native verdict path — the scalar per-event fallback on the
#: single-CPU CI host.  ``--assert-stream-sketch`` gates against 4x this.
SCALAR_STREAM_SKETCH_BASELINE = 23_327.8


def synthetic_log(
    events_target: int, min_queriers: int, seed: int
) -> list[QueryLogEntry]:
    """A time-ordered, tail-dominated backscatter day spanning 4 windows.

    The same regime as ``bench_sketch``: a small head of loud
    originators over a long sub-gate tail, each querier issuing one or
    two queries (the second inside the 30 s dedup horizon so the dedup
    stage has real work).  Events are spread uniformly over ``SPAN`` so
    every mode exercises window turnover, not just one interval.
    """
    rng = random.Random(seed)
    n_tail = max(1, int(0.7 * events_target / (1.4 * 2.0)))
    n_head = max(10, int(0.3 * events_target / (1.4 * 175)))
    events: list[tuple[float, int, int]] = []
    for rank in range(n_head + n_tail):
        originator = 0x0A000000 + rank
        if rank < n_head:
            footprint = rng.randint(100, 250)
        else:
            footprint = min(1 + int(rng.expovariate(1.0)), max(1, min_queriers - 1))
        for q in range(footprint):
            querier = 0xC0000000 + (rank * 131_071 + q * 8_191) % 2_000_003
            timestamp = rng.random() * SPAN
            events.append((timestamp, querier, originator))
            if rng.random() < 0.4:  # in-horizon duplicate for the dedup stage
                events.append(
                    (
                        min(timestamp + rng.random() * 25.0, SPAN - 1e-6),
                        querier,
                        originator,
                    )
                )
    events.sort()
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in events]


def config_for(min_queriers: int, sketch: bool, capacity: int) -> SensorConfig:
    return SensorConfig(
        window_seconds=WINDOW_SECONDS,
        min_queriers=min_queriers,
        sketch_enabled=sketch,
        sketch_capacity=max(4096, capacity),
    )


def run_batch(config: SensorConfig, payload) -> list:
    engine = SensorEngine(config=config)
    return engine.windows(payload, 0.0, SPAN)


def run_stream(config: SensorConfig, payload, chunk: int) -> list:
    engine = SensorEngine(config=config)
    windows = []
    if isinstance(payload, EntryBlock):
        for offset in range(0, len(payload), chunk):
            engine.ingest_block(payload[offset : offset + chunk])
            windows.extend(s.window for s in engine.poll(classify=False))
    else:
        for offset in range(0, len(payload), chunk):
            engine.ingest_many(payload[offset : offset + chunk])
            windows.extend(s.window for s in engine.poll(classify=False))
    windows.extend(s.window for s in engine.finish(classify=False))
    return windows


def window_signature(windows: list) -> list:
    """Everything downstream stages see, in emission order."""
    return [
        (
            window.start,
            window.end,
            [
                (originator, tuple(obs.timestamps), tuple(obs.queriers))
                for originator, obs in window.observations.items()
            ],
        )
        for window in windows
    ]


def timed(rounds: int, runner, *args):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = runner(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def peak_memory(runner, *args) -> int:
    """Peak incremental bytes of one pass (inputs pre-allocated)."""
    tracemalloc.start()
    try:
        runner(*args)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=300_000, help="target event count")
    parser.add_argument("--min-queriers", type=int, default=10, help="analyzability bar")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per mode")
    parser.add_argument(
        "--chunk", type=int, default=5000, help="streaming chunk size (entries)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (small log, 2 rounds)"
    )
    parser.add_argument(
        "--assert-block-faster",
        action="store_true",
        help="fail unless the block path meets the object path's "
        "throughput (batch and streaming, exact mode)",
    )
    parser.add_argument(
        "--assert-stream-sketch",
        action="store_true",
        help="fail unless the vectorized stream_sketch block path reaches "
        ">=0.5x the plain stream block throughput and >=4x the "
        "pre-vectorization scalar baseline",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_ingest.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 60_000)
        args.rounds = min(args.rounds, 2)

    print(f"generating ~{args.events:,} events …", flush=True)
    entries = synthetic_log(args.events, args.min_queriers, args.seed)
    t0 = time.perf_counter()
    block = EntryBlock.from_entries(entries)
    build_seconds = time.perf_counter() - t0
    print(
        f"log: {len(entries):,} events, block {block.nbytes / 1e6:.1f} MB "
        f"(built in {build_seconds:.3f}s)",
        flush=True,
    )

    exact = config_for(args.min_queriers, False, len(entries))
    sketch = config_for(args.min_queriers, True, len(entries))

    def mode_report(seconds: float, peak: int | None = None) -> dict:
        report = {
            "seconds": round(seconds, 6),
            "events_per_s": round(len(entries) / seconds, 1),
        }
        if peak is not None:
            report["peak_memory_mb"] = round(peak / 1e6, 3)
        return report

    report: dict = {
        "benchmark": "ingest",
        "events": len(entries),
        "windows": N_WINDOWS,
        "min_queriers": args.min_queriers,
        "rounds": args.rounds,
        "chunk": args.chunk,
        "cpu_count": os.cpu_count(),
        "block_build_seconds": round(build_seconds, 6),
        "block_nbytes": block.nbytes,
    }
    failures: list[str] = []
    speedups: dict[str, float] = {}

    for mode, sketched, config in (
        ("batch", False, exact),
        ("batch_sketch", True, sketch),
        ("stream", False, exact),
        ("stream_sketch", True, sketch),
    ):
        streaming = mode.startswith("stream")
        if streaming:
            object_seconds, object_windows = timed(
                args.rounds, run_stream, config, entries, args.chunk
            )
            block_seconds, block_windows = timed(
                args.rounds, run_stream, config, block, args.chunk
            )
            object_peak = block_peak = None
        else:
            object_seconds, object_windows = timed(
                args.rounds, run_batch, config, entries
            )
            block_seconds, block_windows = timed(args.rounds, run_batch, config, block)
            object_peak = peak_memory(run_batch, config, entries)
            block_peak = peak_memory(run_batch, config, block)
        identical = window_signature(object_windows) == window_signature(block_windows)
        speedup = round(object_seconds / block_seconds, 3)
        report[mode] = {
            "object": mode_report(object_seconds, object_peak),
            "block": mode_report(block_seconds, block_peak),
            "speedup": speedup,
            "windows_emitted": len(block_windows),
            "identical": identical,
        }
        speedups[mode] = speedup
        print(
            f"  {mode:>13}: object {len(entries) / object_seconds:>11,.0f} ev/s   "
            f"block {len(entries) / block_seconds:>11,.0f} ev/s   "
            f"{speedup:>6.2f}x  {'identical' if identical else 'DIVERGED'}",
            flush=True,
        )
        if not identical:
            failures.append(f"{mode}: object and block windows diverge")

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.assert_block_faster:
        for mode in ("batch", "stream"):
            if report[mode]["speedup"] < 1.0:
                failures.append(
                    f"{mode}: block path is slower than the object path "
                    f"(speedup {report[mode]['speedup']:.3f}x)"
                )
    if args.assert_stream_sketch:
        sketched = report["stream_sketch"]["block"]["events_per_s"]
        plain = report["stream"]["block"]["events_per_s"]
        if sketched < 0.5 * plain:
            failures.append(
                "stream_sketch: block path below half the plain stream "
                f"throughput ({sketched:,.0f} vs {plain:,.0f} events/s)"
            )
        if sketched < 4.0 * SCALAR_STREAM_SKETCH_BASELINE:
            failures.append(
                "stream_sketch: block path below 4x the pre-vectorization "
                f"scalar baseline ({sketched:,.0f} vs "
                f"{SCALAR_STREAM_SKETCH_BASELINE:,.0f} events/s)"
            )
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
