"""Bench: regenerate Figure 4 (controlled scans vs observed queriers)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4_controlled


def test_fig4_controlled(once):
    result = once(fig4_controlled.run)
    print("\n" + fig4_controlled.format_table(result))

    # Sub-linear power law at the final authority (paper: exponent 0.71).
    assert 0.55 <= result.power <= 0.9

    # Monotone growth of final-authority queriers with scan size.
    by_fraction: dict[float, list[int]] = {}
    for trial in result.trials:
        by_fraction.setdefault(trial.fraction, []).append(trial.final_queriers)
    means = [np.mean(by_fraction[f]) for f in sorted(by_fraction)]
    assert all(b >= a for a, b in zip(means, means[1:]))

    # Root attenuation: even the full-space scan leaves roots with a tiny
    # fraction of the final authority's queriers (paper: 2 queriers at M
    # for a scan the final authority saw thousands of queriers from).
    biggest = max(result.trials, key=lambda t: t.fraction)
    assert biggest.m_root_queriers < biggest.final_queriers / 20
    assert biggest.b_root_queriers < biggest.final_queriers / 20

    # Detection threshold: scans of ~0.001% of the space and larger are
    # always above the 20-querier bar (Fig 4's horizontal line).
    assert result.detection_fraction is not None
    assert result.detection_fraction <= 1e-4
