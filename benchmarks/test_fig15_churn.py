"""Bench: regenerate Figure 15 (week-by-week scanner churn)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig15_churn


def test_fig15_churn(once):
    result = once(fig15_churn.run)
    print("\n" + fig15_churn.format_table(result))

    active = [p for p in result.points if p.total > 0]
    assert len(active) >= 8, "too few active weeks"

    # Steady-state weeks mix new, continuing, and departing scanners.
    # The first weeks after curation are sparse (labeled scan examples
    # were curated mid-dataset and did not exist earlier), so require the
    # continuing core for the great majority of weeks, not unanimity.
    middle = active[2:-1]
    assert any(p.new > 0 for p in middle)
    assert any(p.departing > 0 for p in middle)
    with_core = sum(1 for p in middle if p.continuing > 0)
    assert with_core >= 0.75 * len(middle), "continuing core vanished"

    # Turnover is substantial but far from total (paper: ~20% per week).
    turnover = result.mean_turnover()
    assert np.isfinite(turnover)
    assert 0.05 < turnover < 0.7
