"""Bench: feature drift of labeled examples (§ V-B's retraining rationale)."""

from __future__ import annotations

import numpy as np

from repro.analysis.drift import feature_drift
from repro.experiments.common import format_rows, windowed


def test_feature_drift(once):
    analysis = windowed("B-multi-year")
    labeled = analysis.labeled

    result = once(feature_drift, analysis, labeled)
    rows = []
    for benign, malicious in zip(result.benign[::30], result.malicious[::30]):
        rows.append([
            f"{benign.day:.0f}",
            f"{benign.mean_distance:.2f}" if benign.examples else "-",
            benign.examples,
            f"{malicious.mean_distance:.2f}" if malicious.examples else "-",
            malicious.examples,
        ])
    print("\n" + format_rows(
        ["day", "benign drift", "n", "malicious drift", "n"], rows
    ))

    # Drift is ~zero at the curation window by construction.
    at_curation = [
        p for p in result.benign
        if abs(p.day - result.curation_day) <= 1 and p.examples > 0
    ]
    assert at_curation and at_curation[0].mean_distance < 0.5

    # The § V-B mechanism: away from curation, the same originators
    # exhibit visibly different feature vectors.
    far = [
        p.mean_distance
        for p in result.benign
        if p.examples > 0 and abs(p.day - result.curation_day) > 60
    ]
    near = [
        p.mean_distance
        for p in result.benign
        if p.examples > 0 and abs(p.day - result.curation_day) <= 7
    ]
    assert far and near
    assert np.mean(far) > np.mean(near)
    assert np.mean(far) > 0.15  # a visible shift in standardized units
