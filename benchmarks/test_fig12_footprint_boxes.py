"""Bench: regenerate Figure 12 (scanner footprint box plot over time)."""

from __future__ import annotations

from repro.experiments import fig12_footprint_boxes


def test_fig12_footprint_boxes(once):
    result = once(fig12_footprint_boxes.run)
    print("\n" + fig12_footprint_boxes.format_table(result))

    assert len(result.boxes) >= 8, "too few weekly boxes"

    from repro.experiments.common import MIN_QUERIERS

    floor = MIN_QUERIERS.get("M-sampled", 20)
    for box in result.boxes:
        # Quantiles are ordered and above the analyzability floor.
        assert box.p10 <= box.p25 <= box.median <= box.p75 <= box.p90
        assert box.p10 >= floor

    # Fig 12's shape: the upper tail reaches far above the typical
    # scanner ("a few very large scanners come and go, while a core of
    # slower scanners are always present").  With tens (not hundreds) of
    # scanners per window, quantile noise affects the median too, so the
    # shape tests are: big excursions exist in the p90 series, and the
    # p90 series is at least comparably volatile to the median.
    import numpy as np

    medians = np.array([b.median for b in result.boxes])
    p90s = np.array([b.p90 for b in result.boxes])
    assert p90s.max() > 2.0 * np.median(medians)
    assert result.volatility("p90") > 0.5 * result.volatility("median")
