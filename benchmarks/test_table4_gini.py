"""Bench: regenerate Table IV (top discriminative features by Gini)."""

from __future__ import annotations

from repro.experiments import table4_gini


def test_table4_gini(once):
    rows = once(table4_gini.run)
    print("\n" + table4_gini.format_table(rows))
    by_dataset: dict[str, list] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, []).append(row)

    for dataset, ranked in by_dataset.items():
        features = [r.feature for r in ranked]
        # The paper's top features are dominated by querier-name statics
        # (mail, home, nxdomain, unreach) with a dynamic feature or two
        # (global entropy / query rate) among them.
        statics = [f for f in features if f.startswith("static_")]
        assert len(statics) >= 2, dataset
        assert "static_mail" in features, dataset
        # Importances are positive and ranked descending.
        ginis = [r.gini for r in ranked]
        assert all(g > 0 for g in ginis)
        assert ginis == sorted(ginis, reverse=True)

    # Model-agnostic cross-check: the Gini-top features also carry
    # held-out predictive power under permutation importance.
    drops = table4_gini.cross_check("JP-ditl")
    top_features = [r.feature for r in by_dataset["JP-ditl"][:3]]
    assert any(drops[f] > 0.01 for f in top_features), {
        f: round(drops[f], 3) for f in top_features
    }
