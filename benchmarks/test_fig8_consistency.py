"""Bench: regenerate Figure 8 (classification consistency CDF)."""

from __future__ import annotations

from repro.experiments import fig8_consistency


def test_fig8_consistency(once):
    result = once(fig8_consistency.run)
    print("\n" + fig8_consistency.format_table(result))

    thresholds = sorted(result.by_threshold)
    assert thresholds[0] == 20

    # Some originators qualify at every threshold that has data.
    populated = [q for q in thresholds if result.by_threshold[q]]
    assert 20 in populated

    # The paper's headline: almost all originators (85-90%) have a
    # strict-majority class.
    assert result.majority_fraction(20) > 0.7

    # More queriers -> more consistent: the fully-consistent fraction at
    # the highest populated threshold is at least that at q=20.
    def consistent_fraction(q: int) -> float:
        records = result.by_threshold[q]
        if not records:
            return 1.0
        return sum(1 for r in records if r.r >= 0.999) / len(records)

    top = populated[-1]
    assert consistent_fraction(top) >= consistent_fraction(20) - 0.1

    # r is a valid ratio everywhere.
    for records in result.by_threshold.values():
        for record in records:
            assert 0.0 < record.r <= 1.0
            assert record.appearances >= 4
