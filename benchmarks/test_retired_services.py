"""Bench: retired-service detection (§ VI-B's sticky-client observation)."""

from __future__ import annotations

import pytest

from repro.analysis.retired import retirement_experiment
from repro.experiments.common import format_rows
from repro.netmodel import World, WorldConfig


@pytest.fixture(scope="module")
def retired_world():
    return World(WorldConfig(seed=61, scale=0.7))


def test_retired_services_stay_visible_and_decay(once, retired_world):
    study = once(retirement_experiment, retired_world)
    print("\n" + format_rows(
        ["service", "class", "retired day", "weekly footprints"],
        [
            [
                hex(service.originator),
                service.app_class,
                f"{service.retired_day:.0f}",
                " ".join(str(f) for f in service.weekly_footprints),
            ]
            for service in study.services
        ],
    ))
    assert len(study.services) >= 3

    for service in study.services:
        # The dead service keeps appearing at the sensor for weeks —
        # the paper found retired root servers visible years later.
        assert service.weeks_visible_after_retirement(threshold=10) >= 4, (
            service.app_class
        )
        # And its footprint trends down as sticky clients get fixed.
        assert service.decays_after_retirement(), service.app_class
        # Pre-retirement footprint clearly exceeds the late tail.
        retired_week = int(service.retired_day // 7)
        before = max(service.weekly_footprints[:retired_week])
        tail = service.weekly_footprints[-2:]
        assert before > max(tail), service.app_class
