"""Bench: regenerate Table V (originators per class per dataset)."""

from __future__ import annotations

from repro.experiments import table5_class_counts


def test_table5_class_counts(once):
    rows = once(table5_class_counts.run)
    print("\n" + table5_class_counts.format_table(rows))
    by_name = {row.dataset: row for row in rows}

    # Spam is the largest class at the JP vantage (Table V: 5083 of ~9.7k).
    jp = by_name["JP-ditl"]
    assert jp.counts.get("spam", 0) == max(jp.counts.values())

    # Long-term sampled data accumulates far more malicious originators
    # than a 2-day snapshot (churn; Table V: 47k scan / 34k spam).
    m_long = by_name["M-sampled"]
    m_short = by_name["M-ditl"]
    assert m_long.counts.get("scan", 0) > m_short.counts.get("scan", 0)
    assert m_long.counts.get("spam", 0) > m_short.counts.get("spam", 0)

    # scan+spam dominate the long dataset.
    malicious = m_long.counts.get("scan", 0) + m_long.counts.get("spam", 0)
    assert malicious > 0.35 * m_long.total

    # Every dataset classified a meaningful population.
    for row in rows:
        assert row.total >= 50, row.dataset
