"""Bench: regenerate Table VI (labeled ground-truth counts per class)."""

from __future__ import annotations

from repro.experiments import table6_groundtruth


def test_table6_groundtruth(once):
    rows = once(table6_groundtruth.run)
    print("\n" + table6_groundtruth.format_table(rows))
    by_name = {row.dataset: row for row in rows}

    for row in rows:
        # A usable labeled set: the paper has 180-750 per dataset; our
        # scaled worlds must still produce scores of verified examples.
        assert row.total >= 30, row.dataset
        # Several distinct classes are represented.
        assert len([c for c, n in row.counts.items() if n > 0]) >= 5, row.dataset

    # mail and spam are among the best-covered classes (Table VI: 44-136).
    for row in rows:
        top3 = sorted(row.counts.values(), reverse=True)[:3]
        assert row.counts.get("spam", 0) in top3 or row.counts.get("mail", 0) in top3

    # update is rare and JP-only (5-6 examples; dashes elsewhere).
    assert by_name["JP-ditl"].counts.get("update", 0) >= 1
    assert by_name["M-ditl"].counts.get("update", 0) <= by_name["JP-ditl"].counts.get("update", 0) + 2
