"""Ablation: the dedup window and the analyzability threshold.

DESIGN.md § 5: vary the 30 s duplicate-elimination window (0/30/300 s)
and the 20-querier analyzability bar (q in {5, 20, 50, 100}).
"""

from __future__ import annotations

from repro.datasets.generate import get_dataset
from repro.experiments.common import format_rows
from repro.sensor.collection import collect_window
from repro.sensor.selection import analyzable


def test_ablation_dedup_window(once):
    dataset = get_dataset("JP-ditl")
    entries = list(dataset.sensor.log)

    def sweep():
        rows = []
        for window_seconds in (0.0, 30.0, 300.0):
            window = collect_window(
                entries, 0.0, dataset.duration_seconds, dedup_window=window_seconds
            )
            total = sum(o.query_count for o in window.observations.values())
            queriers = sum(o.footprint for o in window.observations.values())
            rows.append((window_seconds, total, total / queriers))
        return rows

    rows = once(sweep)
    print("\n" + format_rows(
        ["dedup window (s)", "queries kept", "queries/querier"],
        [[f"{w:.0f}", t, f"{r:.2f}"] for w, t, r in rows],
    ))
    kept = {w: t for w, t, _ in rows}
    # Wider windows strictly remove more (or equal) queries, and the
    # querier *sets* are untouched — only rates change.
    assert kept[0.0] >= kept[30.0] >= kept[300.0]
    assert kept[300.0] > 0


def test_ablation_analyzability_threshold(once):
    dataset = get_dataset("JP-ditl")
    entries = list(dataset.sensor.log)
    window = collect_window(entries, 0.0, dataset.duration_seconds)

    def sweep():
        return {
            q: len(analyzable(window, min_queriers=q)) for q in (5, 20, 50, 100)
        }

    counts = once(sweep)
    print("\n" + format_rows(
        ["q (min queriers)", "analyzable originators"],
        [[q, n] for q, n in sorted(counts.items())],
    ))
    # Raising the bar monotonically trims the population.  (On weekly
    # M-sampled windows the paper's trim is dramatic — 6533 vs 308 in
    # Fig 8's legend — but an unsampled national vantage like JP-ditl
    # sees most of each originator's queriers, so the drop is gentler.)
    assert counts[5] >= counts[20] >= counts[50] >= counts[100]
    assert counts[20] > counts[100]
    assert counts[100] > 0
