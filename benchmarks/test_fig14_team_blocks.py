"""Bench: regenerate Figure 14 + § VI-B team statistics (/24 scan teams)."""

from __future__ import annotations

from repro.experiments import fig14_teams


def test_fig14_team_blocks(once):
    result = once(fig14_teams.run)
    print("\n" + fig14_teams.format_table(result))
    summary = result.summary

    # Scanning exists and spreads over multiple /24s.
    assert summary.scan_originators > 20
    assert summary.scan_blocks > 10

    # § VI-B's funnel: only a minority of scanning blocks host 4+ scanner
    # IPs.  The paper's 47k-originator population yields 39 single-class
    # blocks out of 167 candidates; with our 1-3 candidate blocks we
    # assert the purity signature instead of demanding a perfect block:
    # the best candidate is strongly scan-dominated.
    assert 0 < summary.blocks_with_4plus < summary.scan_blocks
    assert summary.single_class_teams <= summary.blocks_with_4plus
    assert summary.best_block_purity >= 0.6

    # The example team blocks carry concurrent members over time.
    assert result.block_series
    best = max(
        result.block_series.values(),
        key=lambda series: max((c for _, c in series), default=0),
    )
    assert max(c for _, c in best) >= 3


def test_team_coactivity(once):
    """§ VI-B's "closer examination": candidate teams are temporally
    coordinated — their members' active weeks overlap far more than
    random cross-block scanner pairs."""
    from repro.analysis.coordination import team_coactivity
    from repro.experiments.common import windowed

    analysis = windowed("M-sampled")
    teams = once(team_coactivity, analysis)
    print("\n" + "\n".join(
        f"block {t.block:#x}: members={t.members} coactivity={t.coactivity:.2f} "
        f"baseline={t.baseline:.2f} lift={t.lift:.1f}"
        for t in teams
    ))
    assert teams, "no candidate teams found"
    best = max(teams, key=lambda t: t.lift)
    assert best.lift > 1.2
