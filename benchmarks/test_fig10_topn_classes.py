"""Bench: regenerate Figure 10 (class mix of top-N originators)."""

from __future__ import annotations

from repro.experiments import fig10_topn


def test_fig10_topn_classes(once):
    result = once(fig10_topn.run)
    print("\n" + fig10_topn.format_table(result))

    # § VI-B: big footprints are unsavory.  At the JP vantage the top-100
    # is dominated by spam; malicious classes are prominent at roots too.
    jp_top100 = result.mix("JP-ditl", 100)
    assert jp_top100.fraction("spam") >= 0.2
    assert jp_top100.fraction("spam") + jp_top100.fraction("scan") >= 0.3

    for dataset in ("B-post-ditl", "M-ditl"):
        top100 = result.mix(dataset, 100)
        assert top100.fraction("scan") + top100.fraction("spam") > 0.15, dataset

    # Crawlers run many small parallel workers: they gain share only in
    # the widest cut (paper: 554 in top-10000 vs 3 in top-1000).
    for dataset in ("B-post-ditl", "M-ditl"):
        assert (
            result.mix(dataset, 10_000).fraction("crawler")
            >= result.mix(dataset, 100).fraction("crawler")
        ), dataset

    # Fractions are distributions.
    for mix in result.mixes.values():
        assert abs(sum(mix.fractions.values()) - 1.0) < 1e-9
