"""Micro-benchmarks: throughput of the pipeline's hot components.

Unlike the table/figure benches (one-shot regenerations), these use
pytest-benchmark's normal timing loops on the inner building blocks, so
regressions in the substrate show up directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnssim import PtrRecordSpec, TtlCache
from repro.dnssim.message import QueryLogEntry
from repro.ml import ForestConfig, RandomForestClassifier
from repro.netmodel import QuerierRole, World, WorldConfig
from repro.sensor.collection import collect_window, dedup_entries
from repro.sensor.directory import WorldDirectory
from repro.sensor.features import extract_features


@pytest.fixture(scope="module")
def perf_world():
    return World(WorldConfig(seed=1, scale=0.5))


def test_perf_ttl_cache(benchmark):
    cache: TtlCache[int, int] = TtlCache()

    def churn():
        for i in range(1000):
            cache.put(i % 128, i, ttl=50.0, now=float(i))
            cache.get((i * 7) % 128, now=float(i))

    benchmark(churn)


def test_perf_resolve_ptr(benchmark, perf_world):
    from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy

    hierarchy = DnsHierarchy(perf_world, seed=2)
    hierarchy.attach_root(
        Authority(name="b", level=AuthorityLevel.ROOT, root_letter="b")
    )
    originator = (1 << 24) | 42
    hierarchy.register_originator(originator, PtrRecordSpec(ttl=30.0))
    indices = perf_world.indices_for_role(QuerierRole.MAIL)[:500]
    queriers = [perf_world.queriers[i] for i in indices]
    clock = iter(range(10**9))

    def resolve_batch():
        for querier in queriers:
            hierarchy.resolve_ptr(querier, originator, float(next(clock)))

    benchmark(resolve_batch)


def test_perf_dedup(benchmark):
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, 86400, 20_000))
    entries = [
        QueryLogEntry(timestamp=float(t), querier=int(rng.integers(500)), originator=7)
        for t in times
    ]
    benchmark(dedup_entries, entries)


def test_perf_feature_extraction(benchmark, perf_world):
    rng = np.random.default_rng(3)
    directory = WorldDirectory(perf_world)
    entries = []
    queriers = [q.addr for q in perf_world.queriers[:2000]]
    for originator in range(50):
        picks = rng.choice(len(queriers), size=60, replace=False)
        for k, pick in enumerate(picks):
            entries.append(
                QueryLogEntry(
                    timestamp=float(k * 137 + originator),
                    querier=queriers[int(pick)],
                    originator=(2 << 24) | originator,
                )
            )
    entries.sort(key=lambda e: e.timestamp)
    window = collect_window(entries, 0.0, 86400.0)
    benchmark(extract_features, window, directory, 20)


def test_perf_forest_fit_predict(benchmark):
    rng = np.random.default_rng(4)
    X = rng.normal(size=(250, 22))
    y = rng.integers(0, 12, size=250)

    def fit_predict():
        forest = RandomForestClassifier(ForestConfig(n_trees=30), seed=0)
        forest.fit(X, y)
        return forest.predict(X)

    benchmark(fit_predict)
