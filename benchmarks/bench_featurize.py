"""Featurization benchmark: serial vs. cached vs. parallel rows/s.

Generates a B-long window (the paper's week-long BINY vantage), runs the
featurize stage three ways, and writes ``BENCH_featurize.json``:

* **serial** — the scalar reference path with no shared cache: every
  call re-resolves its queriers through the directory, equivalent to the
  pre-vectorization per-originator loop;
* **cached** — :func:`features_from_selected` with ``workers=1``: one
  window-scoped :class:`EnrichmentCache` plus vectorized array math;
* **parallel** — the same with ``--workers`` processes (fork fan-out).

Each mode reports rows/s from the best of ``--rounds`` runs, and the
parallel matrix is checked bit-identical against the cached one.  A
fourth measurement re-runs the cached mode with a live
:class:`repro.telemetry.MetricsRegistry` installed and reports the
overhead of active telemetry (``--assert-overhead PCT`` turns it into
a pass/fail gate; ``--metrics-out`` writes the collected snapshot).
Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_featurize.py --quick

``--quick`` uses the tiny dataset preset so CI can smoke-test the
harness in seconds; real trend numbers come from the default preset.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.datasets.generate import get_dataset
from repro.experiments.common import sensor_config
from repro.sensor.directory import EnrichmentCache
from repro.sensor.dynamic import WindowContext
from repro.sensor.engine import SensorEngine
from repro.sensor.features import feature_vector, features_from_selected
from repro.sensor.selection import analyzable
from repro.telemetry import MetricsRegistry, use_registry, write_metrics


def _best_of(rounds: int, run) -> tuple[float, object]:
    """Minimum wall time over *rounds* calls (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="B-long", help="dataset name")
    parser.add_argument(
        "--preset",
        default="default",
        choices=("default", "tiny"),
        help="dataset preset (tiny = CI smoke scale)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorthand for --preset tiny --rounds 2"
    )
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per mode")
    parser.add_argument(
        "-o", "--output", default="BENCH_featurize.json", help="output JSON path"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the telemetry snapshot collected during the "
        "instrumented runs here (format inferred from the suffix)",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if live telemetry slows the cached mode by more "
        "than PCT percent",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.preset = "tiny"
        args.rounds = min(args.rounds, 2)

    print(f"generating {args.dataset} (preset={args.preset}) …", flush=True)
    dataset = get_dataset(args.dataset, args.preset)
    directory = dataset.directory()
    config = sensor_config(args.dataset, args.preset)
    engine = SensorEngine(directory, config)
    window = engine.collect(dataset.sensor.log, 0.0, config.window_seconds)
    selected = analyzable(window, config.min_queriers)
    queriers: set[int] = set()
    for observation in window.observations.values():
        queriers |= observation.unique_queriers
    print(
        f"window: {len(window)} originators, {len(selected)} analyzable, "
        f"{len(queriers)} distinct queriers",
        flush=True,
    )
    if not selected:
        print("no analyzable originators; nothing to benchmark", file=sys.stderr)
        return 1

    def run_serial() -> np.ndarray:
        # Pre-vectorization equivalent: no shared cache, scalar per-row loop.
        context = WindowContext.from_window(window, EnrichmentCache(directory))
        return np.vstack(
            [feature_vector(o, directory, context) for o in selected]
        )

    def run_cached() -> np.ndarray:
        return features_from_selected(window, selected, directory, workers=1).matrix

    def run_parallel() -> np.ndarray:
        return features_from_selected(
            window, selected, directory, workers=args.workers
        ).matrix

    rows = len(selected)
    modes: dict[str, dict[str, float]] = {}
    matrices: dict[str, np.ndarray] = {}
    for name, run in (
        ("serial", run_serial),
        ("cached", run_cached),
        ("parallel", run_parallel),
    ):
        seconds, matrix = _best_of(args.rounds, run)
        matrices[name] = matrix
        modes[name] = {
            "seconds": round(seconds, 6),
            "rows_per_s": round(rows / seconds, 2),
        }
        print(f"{name:>8}: {seconds:.3f}s  {rows / seconds:,.0f} rows/s", flush=True)

    identical = bool(np.array_equal(matrices["cached"], matrices["parallel"]))

    # Telemetry overhead: the cached mode again, now with a registry
    # installed so every span/observe hook does real work.  Best-of-N
    # on both sides keeps scheduler noise out of the comparison.
    registry = MetricsRegistry()

    def run_cached_live() -> np.ndarray:
        with use_registry(registry):
            return features_from_selected(
                window, selected, directory, workers=1
            ).matrix

    overhead_rounds = max(args.rounds, 5)
    base_seconds, _ = _best_of(overhead_rounds, run_cached)
    live_seconds, live_matrix = _best_of(overhead_rounds, run_cached_live)
    overhead_pct = (live_seconds / base_seconds - 1.0) * 100.0
    modes["cached_telemetry"] = {
        "seconds": round(live_seconds, 6),
        "rows_per_s": round(rows / live_seconds, 2),
    }
    print(
        f"telemetry: {base_seconds:.3f}s off, {live_seconds:.3f}s on "
        f"({overhead_pct:+.2f}%)",
        flush=True,
    )
    if not np.array_equal(matrices["cached"], live_matrix):
        print("telemetry changed the feature matrix!", file=sys.stderr)
        return 1
    if args.metrics_out:
        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}")

    report = {
        "benchmark": "featurize",
        "dataset": args.dataset,
        "preset": args.preset,
        "rows": rows,
        "distinct_queriers": len(queriers),
        "window_seconds": config.window_seconds,
        "workers": args.workers,
        "rounds": args.rounds,
        "cpu_count": os.cpu_count(),
        "modes": modes,
        "speedup_cached_vs_serial": round(
            modes["serial"]["seconds"] / modes["cached"]["seconds"], 2
        ),
        "speedup_parallel_vs_serial": round(
            modes["serial"]["seconds"] / modes["parallel"]["seconds"], 2
        ),
        "parallel_bit_identical": identical,
        "telemetry_overhead_pct": round(overhead_pct, 2),
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical:
        print("parallel output differs from serial!", file=sys.stderr)
        return 1
    if args.assert_overhead is not None and overhead_pct > args.assert_overhead:
        print(
            f"telemetry overhead {overhead_pct:.2f}% exceeds the "
            f"{args.assert_overhead:.2f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
