"""Featurization benchmark: serial vs. cached vs. parallel rows/s.

Generates a B-long window (the paper's week-long BINY vantage), runs the
featurize stage three ways, and writes ``BENCH_featurize.json``:

* **serial** — the scalar reference path with no shared cache: every
  call re-resolves its queriers through the directory, equivalent to the
  pre-vectorization per-originator loop;
* **cached** — :func:`features_from_selected` with ``workers=1``: one
  window-scoped :class:`EnrichmentCache` plus vectorized array math;
* **parallel** — the same with ``--workers`` processes (fork fan-out).

Each mode reports rows/s from the best of ``--rounds`` runs, and the
parallel matrix is checked bit-identical against the cached one.  Run
from the repo root::

    PYTHONPATH=src python benchmarks/bench_featurize.py --quick

``--quick`` uses the tiny dataset preset so CI can smoke-test the
harness in seconds; real trend numbers come from the default preset.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.datasets.generate import get_dataset
from repro.experiments.common import sensor_config
from repro.sensor.directory import EnrichmentCache
from repro.sensor.dynamic import WindowContext
from repro.sensor.engine import SensorEngine
from repro.sensor.features import feature_vector, features_from_selected
from repro.sensor.selection import analyzable


def _best_of(rounds: int, run) -> tuple[float, object]:
    """Minimum wall time over *rounds* calls (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="B-long", help="dataset name")
    parser.add_argument(
        "--preset",
        default="default",
        choices=("default", "tiny"),
        help="dataset preset (tiny = CI smoke scale)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorthand for --preset tiny --rounds 2"
    )
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per mode")
    parser.add_argument(
        "-o", "--output", default="BENCH_featurize.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.preset = "tiny"
        args.rounds = min(args.rounds, 2)

    print(f"generating {args.dataset} (preset={args.preset}) …", flush=True)
    dataset = get_dataset(args.dataset, args.preset)
    directory = dataset.directory()
    config = sensor_config(args.dataset, args.preset)
    engine = SensorEngine(directory, config)
    window = engine.collect(dataset.sensor.log, 0.0, config.window_seconds)
    selected = analyzable(window, config.min_queriers)
    queriers: set[int] = set()
    for observation in window.observations.values():
        queriers |= observation.unique_queriers
    print(
        f"window: {len(window)} originators, {len(selected)} analyzable, "
        f"{len(queriers)} distinct queriers",
        flush=True,
    )
    if not selected:
        print("no analyzable originators; nothing to benchmark", file=sys.stderr)
        return 1

    def run_serial() -> np.ndarray:
        # Pre-vectorization equivalent: no shared cache, scalar per-row loop.
        context = WindowContext.from_window(window, EnrichmentCache(directory))
        return np.vstack(
            [feature_vector(o, directory, context) for o in selected]
        )

    def run_cached() -> np.ndarray:
        return features_from_selected(window, selected, directory, workers=1).matrix

    def run_parallel() -> np.ndarray:
        return features_from_selected(
            window, selected, directory, workers=args.workers
        ).matrix

    rows = len(selected)
    modes: dict[str, dict[str, float]] = {}
    matrices: dict[str, np.ndarray] = {}
    for name, run in (
        ("serial", run_serial),
        ("cached", run_cached),
        ("parallel", run_parallel),
    ):
        seconds, matrix = _best_of(args.rounds, run)
        matrices[name] = matrix
        modes[name] = {
            "seconds": round(seconds, 6),
            "rows_per_s": round(rows / seconds, 2),
        }
        print(f"{name:>8}: {seconds:.3f}s  {rows / seconds:,.0f} rows/s", flush=True)

    identical = bool(np.array_equal(matrices["cached"], matrices["parallel"]))
    report = {
        "benchmark": "featurize",
        "dataset": args.dataset,
        "preset": args.preset,
        "rows": rows,
        "distinct_queriers": len(queriers),
        "window_seconds": config.window_seconds,
        "workers": args.workers,
        "rounds": args.rounds,
        "cpu_count": os.cpu_count(),
        "modes": modes,
        "speedup_cached_vs_serial": round(
            modes["serial"]["seconds"] / modes["cached"]["seconds"], 2
        ),
        "speedup_parallel_vs_serial": round(
            modes["serial"]["seconds"] / modes["parallel"]["seconds"], 2
        ),
        "parallel_bit_identical": identical,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical:
        print("parallel output differs from serial!", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
