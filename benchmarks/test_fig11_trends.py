"""Bench: regenerate Figure 11 (originators over time, Heartbleed bump)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig11_trends


def test_fig11_trends(once):
    result = once(fig11_trends.run)
    print("\n" + fig11_trends.format_table(result))

    classified = [(d, c, t) for d, c, t in result.series if t > 0]
    assert len(classified) >= 10, "too few classified windows"

    # A continuous background of scanning: scan appears in almost every
    # classified window.
    scan_windows = [c.get("scan", 0) for _, c, t in classified]
    assert sum(1 for s in scan_windows if s > 0) >= 0.8 * len(classified)

    # scan and spam are the dominant classes overall (Fig 11's big bands).
    totals: dict[str, int] = {}
    for _, counts, _ in classified:
        for name, value in counts.items():
            totals[name] = totals.get(name, 0) + value
    ranked = sorted(totals, key=lambda k: -totals[k])
    assert set(ranked[:3]) & {"scan", "spam"}

    # The Heartbleed announcement produces a visible scan bump (paper:
    # >25% over the standing background).
    bump = result.heartbleed_bump()
    assert np.isfinite(bump)
    assert bump > 1.1
