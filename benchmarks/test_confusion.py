"""Bench: per-class confusion structure (§ IV-C's misclassification notes)."""

from __future__ import annotations

import numpy as np

from repro.experiments import confusion


def test_confusion_structure(once):
    result = once(confusion.run, "JP-ditl", 15)
    print("\n" + confusion.format_table(result))

    recalls = {record.app_class: record.recall for record in result.per_class}
    supports = {record.app_class: record.support for record in result.per_class}

    # The big, well-trained classes are recalled reliably.
    for name in ("spam", "mail"):
        assert recalls.get(name, 0) > 0.6, name

    # § IV-C: mislabeling concentrates where training data is sparse —
    # the weakest classes have below-median support.
    ordered = sorted(result.per_class, key=lambda r: r.recall)
    weakest = [r.app_class for r in ordered[:3]]
    median_support = float(np.median(list(supports.values())))
    assert any(supports[name] <= median_support for name in weakest), (
        weakest,
        supports,
    )

    # § IV-C: "p2p is sometimes misclassified as scan" — the confusion
    # exists and is directional enough to notice.
    if "p2p" in result.classes and "scan" in result.classes:
        assert result.confusion("p2p", "scan") > 0.0

    # The matrix is a proper aggregate: rows sum to repeated test folds.
    assert result.matrix.sum() > 0
    assert (result.matrix >= 0).all()
