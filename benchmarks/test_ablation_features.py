"""Ablation: feature groups and class granularity.

DESIGN.md § 5: train on static-only / dynamic-only / both, and compare
the 12-class problem against a merged 3-group problem (the paper: "we
see higher accuracy with fewer application classes").
"""

from __future__ import annotations

import numpy as np

from repro.activity.classes import MALICIOUS_CLASSES
from repro.experiments.common import format_rows, labeled_features
from repro.ml import RandomForestClassifier, repeated_holdout
from repro.sensor.features import FEATURE_NAMES
from repro.sensor.static import STATIC_FEATURE_NAMES

REPEATS = 10


def _holdout(X, y, n_classes, seed=0):
    return repeated_holdout(
        lambda s: RandomForestClassifier(seed=s), X, y, n_classes,
        repeats=REPEATS, seed=seed,
    )


def test_ablation_feature_groups(once):
    bundle = labeled_features("JP-ditl")
    n_static = len(STATIC_FEATURE_NAMES)

    def run_all():
        full = _holdout(bundle.X, bundle.y, bundle.n_classes)
        static_only = _holdout(bundle.X[:, :n_static], bundle.y, bundle.n_classes)
        dynamic_only = _holdout(bundle.X[:, n_static:], bundle.y, bundle.n_classes)
        return full, static_only, dynamic_only

    full, static_only, dynamic_only = once(run_all)
    print("\n" + format_rows(
        ["features", "count", "accuracy", "f1"],
        [
            ["static+dynamic", len(FEATURE_NAMES), f"{full.accuracy_mean:.2f}", f"{full.f1_mean:.2f}"],
            ["static only", n_static, f"{static_only.accuracy_mean:.2f}", f"{static_only.f1_mean:.2f}"],
            ["dynamic only", len(FEATURE_NAMES) - n_static, f"{dynamic_only.accuracy_mean:.2f}", f"{dynamic_only.f1_mean:.2f}"],
        ],
    ))
    # Each group alone carries real signal; the combination is at least
    # as good as either (the paper uses both for a reason).
    assert static_only.accuracy_mean > 0.3
    assert dynamic_only.accuracy_mean > 0.3
    assert full.accuracy_mean >= max(static_only.accuracy_mean, dynamic_only.accuracy_mean) - 0.03


def test_ablation_class_granularity(once):
    bundle = labeled_features("JP-ditl")
    names = bundle.encoder.decode(bundle.y)

    def group(name: str) -> int:
        if name in MALICIOUS_CLASSES:
            return 0
        if name in ("ad-tracker", "p2p"):
            return 1  # gray
        return 2  # benign infrastructure

    y3 = np.array([group(n) for n in names])

    def run_both():
        fine = _holdout(bundle.X, bundle.y, bundle.n_classes)
        coarse = _holdout(bundle.X, y3, 3)
        return fine, coarse

    fine, coarse = once(run_both)
    print("\n" + format_rows(
        ["classes", "accuracy", "f1"],
        [
            ["12 (paper)", f"{fine.accuracy_mean:.2f}", f"{fine.f1_mean:.2f}"],
            ["3 (merged)", f"{coarse.accuracy_mean:.2f}", f"{coarse.f1_mean:.2f}"],
        ],
    ))
    # The paper's omitted-for-space observation: fewer classes -> higher
    # accuracy, at the cost of less useful output.
    assert coarse.accuracy_mean > fine.accuracy_mean
