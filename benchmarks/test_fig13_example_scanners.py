"""Bench: regenerate Figure 13 (example scanners over time)."""

from __future__ import annotations

from repro.experiments import fig13_example_scanners


def test_fig13_example_scanners(once):
    examples = once(fig13_example_scanners.run)
    print("\n" + fig13_example_scanners.format_table(examples))
    by_label = {e.label: e for e in examples}

    assert len(examples) >= 3, "too few example scanners found"

    # The persistent ssh scanner is long-lived (paper: present the whole
    # nine months) and carries a large footprint.
    from repro.experiments.common import MIN_QUERIERS

    ssh = by_label.get("tcp22 (persistent)")
    assert ssh is not None
    assert ssh.weeks_active >= 8
    assert ssh.peak_footprint >= MIN_QUERIERS.get("M-sampled", 20)

    # The Heartbleed-driven tcp443 scanners are transient (paper: one
    # week in April).
    heartbleed = by_label.get("tcp443 (heartbleed)")
    if heartbleed is not None and heartbleed.series:
        assert heartbleed.weeks_active < ssh.weeks_active

    # At least one of the examples is also darknet-confirmed, anchoring
    # the classification to external evidence.
    assert any(e.darknet_confirmed for e in examples)
