"""Bench: regenerate Figure 3 (static features of the six case studies)."""

from __future__ import annotations

from repro.experiments import case_studies


def test_fig3_static_features(once):
    cases = once(case_studies.run)
    print("\n" + case_studies.format_static(cases))
    by_label = {c.label: c for c in cases}
    assert {"cdn", "mail", "spam"} <= set(by_label), "core case studies missing"

    # Fig 3's qualitative shapes:
    # cdn ranks among the home-heaviest case studies (each case is one
    # sampled originator, so we require top-2 rather than strict max),
    home_ranked = sorted(by_label, key=lambda l: -by_label[l].static["home"])
    assert "cdn" in home_ranked[:2], home_ranked
    others_mean = sum(
        case.static["home"] for label, case in by_label.items() if label != "cdn"
    ) / (len(by_label) - 1)
    assert by_label["cdn"].static["home"] > others_mean
    # mail and spam are mail-heavy relative to everything else,
    for mail_like in ("mail", "spam"):
        others = [c.static["mail"] for l, c in by_label.items() if l not in ("mail", "spam")]
        assert by_label[mail_like].static["mail"] > max(others)
    # scanners show a visible nxdomain fraction (they sweep unmanaged space),
    for scan_label in ("scan-icmp", "scan-ssh"):
        if scan_label in by_label:
            assert by_label[scan_label].static["nxdomain"] > 0.05
    # and every static vector is a distribution.
    for case in cases:
        assert abs(sum(case.static.values()) - 1.0) < 1e-9
