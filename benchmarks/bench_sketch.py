"""Sketch pre-stage benchmark: exact vs. probabilistic windowing memory.

Builds a synthetic heavy-tailed backscatter log (a few very loud
originators, a long tail of quiet ones — the regime § III-B's
analyzability gate exists for), runs the window + select stages of
:class:`repro.sensor.engine.SensorEngine` both ways, and writes
``BENCH_sketch.json``:

* **exact** — the default path: every originator materializes exact
  per-querier state, then the gate drops the tail;
* **sketch** — ``sketch_enabled=True``: the pre-stage summarizes every
  event in constant memory, only approximate-gate survivors materialize
  exact state (two-pass batch mode, survivor features bit-identical).

Each mode reports events/s (best of ``--rounds`` timed runs) and peak
incremental memory from a separate ``tracemalloc`` run, plus the gate
agreement between the two paths (selected sets, false drops).  A width
frontier re-runs the sketch mode across count-min widths, and a
streaming section times the same log through the single-pass chunked
block path (exact vs sketch — the pre-stage's array-native
``observe_arrays`` verdict core) with the promotion resolver's
wholesale/replayed split.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sketch.py --quick

``--quick`` shrinks the workload so CI can smoke-test the harness in
seconds; ``--assert-memory`` fails the run unless the sketch mode's
peak memory stays below the exact baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
import tracemalloc
from pathlib import Path

from repro.dnssim.message import QueryLogEntry
from repro.logstore import EntryBlock
from repro.sensor.engine import SensorConfig, SensorEngine
from repro.sensor.selection import analyzable

WINDOW_SECONDS = 86400.0


def synthetic_log(
    events_target: int, min_queriers: int, seed: int
) -> list[QueryLogEntry]:
    """A time-ordered, tail-dominated backscatter day.

    A small head of loud originators (hundreds of queriers each —
    scanners and spammers) over a large tail of sub-gate originators
    that collectively holds ~70% of the events.  Tail footprints are
    exponentially skewed — mostly one or two queriers, vanishingly few
    near the analyzability bar — matching the heavy-tailed originator
    distribution backscatter actually shows.  This is the regime the
    § III-B gate exists for: the exact path materializes per-querier
    state for the whole tail only to drop it at select, while the sketch
    pre-stage summarizes it in constant memory.  Each querier issues one
    or two queries (the second inside the 30 s dedup horizon) at uniform
    times.
    """
    rng = random.Random(seed)
    n_tail = max(1, int(0.7 * events_target / (1.4 * 2.0)))
    n_head = max(10, int(0.3 * events_target / (1.4 * 175)))
    events: list[tuple[float, int, int]] = []
    for rank in range(n_head + n_tail):
        originator = 0x0A000000 + rank
        if rank < n_head:
            footprint = rng.randint(100, 250)
        else:
            footprint = min(1 + int(rng.expovariate(1.0)), max(1, min_queriers - 1))
        for q in range(footprint):
            querier = 0xC0000000 + (rank * 131_071 + q * 8_191) % 2_000_003
            timestamp = rng.random() * WINDOW_SECONDS
            events.append((timestamp, querier, originator))
            if rng.random() < 0.4:  # in-horizon duplicate for the dedup stage
                events.append(
                    (
                        min(timestamp + rng.random() * 25.0, WINDOW_SECONDS - 1e-6),
                        querier,
                        originator,
                    )
                )
    events.sort()
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in events]


def run_mode(config: SensorConfig, entries: list[QueryLogEntry]):
    """One window + select pass; returns (window, selected)."""
    engine = SensorEngine(config=config)
    window = engine.windows(entries, 0.0, WINDOW_SECONDS)[0]
    return window, analyzable(window, config.min_queriers)


def run_streaming(config: SensorConfig, block: EntryBlock, chunk: int):
    """Single-pass chunked block ingest; returns the sensed windows."""
    engine = SensorEngine(config=config)
    windows = []
    for offset in range(0, len(block), chunk):
        engine.ingest_block(block[offset : offset + chunk])
        windows.extend(engine.poll(classify=False))
    windows.extend(engine.finish(classify=False))
    return windows


def timed(rounds: int, config: SensorConfig, entries: list[QueryLogEntry]):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_mode(config, entries)
        best = min(best, time.perf_counter() - t0)
    return best, result


def timed_streaming(rounds: int, config: SensorConfig, block: EntryBlock, chunk: int):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_streaming(config, block, chunk)
        best = min(best, time.perf_counter() - t0)
    return best, result


def peak_memory(config: SensorConfig, entries: list[QueryLogEntry]) -> int:
    """Peak incremental bytes of one window + select pass.

    The input log is allocated before tracing starts, so the peak
    measures pipeline state (observations, dedup state, sketches), which
    is what the two modes differ on.
    """
    tracemalloc.start()
    try:
        run_mode(config, entries)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000, help="target event count")
    parser.add_argument("--min-queriers", type=int, default=10, help="analyzability bar")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per mode")
    parser.add_argument(
        "--widths",
        type=int,
        nargs="*",
        default=[1024, 4096, 16384],
        help="count-min widths for the sketch frontier",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (small log, 2 rounds)"
    )
    parser.add_argument(
        "--assert-memory",
        action="store_true",
        help="fail unless sketch peak memory < exact peak memory",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_sketch.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 60_000)
        args.rounds = min(args.rounds, 2)
        args.widths = args.widths[:2]

    print(f"generating ~{args.events:,} events …", flush=True)
    entries = synthetic_log(args.events, args.min_queriers, args.seed)
    print(f"log: {len(entries):,} events", flush=True)

    def config_for(sketch: bool, width: int = 4096) -> SensorConfig:
        return SensorConfig(
            window_seconds=WINDOW_SECONDS,
            min_queriers=args.min_queriers,
            sketch_enabled=sketch,
            sketch_width=width,
            # Size the dedup filter to the workload so its FP budget holds.
            sketch_capacity=max(4096, len(entries)),
        )

    exact_config = config_for(False)
    sketch_config = config_for(True)

    exact_seconds, (exact_window, exact_selected) = timed(
        args.rounds, exact_config, entries
    )
    sketch_seconds, (sketch_window, sketch_selected) = timed(
        args.rounds, sketch_config, entries
    )
    exact_peak = peak_memory(exact_config, entries)
    sketch_peak = peak_memory(sketch_config, entries)

    exact_set = {o.originator for o in exact_selected}
    sketch_set = {o.originator for o in sketch_selected}
    footprints = {o: ob.footprint for o, ob in exact_window.observations.items()}
    false_drops = sketch_window.prestage.false_drops(footprints, args.min_queriers)

    def mode_report(seconds: float, peak: int, selected_count: int) -> dict:
        return {
            "seconds": round(seconds, 6),
            "events_per_s": round(len(entries) / seconds, 1),
            "peak_memory_mb": round(peak / 1e6, 3),
            "selected": selected_count,
        }

    report = {
        "benchmark": "sketch",
        "events": len(entries),
        "originators": len(exact_window),
        "min_queriers": args.min_queriers,
        "rounds": args.rounds,
        "cpu_count": os.cpu_count(),
        "exact": mode_report(exact_seconds, exact_peak, len(exact_selected)),
        "sketch": {
            **mode_report(sketch_seconds, sketch_peak, len(sketch_selected)),
            "materialized": len(sketch_window),
            "false_drops": false_drops,
            "selected_matches_exact": sketch_set == exact_set,
            "sketch_memory_bytes": sketch_window.prestage.memory_bytes(),
        },
        "memory_ratio": round(sketch_peak / exact_peak, 3),
        "speed_ratio": round(exact_seconds / sketch_seconds, 3),
    }

    print(
        f"   exact: {exact_seconds:.3f}s  "
        f"{len(entries) / exact_seconds:,.0f} ev/s  "
        f"peak {exact_peak / 1e6:.1f} MB  {len(exact_selected)} selected",
        flush=True,
    )
    print(
        f"  sketch: {sketch_seconds:.3f}s  "
        f"{len(entries) / sketch_seconds:,.0f} ev/s  "
        f"peak {sketch_peak / 1e6:.1f} MB  {len(sketch_selected)} selected  "
        f"({false_drops} false drops)",
        flush=True,
    )

    frontier = []
    for width in args.widths:
        cfg = config_for(True, width=width)
        seconds, (window, selected) = timed(args.rounds, cfg, entries)
        frontier.append(
            {
                "width": width,
                "seconds": round(seconds, 6),
                "events_per_s": round(len(entries) / seconds, 1),
                "selected": len(selected),
                "false_drops": window.prestage.false_drops(
                    footprints, args.min_queriers
                ),
            }
        )
        print(
            f"  width {width:>6}: {seconds:.3f}s  {len(selected)} selected",
            flush=True,
        )
    report["width_frontier"] = frontier

    # Streaming single-pass comparison: the same log chunk-fed through
    # the block ingest path, exact dedup vs the pre-stage's vectorized
    # verdict core (observe_arrays + two-tier promotion resolver).
    block = EntryBlock.from_entries(entries)
    chunk = 5000
    stream_exact_seconds, _ = timed_streaming(args.rounds, exact_config, block, chunk)
    stream_sketch_seconds, stream_windows = timed_streaming(
        args.rounds, sketch_config, block, chunk
    )
    wholesale = sum(
        s.window.prestage.resolver_wholesale
        for s in stream_windows
        if s.window.prestage is not None
    )
    replayed = sum(
        s.window.prestage.resolver_replayed
        for s in stream_windows
        if s.window.prestage is not None
    )
    report["streaming"] = {
        "chunk": chunk,
        "exact": {
            "seconds": round(stream_exact_seconds, 6),
            "events_per_s": round(len(entries) / stream_exact_seconds, 1),
        },
        "sketch": {
            "seconds": round(stream_sketch_seconds, 6),
            "events_per_s": round(len(entries) / stream_sketch_seconds, 1),
            "resolver_wholesale": wholesale,
            "resolver_replayed": replayed,
        },
        "sketch_vs_exact": round(stream_exact_seconds / stream_sketch_seconds, 3),
    }
    print(
        f"  stream exact {len(entries) / stream_exact_seconds:>11,.0f} ev/s   "
        f"sketch {len(entries) / stream_sketch_seconds:>11,.0f} ev/s   "
        f"(resolver: {wholesale:,} wholesale / {replayed:,} replayed)",
        flush=True,
    )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if sketch_set != exact_set and false_drops == 0:
        # Survivor overshoot is impossible (the exact gate reruns), so a
        # mismatch with zero false drops means something is wrong.
        print("selected sets diverge without false drops!", file=sys.stderr)
        return 1
    if args.assert_memory and sketch_peak >= exact_peak:
        print(
            f"sketch peak memory {sketch_peak / 1e6:.1f} MB is not below the "
            f"exact baseline {exact_peak / 1e6:.1f} MB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
