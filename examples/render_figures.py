"""Render paper figures as SVG from fast experiment runs.

Writes a handful of the paper's figures (the ones computable without
month-scale datasets) into ``figures/`` using tiny presets, so the whole
script finishes in well under a minute.  For full-fidelity figures, run
``python -m repro.cli figures -o figures`` (minutes: regenerates the
longitudinal datasets too).

Run:  python examples/render_figures.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import case_studies, fig4_controlled, fig9_footprints
from repro.viz import render_fig3, render_fig4, render_fig9


def main() -> None:
    output = Path("figures")

    print("Fig 4 (controlled scans) …")
    fig4 = fig4_controlled.run(
        fractions=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2), trials_per_fraction=2,
        world_scale=0.6, seed=11,
    )
    print(f"  power-law exponent: {fig4.power:.2f} (paper: 0.71)")
    print(f"  wrote {render_fig4(fig4, output / 'fig4_controlled.svg')}")

    print("Fig 3 (case-study static features, tiny JP-ditl) …")
    cases = case_studies.run(preset="tiny")
    print(f"  wrote {render_fig3(cases, output / 'fig3_static_features.svg')}")

    print("Fig 9 (footprint CCDF, tiny datasets) …")
    curves = fig9_footprints.run(datasets=("JP-ditl", "B-post-ditl"), preset="tiny")
    print(f"  wrote {render_fig9(curves, output / 'fig9_footprints.svg')}")

    print("\nOpen the SVGs in any browser.")


if __name__ == "__main__":
    main()
