"""Building a custom sensor from the substrate APIs.

Shows the lower-level building blocks directly, without the dataset
presets: construct a world, wire a DNS hierarchy with your own vantage
points, launch hand-built campaigns, run the § IV-D controlled caching
experiment, and serialize the log for offline analysis.

Run:  python examples/custom_sensor.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.activity import SimulationEngine, build_campaign
from repro.analysis.controlled import fit_power_law, run_experiment
from repro.datasets import read_log, write_log
from repro.dnssim import Authority, AuthorityLevel, DnsHierarchy, ResolverConfig
from repro.netmodel import World, WorldConfig, ip_to_str
from repro.sensor import SensorConfig, SensorEngine, WorldDirectory


def main() -> None:
    rng = np.random.default_rng(7)
    world = World(WorldConfig(seed=7, scale=0.5))
    print(f"world: {world.summary()}")

    # --- wire a hierarchy with a German national sensor and both roots --
    hierarchy = DnsHierarchy(
        world,
        seed=8,
        resolver_config=ResolverConfig(
            national_warm_shared=0.8, national_warm_self=0.5
        ),
    )
    de_sensor = hierarchy.attach_national(
        Authority(
            name="de-dns",
            level=AuthorityLevel.NATIONAL,
            country="de",
            scope_slash8=frozenset(world.geo.blocks_of("de")),
        )
    )
    hierarchy.attach_root(
        Authority(name="b-root", level=AuthorityLevel.ROOT, root_letter="b")
    )

    # --- hand-build campaigns: a German spammer and a CDN node ----------
    engine = SimulationEngine(world, hierarchy)
    spam = build_campaign(
        world, "spam", rng, start=0.0, duration_days=2.0,
        home_country="de", audience_size=800,
    )
    cdn = build_campaign(
        world, "cdn", rng, start=0.0, duration_days=2.0,
        home_country="de", audience_size=600,
    )
    engine.extend([spam, cdn])
    engine.run(0.0, 2 * 86400.0)
    print(f"\nde-dns observed {len(de_sensor.log)} reverse queries")

    # --- extract features the way the sensor would -----------------------
    directory = WorldDirectory(world)
    sensor = SensorEngine(directory, SensorConfig(min_queriers=10))
    window = sensor.collect(de_sensor.log, 0.0, 2 * 86400.0)
    features = sensor.featurize(window)
    for originator, row in zip(features.originators, features.matrix):
        mail_fraction = row[1]  # static_mail
        home_fraction = row[0]  # static_home
        kind = "spam-like" if mail_fraction > home_fraction else "cdn-like"
        print(
            f"  {ip_to_str(int(originator)):<16} mail={mail_fraction:.2f} "
            f"home={home_fraction:.2f} -> {kind}"
        )

    # --- the § IV-D controlled experiment -------------------------------
    trials = run_experiment(
        world, fractions=(1e-5, 1e-4, 1e-3), trials_per_fraction=2, seed=99
    )
    power, coefficient = fit_power_law(trials)
    print(f"\ncontrolled scans: queriers ~ {coefficient:.2g} * targets^{power:.2f}")

    # --- serialize and reload the sensor log -----------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "de-dns.log"
        count = write_log(path, de_sensor.log)
        reloaded = read_log(path)
        print(f"wrote and reloaded {count} == {len(reloaded)} log lines")


if __name__ == "__main__":
    main()
