"""Detecting scanners — including the ones darknets miss.

The paper's motivating result: DNS backscatter sees *targeted* scans
that never touch a darknet (§ VII).  This example curates labels from
external evidence only (darknet confirmations + DNSBL listings + service
registries, § IV-B / Appendix A), trains the sensor at a root vantage,
and then compares its scanner verdicts against the darknet's view.

Run:  python examples/scan_detection.py
"""

from __future__ import annotations

from repro.analysis.longitudinal import curate_from_window, slice_windows
from repro.datasets import get_dataset
from repro.netmodel import ip_to_str
from repro.sensor import SensorConfig, SensorEngine


def main() -> None:
    dataset = get_dataset("M-ditl", preset="tiny")
    truth = dataset.true_classes()
    print(f"dataset {dataset.spec.name}: {len(dataset.sensor.log):,} reverse "
          f"queries at {dataset.spec.vantage.name}")

    # One observation window over the whole dataset, curated per § IV-B:
    # spam candidates from blacklists, scan candidates from the darknet,
    # benign classes from crawls/registries — then verified.
    window = slice_windows(dataset, dataset.spec.duration_days, min_queriers=10)[0]
    labeled = curate_from_window(dataset, window, per_class_cap=60, min_queriers=10)
    print(f"curated labels: {dict(labeled.class_counts())}")

    engine = SensorEngine(dataset.directory(), SensorConfig(min_queriers=10))
    engine.fit(window.features, labeled.restrict_to(window.originators()))
    verdicts = engine.classify(window.features)

    detected = {v.originator for v in verdicts if v.app_class == "scan"}
    # Appendix A's bar: >1024 darknet addresses confirms a scanner.  Small,
    # slow, or targeted scans stay under it — backscatter's blind-spot win.
    darknet_confirmed = dataset.darknet.confirmed_scanners()
    true_scanners = {
        o for o in window.originators() if truth.get(o) == "scan"
    }
    targeted = {
        c.originator
        for c in dataset.scenario.campaigns
        if c.app_class == "scan" and c.targeted
    }

    print(f"\ntrue scanners visible at the sensor : {len(true_scanners)}")
    print(f"detected by backscatter classifier  : {len(detected & true_scanners)}")
    print(f"visible to the darknet               : {len(darknet_confirmed & true_scanners)}")
    stealth = (true_scanners & detected) - darknet_confirmed
    print(f"caught by backscatter, missed by darknet: {len(stealth)}")
    for originator in sorted(stealth)[:10]:
        tag = "targeted scan" if originator in targeted else "small/low-rate scan"
        print(f"  {ip_to_str(originator):<16} ({tag})")

    false_positives = detected - true_scanners
    print(f"\nfalse scanner verdicts: {len(false_positives)} "
          f"of {len(detected)} detections")


if __name__ == "__main__":
    main()
