"""Longitudinal monitoring: trends, churn, and retraining over weeks.

Reproduces the § V/§ VI workflow on a compressed M-sampled-style
dataset: slice the sensor log into weekly windows, curate once, retrain
every week on fresh features (the paper's recommended strategy), and
track per-class originator counts and scanner churn.

Run:  python examples/longitudinal_monitoring.py
"""

from __future__ import annotations

from repro.analysis.longitudinal import analyze_dataset
from repro.analysis.trends import churn_series, class_count_series
from repro.datasets import get_dataset


def main() -> None:
    dataset = get_dataset("M-sampled", preset="tiny")
    print(
        f"dataset {dataset.spec.name} ({dataset.spec.duration_days:.0f} days, "
        f"1:{dataset.sensor.sampling} sampled): "
        f"{len(dataset.sensor.log):,} logged reverse queries"
    )

    # Weekly windows; curate from the first week's top originators, then
    # retrain per window (analyze_dataset refits on each window's fresh
    # feature vectors — the "train-daily" strategy of § III-E).
    analysis = analyze_dataset(
        dataset,
        window_days=7.0,
        min_queriers=5,          # tiny preset: scale the 20-querier bar down
        curation_windows=(0,),
        per_class_cap=40,
        majority_runs=3,
    )
    print(f"curated labeled set: {dict(analysis.labeled.class_counts())}\n")

    print("weekly class counts (Fig 11 style):")
    for day, counts, total in class_count_series(analysis):
        top = ", ".join(
            f"{k}:{v}" for k, v in sorted(counts.items(), key=lambda kv: -kv[1])[:4]
        )
        print(f"  day {day:5.1f}: total {total:3d}   {top}")

    print("\nscanner churn (Fig 15 style):")
    for point in churn_series(analysis, app_class="scan"):
        print(
            f"  day {point.day:5.1f}: +{point.new} new, "
            f"{point.continuing} continuing, -{point.departing} departing"
        )


if __name__ == "__main__":
    main()
