"""Weekly operator reports with surge alerting.

Plays an M-sampled-style observation week by week through the sensor,
producing what a security operator would actually consume: a markdown
report per window (population, class mix, biggest originators, dense /24
blocks) plus robust surge alerts on the scanning series (§ I's
"anticipate attacks").

Run:  python examples/operator_report.py
"""

from __future__ import annotations

from repro.analysis.alerts import SurgeDetector
from repro.analysis.longitudinal import analyze_dataset
from repro.datasets import get_dataset
from repro.sensor.report import build_report, render_report


def main() -> None:
    dataset = get_dataset("M-sampled", preset="tiny")
    print(
        f"replaying {dataset.spec.name} (tiny preset, "
        f"{dataset.spec.duration_days:.0f} days) week by week…\n"
    )
    analysis = analyze_dataset(
        dataset,
        window_days=7.0,
        min_queriers=5,      # tiny preset: scale the analyzability bar down
        curation_windows=(0,),
        per_class_cap=40,
        majority_runs=3,
    )
    detector = SurgeDetector("scan", window=4, min_baseline=2)
    previous: dict[int, str] | None = None
    for window in analysis.windows:
        alert = detector.update(
            window.mid_day, sum(1 for c in window.classification.values() if c == "scan")
        )
        report = build_report(
            window.observations,
            window.classification,
            previous_classification=previous,
            alerts=[alert] if alert else [],
            min_queriers=5,
            top=5,
        )
        print(render_report(report))
        previous = window.classification
    print("(full-scale reports: use preset='default' — minutes of generation)")


if __name__ == "__main__":
    main()
