"""Quickstart: classify network-wide activity from DNS backscatter.

Generates a small synthetic JP-ditl dataset (a national-level DNS
authority observing two days of reverse queries), trains the backscatter
pipeline on curated labels, classifies every analyzable originator, and
prints the largest ones — the workflow of § III of the paper end to end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LabeledSet, SensorConfig, SensorEngine, get_dataset
from repro.netmodel import ip_to_str

def main() -> None:
    # 1. A dataset: world + activity + DNS hierarchy + sensor log.
    #    ("tiny" keeps this demo under ~10 seconds; drop it for realism.)
    dataset = get_dataset("JP-ditl", preset="tiny")
    print(f"dataset {dataset.spec.name}: {len(dataset.sensor.log):,} reverse "
          f"queries at {dataset.spec.vantage.name}")

    # 2. The staged engine: ingest → window/dedup → select → featurize →
    #    classify (>=20 unique queriers at Internet scale, the 22
    #    static/dynamic features of § III-C).
    engine = SensorEngine(dataset.directory(), SensorConfig(min_queriers=10))
    window = engine.collect(dataset.sensor.log, 0.0, dataset.duration_seconds)
    features = engine.featurize(window)
    print(f"analyzable originators: {len(features)}")

    # 3. Train on labeled examples.  Here we label from the simulation's
    #    ground truth; examples/scan_detection.py shows § IV-B curation
    #    from external evidence instead.
    truth = dataset.true_classes()
    labeled = LabeledSet.from_pairs(
        (int(o), truth[int(o)]) for o in features.originators if int(o) in truth
    )
    engine.fit(features, labeled)

    # 4. Classify and report the biggest footprints.
    verdicts = sorted(engine.classify(features), key=lambda v: -v.footprint)
    print(f"\n{'originator':<16} {'queriers':>8}  {'class':<12} true")
    for verdict in verdicts[:15]:
        print(
            f"{ip_to_str(verdict.originator):<16} {verdict.footprint:>8}  "
            f"{verdict.app_class:<12} {truth.get(verdict.originator, '?')}"
        )
    correct = sum(
        1 for v in verdicts if truth.get(v.originator) == v.app_class
    )
    print(f"\nagreement with ground truth: {correct}/{len(verdicts)}")

    # 5. Where did the volume and the time go?  Every stage accounts for
    #    itself (items in/out, drops, wall time).
    print(f"\n{engine.format_accounting()}")


if __name__ == "__main__":
    main()
