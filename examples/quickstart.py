"""Quickstart: classify network-wide activity from DNS backscatter.

Generates a small synthetic JP-ditl dataset (a national-level DNS
authority observing two days of reverse queries), trains the backscatter
pipeline on curated labels, classifies every analyzable originator, and
prints the largest ones — the workflow of § III of the paper end to end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BackscatterPipeline, LabeledSet, get_dataset
from repro.netmodel import ip_to_str

def main() -> None:
    # 1. A dataset: world + activity + DNS hierarchy + sensor log.
    #    ("tiny" keeps this demo under ~10 seconds; drop it for realism.)
    dataset = get_dataset("JP-ditl", preset="tiny")
    print(f"dataset {dataset.spec.name}: {len(dataset.sensor.log):,} reverse "
          f"queries at {dataset.spec.vantage.name}")

    # 2. Collect + select + featurize (dedup, >=20 unique queriers, the
    #    22 static/dynamic features of § III-C).
    pipeline = BackscatterPipeline(dataset.directory(), min_queriers=10)
    features = pipeline.features_from_log(
        dataset.sensor, 0.0, dataset.duration_seconds
    )
    print(f"analyzable originators: {len(features)}")

    # 3. Train on labeled examples.  Here we label from the simulation's
    #    ground truth; examples/scan_detection.py shows § IV-B curation
    #    from external evidence instead.
    truth = dataset.true_classes()
    labeled = LabeledSet.from_pairs(
        (int(o), truth[int(o)]) for o in features.originators if int(o) in truth
    )
    pipeline.fit(features, labeled)

    # 4. Classify and report the biggest footprints.
    verdicts = sorted(pipeline.classify(features), key=lambda v: -v.footprint)
    print(f"\n{'originator':<16} {'queriers':>8}  {'class':<12} true")
    for verdict in verdicts[:15]:
        print(
            f"{ip_to_str(verdict.originator):<16} {verdict.footprint:>8}  "
            f"{verdict.app_class:<12} {truth.get(verdict.originator, '?')}"
        )
    correct = sum(
        1 for v in verdicts if truth.get(v.originator) == v.app_class
    )
    print(f"\nagreement with ground truth: {correct}/{len(verdicts)}")


if __name__ == "__main__":
    main()
