"""Smoke tests for the confusion experiment on the tiny preset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import confusion


@pytest.fixture(scope="module")
def result():
    return confusion.run(dataset="JP-ditl", repeats=4, preset="tiny")


class TestConfusionRun:
    def test_matrix_shape_and_counts(self, result):
        n = len(result.classes)
        assert result.matrix.shape == (n, n)
        assert result.matrix.sum() > 0

    def test_per_class_records_complete(self, result):
        assert {r.app_class for r in result.per_class} == set(result.classes)
        for record in result.per_class:
            assert 0.0 <= record.recall <= 1.0
            assert 0.0 <= record.top_confusion_fraction <= 1.0

    def test_recall_matches_matrix(self, result):
        for i, name in enumerate(result.classes):
            row = result.matrix[i]
            if row.sum():
                assert result.recall_of(name) == pytest.approx(row[i] / row.sum())

    def test_confusion_lookup(self, result):
        a, b = result.classes[0], result.classes[-1]
        value = result.confusion(a, b)
        assert 0.0 <= value <= 1.0

    def test_unknown_class_raises(self, result):
        with pytest.raises(KeyError):
            result.recall_of("bogus")

    def test_format_table(self, result):
        text = confusion.format_table(result)
        assert "most confused with" in text
        for name in result.classes[:3]:
            assert name in text
