"""End-to-end integration tests on tiny generated datasets.

These exercise the whole stack — world, scenario, DNS hierarchy, sensor,
curation, classifier — the way the benchmark harness does, but on the
seconds-fast ``tiny`` presets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.longitudinal import analyze_dataset, curate_from_window, slice_windows
from repro.datasets import generate_dataset, spec_for
from repro.ml import LabelEncoder, RandomForestClassifier, repeated_holdout
from repro.sensor import LabeledSet, SensorConfig, SensorEngine


def span_features(engine, authority, start, end):
    """Featurize one window spanning the whole log (the classic flow)."""
    return engine.featurize(engine.collect(list(authority.log), start, end))


@pytest.fixture(scope="module")
def tiny_jp():
    return generate_dataset(spec_for("JP-ditl", "tiny"))


@pytest.fixture(scope="module")
def tiny_m_sampled():
    return generate_dataset(spec_for("M-sampled", "tiny"))


class TestShortDatasetFlow:
    def test_features_and_truth_alignment(self, tiny_jp):
        engine = SensorEngine(tiny_jp.directory())
        features = span_features(engine, tiny_jp.sensor, 0.0, tiny_jp.duration_seconds)
        assert len(features) >= 20
        truth = tiny_jp.true_classes()
        labeled_fraction = np.mean([int(o) in truth for o in features.originators])
        assert labeled_fraction > 0.95  # analyzable originators are actors

    def test_classification_beats_chance_decisively(self, tiny_jp):
        engine = SensorEngine(tiny_jp.directory())
        features = span_features(engine, tiny_jp.sensor, 0.0, tiny_jp.duration_seconds)
        truth = tiny_jp.true_classes()
        names = [truth[int(o)] for o in features.originators if int(o) in truth]
        mask = np.array([int(o) in truth for o in features.originators])
        encoder = LabelEncoder(sorted(set(names)))
        summary = repeated_holdout(
            lambda s: RandomForestClassifier(seed=s),
            features.matrix[mask],
            encoder.encode(names),
            len(encoder),
            repeats=5,
        )
        # 11-12 classes -> chance ~0.08; require strong signal even tiny.
        assert summary.accuracy_mean > 0.45

    def test_curation_produces_correct_labels(self, tiny_jp):
        window = slice_windows(tiny_jp, window_days=tiny_jp.spec.duration_days)[0]
        labeled = curate_from_window(tiny_jp, window, per_class_cap=30)
        assert len(labeled) >= 10
        truth = tiny_jp.true_classes()
        for example in labeled:
            assert truth[example.originator] == example.app_class

    def test_engine_fit_and_classify_roundtrip(self, tiny_jp):
        engine = SensorEngine(tiny_jp.directory(), SensorConfig(majority_runs=3))
        features = span_features(engine, tiny_jp.sensor, 0.0, tiny_jp.duration_seconds)
        truth = tiny_jp.true_classes()
        labeled = LabeledSet.from_pairs(
            (int(o), truth[int(o)]) for o in features.originators if int(o) in truth
        )
        engine.fit(features, labeled)
        labels = engine.classify_map(features)
        agreement = np.mean([truth.get(o) == c for o, c in labels.items()])
        assert agreement > 0.6


class TestLongDatasetFlow:
    def test_windowed_analysis(self, tiny_m_sampled):
        # The tiny preset is deliberately sparse; scale the paper's
        # 20-querier analyzability bar down with it.
        analysis = analyze_dataset(
            tiny_m_sampled,
            window_days=7.0,
            min_queriers=5,
            curation_windows=(0,),
            per_class_cap=40,
            majority_runs=1,
        )
        assert len(analysis.windows) == 2  # 14 tiny days / 7
        assert analysis.labeled is not None and len(analysis.labeled) > 0
        classified_windows = [w for w in analysis.windows if w.classification]
        assert classified_windows, "no window had enough labels to classify"

    def test_sampling_reduces_log(self, tiny_m_sampled):
        sensor = tiny_m_sampled.sensor
        assert sensor.sampling == 10
        assert len(sensor.log) <= sensor.seen_reverse // 10 + 1

    def test_darknet_and_blacklists_populated(self, tiny_m_sampled):
        assert tiny_m_sampled.darknet.hits, "no darknet hits in tiny M-sampled"
        spammers = tiny_m_sampled.blacklists.listed_spammers()
        truth = tiny_m_sampled.true_classes()
        assert spammers
        for originator in spammers:
            assert truth[originator] == "spam"
