"""Unit tests for `repro.service`: config, feed decoding, retraining,
window hooks, and alert wiring."""

from __future__ import annotations

import struct
import threading

import numpy as np
import pytest

from repro.datasets.dnstap import MAGIC, VERSION
from repro.dnssim.message import QueryLogEntry
from repro.federation import FederatedSensor
from repro.logstore import EntryBlock
from repro.netmodel.world import NameStatus
from repro.sensor.collection import ObservationWindow
from repro.sensor.curation import LabeledSet
from repro.sensor.directory import QuerierInfo, StaticDirectory
from repro.sensor.engine import (
    ClassifiedOriginator,
    SensedWindow,
    SensorConfig,
    SensorEngine,
)
from repro.sensor.training import Strategy
from repro.service import BackscatterService, FeedReader, ModelManager, ServiceConfig
from repro.service.config import FEED_FORMATS


def entry(ts: float, querier: int = 1, originator: int = 2) -> QueryLogEntry:
    return QueryLogEntry(timestamp=ts, querier=querier, originator=originator)


COUNTRIES = ("jp", "us", "de")


def directory_for(queriers: range) -> StaticDirectory:
    return StaticDirectory(
        {
            q: QuerierInfo(
                addr=q,
                name=f"host{q}.example.net",
                status=NameStatus.OK,
                asn=q % 5 + 1,
                country=COUNTRIES[q % len(COUNTRIES)],
            )
            for q in queriers
        }
    )


def synthetic_entries(
    n_originators: int = 8,
    queriers_per: int = 12,
    windows: int = 3,
    width: float = 100.0,
) -> list[QueryLogEntry]:
    rng = np.random.default_rng(7)
    out: list[QueryLogEntry] = []
    for w in range(windows):
        for o in range(1, n_originators + 1):
            for k in range(queriers_per):
                q = 100 + (o * 13 + k * 7) % 40
                t = w * width + float(rng.uniform(0.0, width - 1.0))
                out.append(entry(t, querier=q, originator=o))
    out.sort(key=lambda e: e.timestamp)
    return out


def rbsc_bytes(block: EntryBlock) -> bytes:
    out = struct.pack(">4sH", MAGIC, VERSION)
    for ts, q, o in zip(block.timestamps, block.queriers, block.originators):
        out += struct.pack(">H", 16) + struct.pack(">dII", float(ts), int(q), int(o))
    return out


class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.port == 8053
        assert config.feed_format in FEED_FORMATS
        assert config.retrain is None

    @pytest.mark.parametrize(
        "overrides",
        [
            {"port": -1},
            {"port": 70000},
            {"feed_port": 70000},
            {"feed_format": "csv"},
            {"feed_chunk": 0},
            {"feed_poll_seconds": 0.0},
            {"shards": 0},
            {"retrain": "hourly"},
            {"retrain_min_per_class": 0},
            {"retrain_min_total": 0},
            {"verdict_history": 0},
            {"alert_window": 1},
            {"alert_threshold": 0.0},
            {"alert_min_relative": -0.1},
            {"on_window": 42},
            {"sensor": "not-a-config"},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            ServiceConfig(**overrides)

    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, None),
            ("once", Strategy.TRAIN_ONCE),
            ("daily", Strategy.TRAIN_DAILY),
            ("grow", Strategy.AUTO_GROW),
            ("train-daily", Strategy.TRAIN_DAILY),
            (Strategy.AUTO_GROW, Strategy.AUTO_GROW),
        ],
    )
    def test_retrain_coercion(self, value, expected):
        assert ServiceConfig(retrain=value).retrain is expected

    def test_frozen_and_replaced(self):
        config = ServiceConfig()
        with pytest.raises(AttributeError):
            config.port = 80
        variant = config.replaced(port=0, retrain="daily")
        assert variant.port == 0
        assert variant.retrain is Strategy.TRAIN_DAILY
        assert config.port == 8053
        with pytest.raises(ValueError):
            config.replaced(shards=-1)


class TestFeedReader:
    LINE = "%s 192.0.2.9 4.3.2.10.in-addr.arpa\n"

    def test_text_lines_with_partial_tail(self):
        reader = FeedReader("text")
        first = reader.feed((self.LINE % "10.0").encode() + b"20")
        assert len(first) == 1
        assert first.timestamps[0] == 10.0
        second = reader.feed((".5 192.0.2.9 4.3.2.10.in-addr.arpa\n").encode())
        assert len(second) == 1
        assert second.timestamps[0] == 20.5
        assert len(reader.close()) == 0
        assert reader.entries_decoded == 2

    def test_text_comments_and_blanks_skipped(self):
        reader = FeedReader("text")
        block = reader.feed(b"# header\n\n" + (self.LINE % "1.0").encode())
        assert len(block) == 1

    def test_text_final_unterminated_line_flushed_at_close(self):
        reader = FeedReader("text")
        assert len(reader.feed((self.LINE % "3.0").encode()[:-1])) == 0
        tail = reader.close()
        assert len(tail) == 1 and tail.timestamps[0] == 3.0

    def test_text_malformed_line_raises(self):
        with pytest.raises(ValueError, match="expected"):
            FeedReader("text").feed(b"1.0 onlytwo\n")

    def test_auto_resolves_text(self):
        reader = FeedReader("auto")
        assert reader.format == "auto"
        reader.feed((self.LINE % "1.0").encode())
        assert reader.format == "text"

    def test_auto_short_stream_closes_as_text(self):
        reader = FeedReader("auto")
        assert len(reader.feed(b"#a")) == 0
        assert len(reader.close()) == 0

    @pytest.mark.parametrize("chunk", [1, 7, 18, 100])
    def test_rbsc_across_odd_chunk_boundaries(self, chunk):
        block = EntryBlock.from_entries(
            [entry(float(i), querier=50 + i, originator=9) for i in range(6)]
        )
        payload = rbsc_bytes(block)
        reader = FeedReader("auto")
        decoded = []
        for lo in range(0, len(payload), chunk):
            got = reader.feed(payload[lo : lo + chunk])
            if len(got):
                decoded.append(got)
        assert len(reader.close()) == 0
        assert reader.format == "rbsc"
        total = sum(len(b) for b in decoded)
        assert total == 6
        assert reader.entries_decoded == 6
        stitched = np.concatenate([b.timestamps for b in decoded])
        assert np.array_equal(stitched, block.timestamps)

    def test_rbsc_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            FeedReader("rbsc").feed(b"NOPE" + b"\x00" * 20)

    def test_rbsc_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            FeedReader("rbsc").feed(struct.pack(">4sH", MAGIC, 99))

    def test_rbsc_bad_frame_length(self):
        payload = struct.pack(">4sH", MAGIC, VERSION)
        payload += struct.pack(">H", 12) + b"\x00" * 16
        with pytest.raises(ValueError, match="frame length"):
            FeedReader("rbsc").feed(payload)

    def test_rbsc_truncated_at_close_raises(self):
        block = EntryBlock.from_entries([entry(1.0)])
        reader = FeedReader("rbsc")
        reader.feed(rbsc_bytes(block)[:-5])
        with pytest.raises(ValueError, match="truncated"):
            reader.close()

    def test_feed_after_close_raises(self):
        reader = FeedReader("text")
        reader.close()
        with pytest.raises(ValueError, match="close"):
            reader.feed(b"x")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            FeedReader("csv")


class TestOnWindowHook:
    def _trained(self, config):
        directory = directory_for(range(100, 140))
        trainer = SensorEngine(directory, config)
        entries = synthetic_entries()
        window = trainer.process(entries, 0.0, 100.0, classify=False)[0]
        labeled = LabeledSet.from_pairs(
            (int(o), "scan" if int(o) % 2 else "dns")
            for o in window.features.originators
        )
        trainer.fit(window.features, labeled)
        return directory, trainer, entries, labeled

    def test_engine_hook_fires_in_emission_order(self):
        config = SensorConfig(window_seconds=100.0, min_queriers=3, majority_runs=3)
        directory, trainer, entries, _ = self._trained(config)
        engine = SensorEngine(directory, config).fit_from(trainer)
        block = EntryBlock.from_entries(entries)
        seen: list[SensedWindow] = []
        unsubscribe = engine.on_window(seen.append)
        returned = []
        for lo in range(0, len(block), 300):
            engine.ingest_block(block[lo : lo + 300])
            returned.extend(engine.poll())
        returned.extend(engine.finish())
        assert len(seen) == len(returned) == 3
        assert all(a is b for a, b in zip(seen, returned))
        assert all(w.verdicts for w in seen)
        # Unsubscribed hooks stay silent.
        unsubscribe()
        unsubscribe()  # idempotent
        engine2 = SensorEngine(directory, config).fit_from(trainer)
        count = []
        remove = engine2.on_window(count.append)
        remove()
        engine2.ingest_block(block)
        engine2.poll()
        engine2.finish()
        assert count == []

    def test_federated_hook_fires_with_merged_windows(self):
        config = SensorConfig(window_seconds=100.0, min_queriers=3, majority_runs=3)
        directory, trainer, entries, _ = self._trained(config)
        block = EntryBlock.from_entries(entries)
        seen = []
        with FederatedSensor(
            directory, config, n_shards=2, processes=False
        ) as federated:
            federated.fit_from(trainer)
            federated.on_window(seen.append)
            federated.ingest_block(block)
            federated.poll()
            federated.finish()
        assert len(seen) == 3
        assert all(w.verdicts for w in seen)
        assert all(hasattr(w, "shard_rows") for w in seen)


class _Recorder:
    """Stands in for an engine on the receiving end of a hot-swap."""

    def __init__(self):
        self.adopted = []

    def adopt_training(self, X, y, encoder):
        self.adopted.append((X, y, encoder))


class _ExplodingClassifier:
    def fit(self, X, y):
        raise RuntimeError("boom")

    def predict(self, X):  # pragma: no cover
        raise RuntimeError("boom")


class TestModelManager:
    def _window(self, config=None):
        config = config or SensorConfig(
            window_seconds=100.0, min_queriers=3, majority_runs=3
        )
        directory = directory_for(range(100, 140))
        engine = SensorEngine(directory, config)
        sensed = engine.process(synthetic_entries(), 0.0, 100.0, classify=False)[0]
        labeled = LabeledSet.from_pairs(
            (int(o), "scan" if int(o) % 2 else "dns")
            for o in sensed.features.originators
        )
        return sensed, labeled

    def test_inactive_strategies_do_nothing(self):
        sensed, labeled = self._window()
        for strategy in (None, Strategy.TRAIN_ONCE):
            with ModelManager(labeled, strategy) as manager:
                assert not manager.active
                assert manager.observe_window(sensed) == "none"
                assert manager.apply_pending(_Recorder()) == "none"

    def test_train_daily_swaps(self):
        sensed, labeled = self._window()
        with ModelManager(
            labeled, Strategy.TRAIN_DAILY, min_per_class=2, min_total=4
        ) as manager:
            assert manager.observe_window(sensed) == "scheduled"
            manager.wait_pending()
            recorder = _Recorder()
            assert manager.apply_pending(recorder) == "swapped"
            assert manager.version == 1
            (X, y, encoder) = recorder.adopted[0]
            assert len(X) == len(y) == len(labeled)
            assert set(encoder.decode(y)) == {"scan", "dns"}
            # Nothing further pending.
            assert manager.apply_pending(recorder) == "none"

    def test_auto_grow_trains_on_own_verdicts(self):
        sensed, labeled = self._window()
        sensed.verdicts = [
            ClassifiedOriginator(int(o), "scan" if i % 2 else "dns", 10)
            for i, o in enumerate(sensed.features.originators)
        ]
        with ModelManager(
            labeled, Strategy.AUTO_GROW, min_per_class=2, min_total=4
        ) as manager:
            assert manager.observe_window(sensed) == "scheduled"
            manager.wait_pending()
            recorder = _Recorder()
            assert manager.apply_pending(recorder) == "swapped"
            X, y, encoder = recorder.adopted[0]
            assert len(y) == len(sensed.verdicts)

    def test_auto_grow_without_verdicts_is_none(self):
        sensed, labeled = self._window()
        sensed.verdicts = []
        with ModelManager(labeled, Strategy.AUTO_GROW) as manager:
            assert manager.observe_window(sensed) == "none"

    def test_candidate_failing_gate_is_rejected(self):
        sensed, labeled = self._window()
        with ModelManager(
            labeled, Strategy.TRAIN_DAILY, min_per_class=1000, min_total=1000
        ) as manager:
            manager.observe_window(sensed)
            manager.wait_pending()
            assert manager.apply_pending(_Recorder()) == "rejected"
            assert manager.version == 0

    def test_fit_error_is_failed_not_fatal(self):
        sensed, labeled = self._window()
        with ModelManager(
            labeled,
            Strategy.TRAIN_DAILY,
            factory=lambda seed: _ExplodingClassifier(),
            min_per_class=2,
            min_total=4,
        ) as manager:
            manager.observe_window(sensed)
            manager.wait_pending()
            assert manager.apply_pending(_Recorder()) == "failed"

    def test_slow_fit_skips_next_window(self):
        sensed, labeled = self._window()
        release = threading.Event()

        class _SlowClassifier:
            def fit(self, X, y):
                release.wait(timeout=10.0)
                return self

            def predict(self, X):
                return np.zeros(len(X), dtype=int)

        with ModelManager(
            labeled,
            Strategy.TRAIN_DAILY,
            factory=lambda seed: _SlowClassifier(),
            min_per_class=2,
            min_total=4,
        ) as manager:
            assert manager.observe_window(sensed) == "scheduled"
            assert manager.observe_window(sensed) == "skipped"
            assert manager.fits_skipped == 1
            release.set()
            manager.wait_pending()
            assert manager.apply_pending(_Recorder()) == "swapped"


def _sensed(start: float, end: float, verdicts) -> SensedWindow:
    return SensedWindow(
        window=ObservationWindow(start=start, end=end), verdicts=list(verdicts)
    )


class TestAlertWiring:
    def test_surge_alert_fires_and_zero_windows_skipped(self):
        config = ServiceConfig(
            port=0,
            alert_classes=("scan",),
            alert_window=6,
            alert_threshold=3.0,
            alert_min_relative=0.2,
        )
        service = BackscatterService(None, config)
        width = 100.0
        # Six calm windows build the baseline...
        for w in range(6):
            verdicts = [
                ClassifiedOriginator(o, "scan", 10) for o in range(1, 5)
            ] + [ClassifiedOriginator(99, "dns", 10)]
            service._handle_window(_sensed(w * width, (w + 1) * width, verdicts))
        # ...an empty window must not poison the baseline with a zero...
        service._handle_window(_sensed(600.0, 700.0, []))
        # ...and a 5x scan surge alerts.
        surge = [ClassifiedOriginator(o, "scan", 10) for o in range(1, 21)]
        service._handle_window(_sensed(700.0, 800.0, surge))
        alerts = service.alerts()
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert["app_class"] == "scan"
        assert alert["observed"] == 20
        assert alert["score"] >= 3.0
        assert service.windows_total == 8
        # The window records retain the verdict stream.
        assert len(service.windows()) == 8
        assert service.windows()[-1]["verdicts"][0]["app_class"] == "scan"

    def test_extra_on_window_callback_runs(self):
        seen = []
        config = ServiceConfig(port=0, on_window=seen.append)
        service = BackscatterService(None, config)
        block = EntryBlock.from_entries(
            [entry(float(t), querier=1 + t, originator=5) for t in range(5)]
        )
        engine = service.engine
        engine.ingest_block(block)
        engine.poll()
        engine.finish()
        assert len(seen) == 1  # both the service's hook and the extra ran
        assert service.windows_total == 1
