"""The columnar log store: EntryBlock, on-disk formats, dedup_mask.

The dedup_mask property tests pin the tentpole contract of the array
ingest plane: the vectorized keep-mask is **bit-identical** to the
scalar :func:`repro.sensor.collection.dedup_entries` reference on every
log, including tie-heavy, coarse-timestamp, and chunked-with-carry
replays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim.message import QueryLogEntry
from repro.logstore import (
    ENTRY_DTYPE,
    EntryBlock,
    blocks_from_entries,
    concat_blocks,
    dedup_mask,
    iter_blocks,
    load_block,
    save_block,
)
from repro.sensor.collection import dedup_entries


def make_entries(rows):
    return [QueryLogEntry(timestamp=t, querier=q, originator=o) for t, q, o in rows]


def make_block(rows):
    return EntryBlock(np.array(rows, dtype=ENTRY_DTYPE))


class TestEntryBlock:
    def test_dtype_is_three_flat_columns(self):
        assert ENTRY_DTYPE.names == ("timestamp", "querier", "originator")
        assert ENTRY_DTYPE.itemsize == 24

    def test_rejects_wrong_dtype_and_shape(self):
        with pytest.raises(ValueError, match="dtype"):
            EntryBlock(np.zeros(3, dtype=np.float64))
        with pytest.raises(ValueError, match="1-D"):
            EntryBlock(np.zeros((2, 2), dtype=ENTRY_DTYPE))

    def test_roundtrips_entries(self):
        entries = make_entries([(1.5, 7, 9), (2.0, 8, 9), (2.0, 7, 10)])
        block = EntryBlock.from_entries(entries)
        assert len(block) == 3
        assert block.to_entries() == entries
        assert block[1] == entries[1]
        assert block[-1] == entries[-1]

    def test_from_arrays_copies_and_validates(self):
        ts = np.array([1.0, 2.0])
        block = EntryBlock.from_arrays(ts, np.array([1, 2]), np.array([3, 4]))
        ts[0] = 99.0
        assert block.timestamps[0] == 1.0
        with pytest.raises(ValueError, match="identical shapes"):
            EntryBlock.from_arrays(ts, np.array([1]), np.array([3, 4]))

    def test_empty_block_is_falsy_and_sorted(self):
        block = EntryBlock.empty()
        assert not block
        assert len(block) == 0
        assert block.is_sorted

    def test_chunked_construction_matches_whole(self):
        entries = make_entries([(float(i), i % 5, i % 3) for i in range(100)])
        chunks = list(blocks_from_entries(entries, chunk_events=7))
        assert [len(c) for c in chunks] == [7] * 14 + [2]
        assert concat_blocks(chunks) == EntryBlock.from_entries(entries)
        assert EntryBlock.from_entries(iter(entries), chunk_events=7) == (
            EntryBlock.from_entries(entries)
        )

    def test_chunk_events_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            list(blocks_from_entries([], chunk_events=0))
        with pytest.raises(ValueError, match="positive"):
            list(make_block([(1.0, 1, 1)]).iter_chunks(0))

    def test_concat_carries_sortedness_across_abutting_blocks(self):
        a = make_block([(1.0, 1, 1), (2.0, 2, 2)])
        b = make_block([(2.0, 3, 3), (4.0, 4, 4)])
        assert a.is_sorted and b.is_sorted
        merged = concat_blocks([a, b])
        assert merged._sorted is True  # no re-scan needed
        out_of_order = concat_blocks([b, a])
        assert out_of_order._sorted is None
        assert not out_of_order.is_sorted

    def test_sort_is_stable_on_timestamp_ties(self):
        block = make_block([(2.0, 1, 1), (1.0, 2, 2), (2.0, 3, 3), (1.0, 4, 4)])
        out = block.sort()
        assert out.queriers.tolist() == [2, 4, 1, 3]  # arrival order kept in ties
        assert out.is_sorted
        assert block.sort() is not out or True
        sorted_block = make_block([(1.0, 1, 1), (2.0, 2, 2)])
        assert sorted_block.sort() is sorted_block  # no-op on sorted input

    def test_slice_time_half_open_on_sorted_and_unsorted(self):
        rows = [(0.0, 1, 1), (1.0, 2, 2), (2.0, 3, 3), (3.0, 4, 4)]
        for block in (make_block(rows), make_block(rows[::-1])):
            sub = block.slice_time(1.0, 3.0)
            assert sorted(sub.timestamps.tolist()) == [1.0, 2.0]

    def test_slices_and_masks_preserve_sorted_metadata(self):
        block = make_block([(float(i), i, i) for i in range(10)])
        assert block.is_sorted
        assert block[2:5]._sorted is True
        assert block[np.array([True] * 5 + [False] * 5)]._sorted is True
        assert block[::-1]._sorted is None  # backward step: unknown
        assert block[np.array([3, 1])]._sorted is None  # fancy: unknown

    def test_iter_yields_entry_objects(self):
        entries = make_entries([(1.0, 2, 3)])
        assert list(EntryBlock.from_entries(entries)) == entries

    def test_blocks_are_unhashable_value_objects(self):
        block = make_block([(1.0, 1, 1)])
        assert block == make_block([(1.0, 1, 1)])
        assert block != make_block([(1.0, 1, 2)])
        with pytest.raises(TypeError):
            hash(block)


class TestDiskIO:
    @pytest.fixture()
    def block(self):
        return make_block([(1.25, 7, 9), (2.5, 8, 9), (30.0, 7, 10)])

    @pytest.mark.parametrize("suffix", [".npz", ".npy"])
    def test_roundtrip(self, tmp_path, block, suffix):
        path = tmp_path / f"log{suffix}"
        save_block(path, block)
        loaded = load_block(path)
        assert loaded == block
        assert loaded.is_sorted

    def test_npz_preserves_sorted_metadata(self, tmp_path, block):
        # The .npz container carries the cached flag; the raw .npy
        # layout has no metadata sidecar and re-checks lazily.
        assert block.is_sorted
        path = tmp_path / "log.npz"
        save_block(path, block)
        assert load_block(path)._sorted is True

    def test_npy_mmap_loads_readonly_view(self, tmp_path, block):
        path = tmp_path / "log.npy"
        save_block(path, block)
        mapped = load_block(path, mmap=True)
        assert mapped == block
        assert isinstance(mapped.data, np.memmap)
        with pytest.raises((ValueError, OSError)):
            mapped.data["timestamp"][0] = 0.0

    def test_npz_mmap_is_rejected(self, tmp_path, block):
        path = tmp_path / "log.npz"
        save_block(path, block)
        with pytest.raises(ValueError, match="memory-mapped"):
            load_block(path, mmap=True)

    def test_save_via_method_load_via_classmethod(self, tmp_path, block):
        path = tmp_path / "log.npz"
        block.save(path)
        assert EntryBlock.load(path) == block

    def test_iter_blocks_chunks_the_file(self, tmp_path):
        block = make_block([(float(i), i, i) for i in range(10)])
        path = tmp_path / "log.npy"
        save_block(path, block)
        chunks = list(iter_blocks(path, chunk_events=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert concat_blocks(chunks) == block


# -- dedup_mask == dedup_entries, property-tested -------------------------

# Coarse timestamps force ties and near-horizon gaps; tiny id spaces
# force pair collisions.  Both are the adversarial regime for dedup.
entry_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=200.0).map(lambda t: round(t, 1)),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=60,
)
windows = st.sampled_from([0.0, 0.1, 1.0, 30.0])


def mask_to_entries(entries, mask):
    return [e for e, keep in zip(entries, mask) if keep]


class TestDedupMaskProperties:
    @given(entry_rows, windows)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_reference(self, rows, window):
        rows.sort(key=lambda r: r[0])
        entries = make_entries(rows)
        block = EntryBlock.from_entries(entries)
        mask, updates = dedup_mask(
            block.timestamps, block.queriers, block.originators, window
        )
        assert mask_to_entries(entries, mask) == dedup_entries(entries, window)
        assert updates == {}  # carry=None reports no delta

    @given(entry_rows, windows, st.integers(min_value=1, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_chunked_with_carry_matches_whole(self, rows, window, chunk):
        rows.sort(key=lambda r: r[0])
        entries = make_entries(rows)
        expected = dedup_entries(entries, window)
        block = EntryBlock.from_entries(entries)
        carry: dict[tuple[int, int], float] = {}
        kept: list[QueryLogEntry] = []
        for sub in block.iter_chunks(chunk):
            mask, updates = dedup_mask(
                sub.timestamps, sub.queriers, sub.originators, window, carry=carry
            )
            kept.extend(mask_to_entries(sub.to_entries(), mask))
            carry.update(updates)
        assert kept == expected

    @given(entry_rows, windows, st.integers(min_value=1, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_pruned_carry_matches_whole(self, rows, window, chunk):
        # Regression for the carry-dict leak: ``updates`` only reports
        # pairs still inside the horizon, so a caller may prune stale
        # pairs between chunks without changing a single verdict.  Before
        # the fix, ``updates`` echoed every pair in the chunk and the
        # carry grew with stream length instead of horizon occupancy.
        rows.sort(key=lambda r: r[0])
        entries = make_entries(rows)
        expected = dedup_entries(entries, window)
        block = EntryBlock.from_entries(entries)
        carry: dict[tuple[int, int], float] = {}
        kept: list[QueryLogEntry] = []
        for sub in block.iter_chunks(chunk):
            mask, updates = dedup_mask(
                sub.timestamps, sub.queriers, sub.originators, window, carry=carry
            )
            kept.extend(mask_to_entries(sub.to_entries(), mask))
            carry.update(updates)
            t_end = float(sub.timestamps[-1])
            # Every reported update must already be horizon-live...
            assert all(t_end - t < window for t in updates.values())
            # ...and pruning the carry on the same predicate is safe.
            carry = {
                pair: t for pair, t in carry.items() if t_end - t < window
            }
        assert kept == expected

    def test_float_horizon_uses_subtraction_predicate(self):
        # 2.3 - 1.3 = 0.9999999999999998 < 1.0, so the repeat is dropped;
        # a searchsorted on (1.3 + 1.0 == 2.3) would wrongly keep it.
        entries = make_entries([(1.3, 1, 1), (2.3, 1, 1)])
        block = EntryBlock.from_entries(entries)
        mask, _ = dedup_mask(block.timestamps, block.queriers, block.originators, 1.0)
        assert mask.tolist() == [True, False]
        assert dedup_entries(entries, 1.0) == entries[:1]

    def test_negative_window_rejected(self):
        block = EntryBlock.empty()
        with pytest.raises(ValueError, match="non-negative"):
            dedup_mask(block.timestamps, block.queriers, block.originators, -1.0)
