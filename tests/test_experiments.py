"""Smoke tests for the experiment harness on fast configurations.

Full-fidelity runs live in benchmarks/; here we check that each module
produces structured, well-formed output quickly (tiny presets or reduced
parameters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    case_studies,
    fig4_controlled,
    fig9_footprints,
    table1_datasets,
)
from repro.experiments.common import format_rows


class TestFormatRows:
    def test_alignment_and_header(self):
        text = format_rows(["a", "long-header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_handles_empty(self):
        text = format_rows(["a"], [])
        assert "a" in text


class TestTable1:
    def test_tiny_rows(self):
        rows = table1_datasets.run(datasets=("JP-ditl", "B-post-ditl"), preset="tiny")
        assert [r.name for r in rows] == ["JP-ditl", "B-post-ditl"]
        for row in rows:
            assert row.queries_reverse > 0
            assert row.qps_all > row.qps_reverse
        text = table1_datasets.format_table(rows)
        assert "JP-ditl" in text and "qps" in text


class TestCaseStudies:
    def test_tiny_cases(self):
        cases = case_studies.run(preset="tiny")
        assert cases, "no case studies found in tiny JP-ditl"
        for case in cases:
            assert abs(sum(case.static.values()) - 1.0) < 1e-9
            assert np.isfinite(list(case.dynamic.values())).all()
        static_text = case_studies.format_static(cases)
        dynamic_text = case_studies.format_dynamic(cases)
        assert "case" in static_text and "queries/querier" in dynamic_text


class TestFig4:
    def test_small_sweep(self):
        result = fig4_controlled.run(
            fractions=(1e-5, 1e-3), trials_per_fraction=1, world_scale=0.3, seed=5
        )
        assert len(result.trials) == 2
        small, large = result.trials
        assert large.final_queriers > small.final_queriers
        assert np.isfinite(result.power)
        assert "power-law" in fig4_controlled.format_table(result)

    def test_detection_fraction_none_when_all_small(self):
        result = fig4_controlled.run(
            fractions=(1e-7,), trials_per_fraction=1, world_scale=0.2, seed=5
        )
        if result.detection_fraction is not None:
            assert result.detection_fraction == 1e-7


class TestFig9:
    def test_tiny_curves(self):
        curves = fig9_footprints.run(datasets=("JP-ditl",), preset="tiny")
        curve = curves[0]
        assert curve.originators > 0
        assert len(curve.x) == len(curve.survival)
        assert "tail exponent" in fig9_footprints.format_table(curves)

    def test_tail_index_on_pareto(self):
        rng = np.random.default_rng(0)
        sizes = (20 * (1 + rng.pareto(1.5, size=4000))).astype(int)
        estimate = fig9_footprints.tail_index(sizes, threshold=20)
        assert 1.2 < estimate < 1.9
