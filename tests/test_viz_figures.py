"""Tests for the remaining figure renderers on synthetic results."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.trends import ChurnPoint, FootprintBox
from repro.experiments.fig5_fig6_stability import StabilityResult
from repro.experiments.fig11_trends import Fig11Result
from repro.experiments.fig12_footprint_boxes import Fig12Result
from repro.viz.figures import (
    render_fig3,
    render_fig5_fig6,
    render_fig7,
    render_fig9,
    render_fig11,
    render_fig12,
)


def parse(path):
    return ET.fromstring(path.read_text())


class TestRenderFig3:
    def test_stacked_bars(self, tmp_path):
        from repro.experiments.case_studies import CaseStudy

        cases = [
            CaseStudy(
                label=name,
                originator=i,
                footprint=100,
                static={
                    "home": 0.3, "mail": 0.2, "ns": 0.1, "fw": 0.1,
                    "antispam": 0.0, "other": 0.1, "unreach": 0.1, "nxdomain": 0.1,
                },
                dynamic={},
            )
            for i, name in enumerate(["spam", "cdn"])
        ]
        out = render_fig3(cases, tmp_path / "fig3.svg")
        root = parse(out)
        assert root.tag.endswith("svg")


class TestRenderFig5Fig6:
    def test_two_lines_and_curation_marker(self, tmp_path):
        result = StabilityResult(
            curation_day=30.0,
            benign=[(float(d), 100 - d // 10) for d in range(0, 90, 7)],
            malicious=[(float(d), max(0, 50 - d)) for d in range(0, 90, 7)],
            per_class={},
        )
        out = render_fig5_fig6(result, tmp_path / "fig56.svg")
        text = out.read_text()
        assert "benign" in text and "malicious" in text and "curation" in text
        parse(out)


class TestRenderFig7:
    def test_strategy_lines(self, tmp_path):
        from repro.experiments.fig7_strategies import Fig7Result
        from repro.sensor.training import (
            Strategy,
            TimeSeriesEvaluation,
            WindowScore,
        )
        from repro.ml.metrics import evaluate

        y = np.array([0, 1, 0, 1])
        report = evaluate(y, y, 2)
        evaluations = {
            strategy: TimeSeriesEvaluation(
                strategy=strategy,
                scores=[
                    WindowScore(day=float(d), trained=True, n_reappearing=4, report=report)
                    for d in range(0, 60, 10)
                ],
            )
            for strategy in Strategy
        }
        result = Fig7Result(curation_day=10.0, evaluations=evaluations)
        out = render_fig7(result, tmp_path / "fig7.svg")
        text = out.read_text()
        for strategy in Strategy:
            assert strategy.value in text
        parse(out)


class TestRenderFig9:
    def test_ccdf_curves(self, tmp_path):
        from repro.experiments.fig9_footprints import FootprintCurve

        sizes = np.array([100, 50, 30, 20, 20, 10])
        x = np.array([10.0, 20.0, 30.0, 50.0, 100.0])
        survival = np.array([1.0, 0.8, 0.5, 0.3, 0.1])
        curves = [
            FootprintCurve(dataset="JP-ditl", sizes=sizes, x=x, survival=survival)
        ]
        out = render_fig9(curves, tmp_path / "fig9.svg")
        assert "JP-ditl" in out.read_text()
        parse(out)


class TestRenderFig11:
    def test_class_lines_and_event(self, tmp_path):
        series = [
            (float(7 * i), {"scan": 5 + i, "spam": 10, "mail": 2, "cdn": 8}, 30)
            for i in range(10)
        ]
        result = Fig11Result(series=series, heartbleed_day=50.0)
        out = render_fig11(result, tmp_path / "fig11.svg")
        text = out.read_text()
        assert "Heartbleed" in text and "scan" in text
        parse(out)


class TestRenderFig12:
    def test_boxes(self, tmp_path):
        boxes = [
            FootprintBox(day=float(7 * i), p10=10, p25=12, median=15, p75=20, p90=40, count=12)
            for i in range(6)
        ]
        out = render_fig12(Fig12Result(boxes=boxes), tmp_path / "fig12.svg")
        root = parse(out)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 7  # background + 6 boxes
