"""Unit tests for the feature-drift analysis on synthetic windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.drift import feature_drift
from repro.analysis.longitudinal import AnalysisWindow, WindowedAnalysis
from repro.sensor.collection import ObservationWindow
from repro.sensor.curation import LabeledSet
from repro.sensor.dynamic import WindowContext
from repro.sensor.features import FEATURE_NAMES, FeatureSet


def make_window(index: int, vectors: dict[int, np.ndarray]) -> AnalysisWindow:
    originators = np.array(sorted(vectors), dtype=np.int64)
    matrix = (
        np.stack([vectors[o] for o in originators])
        if len(originators)
        else np.zeros((0, len(FEATURE_NAMES)))
    )
    return AnalysisWindow(
        index=index,
        start_day=float(index),
        end_day=float(index + 1),
        observations=ObservationWindow(start=index * 86400.0, end=(index + 1) * 86400.0),
        features=FeatureSet(
            originators=originators,
            matrix=matrix,
            context=WindowContext(0, 86400, 1, 1, 1),
            footprints=np.full(len(originators), 30, dtype=np.int64),
        ),
    )


def analysis_of(windows):
    return WindowedAnalysis(dataset=None, window_days=1.0, windows=windows)


def vector(value: float) -> np.ndarray:
    return np.full(len(FEATURE_NAMES), value)


class TestFeatureDrift:
    def test_zero_drift_for_static_features(self):
        windows = [make_window(i, {1: vector(1.0)}) for i in range(5)]
        labeled = LabeledSet.from_pairs([(1, "cdn")], curated_day=0.5)
        result = feature_drift(analysis_of(windows), labeled, curation_day=0.5)
        for point in result.benign:
            assert point.mean_distance == pytest.approx(0.0)

    def test_drift_grows_with_shift(self):
        windows = [make_window(i, {1: vector(1.0 + 0.5 * i)}) for i in range(5)]
        labeled = LabeledSet.from_pairs([(1, "cdn")], curated_day=0.5)
        result = feature_drift(analysis_of(windows), labeled, curation_day=0.5)
        distances = [p.mean_distance for p in result.benign]
        assert distances[0] == pytest.approx(0.0)
        assert distances == sorted(distances)
        assert result.benign_slope() > 0

    def test_groups_separated(self):
        windows = [
            make_window(i, {1: vector(1.0), 2: vector(1.0 + i)}) for i in range(4)
        ]
        labeled = LabeledSet.from_pairs([(1, "cdn"), (2, "spam")], curated_day=0.5)
        result = feature_drift(analysis_of(windows), labeled, curation_day=0.5)
        assert result.benign[-1].mean_distance == pytest.approx(0.0)
        assert result.malicious[-1].mean_distance > 0

    def test_absent_examples_skipped(self):
        windows = [
            make_window(0, {1: vector(1.0)}),
            make_window(1, {}),  # example vanished
        ]
        labeled = LabeledSet.from_pairs([(1, "cdn")], curated_day=0.5)
        result = feature_drift(analysis_of(windows), labeled, curation_day=0.5)
        assert result.benign[1].examples == 0

    def test_bad_curation_day_rejected(self):
        windows = [make_window(0, {1: vector(1.0)})]
        labeled = LabeledSet.from_pairs([(1, "cdn")])
        with pytest.raises(ValueError):
            feature_drift(analysis_of(windows), labeled, curation_day=99.0)

    def test_empty_labeled_rejected(self):
        windows = [make_window(0, {1: vector(1.0)})]
        with pytest.raises(ValueError):
            feature_drift(analysis_of(windows), LabeledSet())
