"""Unit tests for experiment-module helper logic on synthetic results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.consistency import ConsistencyRecord
from repro.analysis.trends import ChurnPoint
from repro.experiments.fig5_fig6_stability import monthly_retention
from repro.experiments.fig8_consistency import Fig8Result
from repro.experiments.fig11_trends import Fig11Result
from repro.experiments.fig12_footprint_boxes import Fig12Result
from repro.experiments.fig15_churn import Fig15Result
from repro.experiments.fig16_diurnal import DiurnalSeries
from repro.analysis.trends import FootprintBox


class TestMonthlyRetention:
    def test_full_retention(self):
        series = [(float(d), 100) for d in range(0, 120, 7)]
        assert monthly_retention(series, curation_day=30.0, months=1.0) == pytest.approx(1.0)

    def test_half_retention(self):
        series = [(float(d), 100 if d < 45 else 50) for d in range(0, 120, 7)]
        assert monthly_retention(series, curation_day=30.0, months=1.0) == pytest.approx(0.5)

    def test_zero_baseline(self):
        series = [(float(d), 0) for d in range(0, 60, 7)]
        assert monthly_retention(series, curation_day=30.0) == 0.0

    def test_negative_months_looks_backward(self):
        series = [(float(d), 50 if d < 30 else 100) for d in range(0, 120, 7)]
        backward = monthly_retention(series, curation_day=60.0, months=-1.0)
        assert backward == pytest.approx(0.5, abs=0.05)


class TestFig11Result:
    def _series(self, scans):
        return [
            (float(7 * i), {"scan": s}, s) for i, s in enumerate(scans)
        ]

    def test_bump_detected(self):
        scans = [100] * 8 + [150, 140] + [100] * 5
        result = Fig11Result(series=self._series(scans), heartbleed_day=56.0)
        assert result.heartbleed_bump() == pytest.approx(1.5)

    def test_bump_nan_without_data(self):
        result = Fig11Result(series=[], heartbleed_day=50.0)
        assert math.isnan(result.heartbleed_bump())

    def test_scan_series_extraction(self):
        result = Fig11Result(series=self._series([1, 2]), heartbleed_day=50.0)
        assert result.scan_series() == [(0.0, 1), (7.0, 2)]


class TestFig12Result:
    def test_volatility(self):
        boxes = [
            FootprintBox(day=float(d), p10=10, p25=12, median=m, p75=20, p90=p90, count=10)
            for d, (m, p90) in enumerate([(14, 30), (14, 80), (14, 25), (14, 90)])
        ]
        result = Fig12Result(boxes=boxes)
        assert result.volatility("median") == pytest.approx(0.0)
        assert result.volatility("p90") > 0.4

    def test_volatility_empty(self):
        assert math.isnan(Fig12Result(boxes=[]).volatility("median"))


class TestFig15Result:
    def test_turnover_and_core(self):
        points = [
            ChurnPoint(day=0.0, new=10, continuing=0, departing=0),
            ChurnPoint(day=7.0, new=2, continuing=8, departing=2),
            ChurnPoint(day=14.0, new=5, continuing=5, departing=5),
        ]
        result = Fig15Result(points=points)
        assert result.mean_turnover() == pytest.approx((0.2 + 0.5) / 2)
        assert result.continuing_core() == 5

    def test_empty_turnover_nan(self):
        assert math.isnan(Fig15Result(points=[]).mean_turnover())


class TestFig8Result:
    def _records(self, ratios):
        return [
            ConsistencyRecord(
                originator=i, appearances=5, preferred_class="scan",
                r=r, min_footprint=25,
            )
            for i, r in enumerate(ratios)
        ]

    def test_majority_fraction(self):
        result = Fig8Result(by_threshold={20: self._records([0.4, 0.6, 1.0])})
        assert result.majority_fraction(20) == pytest.approx(2 / 3)

    def test_cdf_monotone(self):
        result = Fig8Result(by_threshold={20: self._records([0.5, 0.7, 0.9, 1.0])})
        values, cumulative = result.cdf(20)
        assert (np.diff(values) >= 0).all()
        assert cumulative[-1] == 1.0


class TestDiurnalSeries:
    def test_flat_profile_ratio_one(self):
        series = DiurnalSeries(
            label="x", originator=1, hourly=[(float(h), 10) for h in range(48)]
        )
        assert series.diurnal_ratio() == pytest.approx(1.0)

    def test_peaked_profile(self):
        hourly = [(float(h), 100 if h % 24 == 12 else 0) for h in range(48)]
        series = DiurnalSeries(label="x", originator=1, hourly=hourly)
        assert series.diurnal_ratio() == pytest.approx(24.0)

    def test_folding_merges_days(self):
        # Day 1 active in hour 3, day 2 active in hour 3: folded, one bin.
        hourly = [(3.0, 50), (27.0, 50)]
        series = DiurnalSeries(label="x", originator=1, hourly=hourly)
        assert series.diurnal_ratio() == pytest.approx(24.0)

    def test_empty_is_nan(self):
        series = DiurnalSeries(label="x", originator=1, hourly=[])
        assert math.isnan(series.diurnal_ratio())
