"""Tests for darknets, blacklists, and label curation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity import build_campaign
from repro.activity.scenario import Actor
from repro.dnssim.zone import PtrRecordSpec
from repro.groundtruth import (
    BlacklistRegistry,
    Darknet,
    GroundTruthSources,
    build_labeled_set,
)


@pytest.fixture()
def campaigns(small_world, rng):
    out = []
    for app_class, n in (("scan", 4), ("spam", 4), ("mail", 3), ("p2p", 2)):
        for _ in range(n):
            out.append(
                build_campaign(
                    small_world, app_class, rng, start=0.0, duration_days=1.0,
                    audience_size=600 if app_class == "scan" else 300,
                )
            )
    # Force at least one untargeted big scan so the darknet sees it.
    out[0].targeted = False
    return out


class TestDarknet:
    def test_scans_hit_darknet(self, small_world, campaigns):
        darknet = Darknet(small_world, seed=1)
        darknet.observe(campaigns)
        scan_hits = [
            darknet.dark_addresses(c.originator)
            for c in campaigns
            if c.app_class == "scan" and not c.targeted
        ]
        assert any(h > 0 for h in scan_hits)

    def test_mail_never_hits_darknet(self, small_world, campaigns):
        darknet = Darknet(small_world, seed=1)
        darknet.observe(campaigns)
        for campaign in campaigns:
            if campaign.app_class == "mail":
                assert darknet.dark_addresses(campaign.originator) == 0

    def test_targeted_scans_invisible(self, small_world, campaigns):
        darknet = Darknet(small_world, seed=1)
        targeted = [c for c in campaigns if c.app_class == "scan"]
        for campaign in targeted:
            campaign.targeted = True
        darknet.observe(campaigns)
        for campaign in targeted:
            assert darknet.dark_addresses(campaign.originator) == 0

    def test_confirmation_threshold(self, small_world, campaigns):
        darknet = Darknet(small_world, seed=1)
        darknet.observe(campaigns)
        confirmed = darknet.confirmed_scanners(threshold=1)
        assert confirmed == {o for o, n in darknet.hits.items() if n >= 1}

    def test_variants_recorded(self, small_world, campaigns):
        darknet = Darknet(small_world, seed=1)
        darknet.observe(campaigns)
        for originator, variants in darknet.variants.items():
            assert variants  # only populated for observed scan/p2p
        assert darknet.size == sum(p.size for p in darknet.prefixes)


class TestBlacklists:
    def test_spam_gets_listed(self, small_world, campaigns):
        registry = BlacklistRegistry(seed=2)
        registry.observe(campaigns)
        spam = [c.originator for c in campaigns if c.app_class == "spam"]
        assert any(registry.spam_listings(o) > 0 for o in spam)

    def test_mail_not_spam_listed(self, small_world, campaigns):
        registry = BlacklistRegistry(seed=2)
        registry.observe(campaigns)
        for campaign in campaigns:
            if campaign.app_class == "mail":
                assert registry.spam_listings(campaign.originator) == 0
                assert registry.is_clean(campaign.originator)

    def test_scanners_on_other_lists_only(self, small_world, campaigns):
        registry = BlacklistRegistry(seed=2)
        registry.observe(campaigns)
        for campaign in campaigns:
            if campaign.app_class == "scan":
                assert registry.spam_listings(campaign.originator) == 0

    def test_listing_counts_bounded_by_providers(self, small_world, campaigns):
        registry = BlacklistRegistry(seed=2)
        registry.observe(campaigns)
        for campaign in campaigns:
            assert registry.spam_listings(campaign.originator) <= len(registry.providers)

    def test_deterministic(self, small_world, campaigns):
        one = BlacklistRegistry(seed=5)
        two = BlacklistRegistry(seed=5)
        one.observe(campaigns)
        two.observe(campaigns)
        for campaign in campaigns:
            assert one.spam_listings(campaign.originator) == two.spam_listings(
                campaign.originator
            )


def _actor(originator: int, app_class: str) -> Actor:
    return Actor(
        originator=originator,
        app_class=app_class,
        born_day=0.0,
        lifetime_days=30.0,
        home_country="us",
        ptr_spec=PtrRecordSpec(),
        audience_size=100,
    )


class TestLabeling:
    def _sources(self, small_world, campaigns) -> GroundTruthSources:
        darknet = Darknet(small_world, seed=1)
        darknet.observe(campaigns)
        registry = BlacklistRegistry(seed=2)
        registry.observe(campaigns)
        actors = {
            c.originator: _actor(c.originator, c.app_class) for c in campaigns
        }
        return GroundTruthSources(
            darknet=darknet, blacklists=registry, actors_by_ip=actors, seed=3
        )

    def test_labels_are_correct(self, small_world, campaigns):
        sources = self._sources(small_world, campaigns)
        top = [c.originator for c in campaigns]
        labeled = build_labeled_set(sources, top)
        for example in labeled:
            assert sources.true_class(example.originator) == example.app_class

    def test_only_top_originators_labeled(self, small_world, campaigns):
        sources = self._sources(small_world, campaigns)
        top = [c.originator for c in campaigns[:3]]
        labeled = build_labeled_set(sources, top)
        assert labeled.originators() <= set(top)

    def test_per_class_cap(self, small_world, campaigns):
        sources = self._sources(small_world, campaigns)
        top = [c.originator for c in campaigns]
        labeled = build_labeled_set(sources, top, per_class_cap=1)
        assert all(count <= 1 for count in labeled.class_counts().values())

    def test_research_scanners_included(self, small_world, campaigns):
        sources = self._sources(small_world, campaigns)
        scanner = next(c.originator for c in campaigns if c.app_class == "scan")
        sources.research_scanners.add(scanner)
        labeled = build_labeled_set(sources, [scanner])
        assert labeled.label_of(scanner) == "scan"

    def test_verification_rejects_wrong_candidates(self, small_world, campaigns):
        sources = self._sources(small_world, campaigns)
        # Claim a mail host is a known research scanner: external evidence
        # proposes it for scan, manual verification must reject it.
        mail_host = next(c.originator for c in campaigns if c.app_class == "mail")
        sources.research_scanners.add(mail_host)
        labeled = build_labeled_set(sources, [mail_host])
        assert labeled.label_of(mail_host) != "scan"
